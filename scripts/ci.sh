#!/usr/bin/env bash
# The repository's CI gate, runnable locally: formatting, lints, tests.
#
# Everything runs --offline: the workspace has no network-fetched
# dependencies beyond what the lockfile already vendors, and new ones are
# deliberately not allowed (see DESIGN.md §6). If this script fails on
# `--offline` after a change, the change added a dependency — revert it.
#
# Usage: scripts/ci.sh [--no-fmt]   (skip rustfmt, e.g. if not installed)

set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

if [[ "${1:-}" != "--no-fmt" ]]; then
    run cargo fmt --all --check
fi

# Lints are errors: the tree stays clippy-clean.
run cargo clippy --workspace --all-targets --offline -- -D warnings

# Rustdoc stays warning-free (broken intra-doc links are the usual drift).
run env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

# Unit, integration, property, and doc tests. The TCP suite spawns real
# decaf-site processes on loopback sockets (ports are kernel-reserved per
# test, so parallel runs do not collide).
run cargo test --workspace --offline -q

# The deterministic-trace golden test is the observability contract: a
# fixed sim workload must keep producing byte-identical JSONL traces.
run cargo test -p decaf-net --test trace_golden --offline -q

echo "CI OK"
