#!/usr/bin/env bash
# The repository's CI gate, runnable locally: formatting, lints, tests.
#
# Everything runs --offline: the workspace has no network-fetched
# dependencies beyond what the lockfile already vendors, and new ones are
# deliberately not allowed (see DESIGN.md §6). If this script fails on
# `--offline` after a change, the change added a dependency — revert it.
#
# Usage: scripts/ci.sh [--no-fmt]   (skip rustfmt, e.g. if not installed)

set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

if [[ "${1:-}" != "--no-fmt" ]]; then
    run cargo fmt --all --check
fi

# Lints are errors: the tree stays clippy-clean.
run cargo clippy --workspace --all-targets --offline -- -D warnings

# Rustdoc stays warning-free (broken intra-doc links are the usual drift).
run env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

# Unit, integration, property, and doc tests. The TCP suite spawns real
# decaf-site processes on loopback sockets (ports are kernel-reserved per
# test, so parallel runs do not collide).
run cargo test --workspace --offline -q

# Crash-restart durability gate: three real processes, SIGKILL the durable
# one mid-run, restart it from its --data-dir, and require WAL replay +
# catch-up + convergence on the identical exit value. Included in the
# workspace run above, but gated by name so a test-filter change can never
# silently drop it.
run cargo test -p decaf-apps --test tcp_transport --offline -q \
    durable_site_recovers_from_sigkill_and_rejoins

# The deterministic-trace golden test is the observability contract: a
# fixed sim workload must keep producing byte-identical JSONL traces.
run cargo test -p decaf-net --test trace_golden --offline -q

# Throughput bench smoke: the hot-path bench must run end to end, emit
# well-formed JSON, and lose no envelopes (the bin itself exits non-zero
# when delivered < sent; the checks below also pin the report's shape).
echo "==> p1_throughput --json --smoke"
P1_JSON="$(cargo run -p decaf-bench --bin p1_throughput --release --offline -q -- --json --smoke)"
if command -v python3 >/dev/null 2>&1; then
    echo "$P1_JSON" | python3 -c '
import json, sys
r = json.load(sys.stdin)
assert r["bench"] == "p1_throughput", r
assert r["check"]["ok"], r["check"]
assert r["check"]["delivered"] >= r["check"]["sent"], r["check"]
assert len(r["sections"]) == 2, [s["title"] for s in r["sections"]]
'
else
    echo "$P1_JSON" | grep -q '"bench":"p1_throughput"'
    echo "$P1_JSON" | grep -q '"ok":true'
fi

# Model-checker smoke: bounded deterministic-simulation exploration (512
# seeded random fault schedules, 128 crash-restart schedules exercising
# WAL recovery with torn tails and the rejoin protocol, plus one
# exhaustively enumerated 3-site configuration) with every invariant
# oracle armed. The bin exits non-zero on any violation; the checks below
# also pin the exploration floor.
echo "==> decaf-check --smoke --json"
CHECK_JSON="$(cargo run -p decaf-apps --bin decaf-check --release --offline -q -- --smoke --json)"
if command -v python3 >/dev/null 2>&1; then
    echo "$CHECK_JSON" | python3 -c '
import json, sys
r = json.load(sys.stdin)
assert r["ok"], r
assert r["violations"] == 0, r
assert r["random_schedules"] >= 640, r
assert r["exhaustive_schedules"] >= 100, r
assert r["committed"] > 0, r
'
else
    echo "$CHECK_JSON" | grep -q '"ok":true'
    echo "$CHECK_JSON" | grep -q '"violations":0'
fi

# Live-telemetry + stitcher gate: a real 3-process decaf-site mesh on
# loopback, every site dumping its trace to JSONL and site 1 serving the
# --metrics-listen plane. The gate scrapes /metrics over raw TCP (no curl
# dependency) *while* the mesh is still running and requires a non-empty
# decaf_commits_total sample; once all three processes exit 0 it stitches
# the dumps with decaf-trace-stitch and requires exit 0 plus per-site-pair
# propagation histograms and per-VT spans in the report.
echo "==> live /metrics scrape + decaf-trace-stitch over a 3-process TCP mesh"
run cargo build -p decaf-apps --release --offline --bin decaf-site --bin decaf-trace-stitch
MESH_DIR="$(mktemp -d)"
BASE=$((20000 + $$ % 20000))
P1=$BASE P2=$((BASE + 1)) P3=$((BASE + 2)) PM=$((BASE + 3))
PIDS=()
for i in 1 2 3; do
    port_var="P$i"
    args=(--site "$i" --listen "127.0.0.1:${!port_var}" --txns 3
          --linger-ms 4000 --max-runtime-ms 60000
          --trace-out "$MESH_DIR/site$i.jsonl")
    for j in 1 2 3; do
        peer_var="P$j"
        [[ "$j" != "$i" ]] && args+=(--peer "$j=127.0.0.1:${!peer_var}")
    done
    [[ "$i" == 1 ]] && args+=(--metrics-listen "127.0.0.1:$PM")
    target/release/decaf-site "${args[@]}" >"$MESH_DIR/site$i.log" 2>&1 &
    PIDS+=($!)
done

scrape() { # scrape PATH — one-shot HTTP GET against the metrics plane
    exec 9<>"/dev/tcp/127.0.0.1/$PM" || return 1
    printf 'GET %s HTTP/1.1\r\nHost: ci\r\nConnection: close\r\n\r\n' "$1" >&9
    cat <&9
    exec 9<&- 9>&-
}

COMMITS=""
for _ in $(seq 1 150); do
    SAMPLE="$(scrape /metrics 2>/dev/null || true)"
    COMMITS="$(echo "$SAMPLE" | sed -n 's/^decaf_commits_total{site="1"} \([0-9][0-9]*\)$/\1/p')"
    [[ -n "$COMMITS" && "$COMMITS" != "0" ]] && break
    sleep 0.2
done
if [[ -z "$COMMITS" || "$COMMITS" == "0" ]]; then
    echo "FAIL: no live decaf_commits_total sample from the running mesh" >&2
    cat "$MESH_DIR"/site*.log >&2 || true
    kill "${PIDS[@]}" 2>/dev/null || true
    exit 1
fi
echo "live scrape: decaf_commits_total{site=\"1\"} $COMMITS"

for pid in "${PIDS[@]}"; do
    if ! wait "$pid"; then
        echo "FAIL: a decaf-site process exited non-zero" >&2
        cat "$MESH_DIR"/site*.log >&2
        exit 1
    fi
done

echo "==> decaf-trace-stitch site{1,2,3}.jsonl"
target/release/decaf-trace-stitch \
    "$MESH_DIR/site1.jsonl" "$MESH_DIR/site2.jsonl" "$MESH_DIR/site3.jsonl" \
    >"$MESH_DIR/stitch.txt"
if ! grep -Eq '^  [0-9]+->[0-9]+: n=[1-9]' "$MESH_DIR/stitch.txt"; then
    echo "FAIL: stitched report has no non-empty propagation histogram" >&2
    cat "$MESH_DIR/stitch.txt" >&2
    exit 1
fi
if ! grep -Eq '^  vt=' "$MESH_DIR/stitch.txt"; then
    echo "FAIL: stitched report has no per-VT spans" >&2
    cat "$MESH_DIR/stitch.txt" >&2
    exit 1
fi
grep -E '^(events=|  [0-9]+->[0-9]+: n=)' "$MESH_DIR/stitch.txt" | head -8
rm -rf "$MESH_DIR"

echo "CI OK"
