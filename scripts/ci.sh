#!/usr/bin/env bash
# The repository's CI gate, runnable locally: formatting, lints, tests.
#
# Everything runs --offline: the workspace has no network-fetched
# dependencies beyond what the lockfile already vendors, and new ones are
# deliberately not allowed (see DESIGN.md §6). If this script fails on
# `--offline` after a change, the change added a dependency — revert it.
#
# Usage: scripts/ci.sh [--no-fmt]   (skip rustfmt, e.g. if not installed)

set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

if [[ "${1:-}" != "--no-fmt" ]]; then
    run cargo fmt --all --check
fi

# Lints are errors: the tree stays clippy-clean.
run cargo clippy --workspace --all-targets --offline -- -D warnings

# Rustdoc stays warning-free (broken intra-doc links are the usual drift).
run env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

# Unit, integration, property, and doc tests. The TCP suite spawns real
# decaf-site processes on loopback sockets (ports are kernel-reserved per
# test, so parallel runs do not collide).
run cargo test --workspace --offline -q

# Crash-restart durability gate: three real processes, SIGKILL the durable
# one mid-run, restart it from its --data-dir, and require WAL replay +
# catch-up + convergence on the identical exit value. Included in the
# workspace run above, but gated by name so a test-filter change can never
# silently drop it.
run cargo test -p decaf-apps --test tcp_transport --offline -q \
    durable_site_recovers_from_sigkill_and_rejoins

# The deterministic-trace golden test is the observability contract: a
# fixed sim workload must keep producing byte-identical JSONL traces.
run cargo test -p decaf-net --test trace_golden --offline -q

# Throughput bench smoke: the hot-path bench must run end to end, emit
# well-formed JSON, and lose no envelopes (the bin itself exits non-zero
# when delivered < sent; the checks below also pin the report's shape).
echo "==> p1_throughput --json --smoke"
P1_JSON="$(cargo run -p decaf-bench --bin p1_throughput --release --offline -q -- --json --smoke)"
if command -v python3 >/dev/null 2>&1; then
    echo "$P1_JSON" | python3 -c '
import json, sys
r = json.load(sys.stdin)
assert r["bench"] == "p1_throughput", r
assert r["check"]["ok"], r["check"]
assert r["check"]["delivered"] >= r["check"]["sent"], r["check"]
assert len(r["sections"]) == 2, [s["title"] for s in r["sections"]]
'
else
    echo "$P1_JSON" | grep -q '"bench":"p1_throughput"'
    echo "$P1_JSON" | grep -q '"ok":true'
fi

# Model-checker smoke: bounded deterministic-simulation exploration (512
# seeded random fault schedules, 128 crash-restart schedules exercising
# WAL recovery with torn tails and the rejoin protocol, plus one
# exhaustively enumerated 3-site configuration) with every invariant
# oracle armed. The bin exits non-zero on any violation; the checks below
# also pin the exploration floor.
echo "==> decaf-check --smoke --json"
CHECK_JSON="$(cargo run -p decaf-apps --bin decaf-check --release --offline -q -- --smoke --json)"
if command -v python3 >/dev/null 2>&1; then
    echo "$CHECK_JSON" | python3 -c '
import json, sys
r = json.load(sys.stdin)
assert r["ok"], r
assert r["violations"] == 0, r
assert r["random_schedules"] >= 640, r
assert r["exhaustive_schedules"] >= 100, r
assert r["committed"] > 0, r
'
else
    echo "$CHECK_JSON" | grep -q '"ok":true'
    echo "$CHECK_JSON" | grep -q '"violations":0'
fi

echo "CI OK"
