//! Typecheck-only stand-in for `criterion`, mirroring the subset of its API
//! used by the workspace bench targets. Benchmarks compiled against this
//! stub run no iterations; the real crate is used by CI.

use std::fmt::Display;

pub fn black_box<T>(value: T) -> T {
    value
}

pub struct Bencher;
impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut _routine: F) {}
}

pub struct BenchmarkId(String);
impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", name.into()))
    }
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

#[derive(Default)]
pub struct Criterion;
impl Criterion {
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, _id: &str, mut _f: F) -> &mut Self {
        self
    }
    pub fn benchmark_group(&mut self, _name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup(std::marker::PhantomData)
    }
}

pub struct BenchmarkGroup<'a>(std::marker::PhantomData<&'a ()>);
impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        _id: impl Into<String>,
        mut _f: F,
    ) -> &mut Self {
        self
    }
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        _id: BenchmarkId,
        _input: &I,
        mut _f: F,
    ) -> &mut Self {
        self
    }
    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
