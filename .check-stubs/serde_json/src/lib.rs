use std::fmt;
#[derive(Debug)]
pub struct Error;
impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { f.write_str("stub") }
}
impl std::error::Error for Error {}
pub fn to_vec<T: serde::Serialize + ?Sized>(_v: &T) -> Result<Vec<u8>, Error> { unimplemented!() }
pub fn to_string<T: serde::Serialize + ?Sized>(_v: &T) -> Result<String, Error> { unimplemented!() }
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(_v: &T) -> Result<String, Error> { unimplemented!() }
pub fn from_slice<T: serde::Deserialize>(_b: &[u8]) -> Result<T, Error> { unimplemented!() }
pub fn from_str<T: serde::Deserialize>(_s: &str) -> Result<T, Error> { unimplemented!() }
