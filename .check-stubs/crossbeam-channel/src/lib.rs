//! Functional offline stand-in: crossbeam's MPMC channel API over std mpsc.
//! Receiver clones share one consumer behind a mutex — correctness over speed.
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

pub struct Sender<T>(mpsc::Sender<T>);
pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(self.0.clone())
    }
}
impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver(self.0.clone())
    }
}

pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
}

pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
    unbounded()
}

#[derive(Debug)]
pub struct SendError<T>(pub T);
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

impl<T> Sender<T> {
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
    }
}

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.lock().unwrap().recv().map_err(|_| RecvError)
    }
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.0.lock().unwrap().try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.0
            .lock()
            .unwrap()
            .recv_timeout(timeout)
            .map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
    }
}
