//! Typecheck-only stand-in for `proptest` used by the offline `cargo check`
//! wrapper. Strategies carry only their `Value` type; the `proptest!` macro
//! expands each property into a `#[test]` whose body typechecks inside an
//! `if false` block and therefore never executes. The real crate is used by
//! CI; this stub exists so property-test files can be validated for type
//! errors in an offline container.

pub mod strategy {
    use std::marker::PhantomData;

    pub trait Strategy: Sized {
        type Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F, O>
        where
            F: Fn(Self::Value) -> O,
        {
            Map(self, f, PhantomData)
        }

        fn prop_recursive<R, F>(
            self,
            _depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            _recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
            R: Strategy<Value = Self::Value> + 'static,
        {
            BoxedStrategy(PhantomData)
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
        {
            BoxedStrategy(PhantomData)
        }
    }

    pub struct BoxedStrategy<T>(pub(crate) PhantomData<T>);
    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
    }
    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(PhantomData)
        }
    }

    pub struct Map<S, F, O>(pub(crate) S, pub(crate) F, pub(crate) PhantomData<O>);
    impl<S, F, O> Strategy for Map<S, F, O>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
    }

    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);
    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
    }

    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);
    impl<T> Strategy for Union<T> {
        type Value = T;
    }

    pub struct Any<T>(pub(crate) PhantomData<T>);
    impl<T> Strategy for Any<T> {
        type Value = T;
    }

    impl<T> Strategy for core::ops::Range<T> {
        type Value = T;
    }

    impl Strategy for &'static str {
        type Value = String;
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

    /// Conjures a value of the strategy's output type. Only reachable from
    /// `if false` blocks emitted by the stub `proptest!` macro.
    pub fn stub_value<S: Strategy>(_strategy: &S) -> S::Value {
        unreachable!("proptest stub strategies cannot produce values")
    }
}

pub mod arbitrary {
    pub fn any<T>() -> crate::strategy::Any<T> {
        crate::strategy::Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;

    pub struct VecStrategy<S>(pub(crate) S);
    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
    }

    pub fn vec<S: Strategy, R>(element: S, _size: R) -> VecStrategy<S> {
        VecStrategy(element)
    }
}

pub mod option {
    use crate::strategy::Strategy;

    pub struct OptionStrategy<S>(pub(crate) S);
    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod sample {
    use crate::strategy::Strategy;

    #[derive(Clone, Copy, Debug)]
    pub struct Index;
    impl Index {
        pub fn index(&self, _len: usize) -> usize {
            0
        }
    }

    pub struct Select<T>(#[allow(dead_code)] pub(crate) Vec<T>);
    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
    }

    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        Select(values)
    }
}

pub mod bool {
    use crate::strategy::Strategy;

    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;
    impl Strategy for BoolAny {
        type Value = bool;
    }

    pub const ANY: BoolAny = BoolAny;
}

pub mod test_runner {
    #[derive(Clone, Debug, Default)]
    pub struct Config {
        pub cases: u32,
    }
    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    #[derive(Debug)]
    pub struct TestCaseError(pub String);
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError(
                ::std::string::String::new(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {
        $crate::prop_assert!($lhs == $rhs)
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {
        $crate::prop_assert!($lhs == $rhs, $($fmt)+)
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { $($rest)* }
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[allow(unused_variables, unused_mut, clippy::all)]
            fn $name() {
                if false {
                    $(let mut $arg = $crate::strategy::stub_value(&($strat));)+
                    let mut body = move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    let _ = body();
                }
            }
        )*
    };
}
