pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}
pub trait SampleRange<T> { fn start_of(self) -> T; }
impl<T: Copy> SampleRange<T> for std::ops::Range<T> { fn start_of(self) -> T { self.start } }
impl<T: Copy> SampleRange<T> for std::ops::RangeInclusive<T> { fn start_of(self) -> T { *self.start() } }
pub trait Rng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T { range.start_of() }
    fn gen_bool(&mut self, _p: f64) -> bool { false }
}
pub mod rngs {
    #[derive(Debug, Clone)]
    pub struct SmallRng(#[allow(dead_code)] u64);
    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self { SmallRng(state) }
    }
    impl crate::Rng for SmallRng {}
}
