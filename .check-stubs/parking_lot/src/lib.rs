pub use std::sync::MutexGuard;
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);
impl<T> Mutex<T> {
    pub fn new(t: T) -> Self { Mutex(std::sync::Mutex::new(t)) }
}
impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() { Ok(g) => g, Err(p) => p.into_inner() }
    }
}
