pub use serde_derive::{Deserialize, Serialize};
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}
