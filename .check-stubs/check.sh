#!/bin/sh
# Offline typecheck harness: patches the unavailable crates.io deps with
# local stubs so `cargo check` can run in this container. NOT part of the
# repo's CI; never commit .check-stubs or Cargo.lock.
cd /root/repo || exit 1
exec cargo check --workspace --offline \
  --config 'patch.crates-io.serde.path=".check-stubs/serde"' \
  --config 'patch.crates-io.serde_derive.path=".check-stubs/serde_derive"' \
  --config 'patch.crates-io.serde_json.path=".check-stubs/serde_json"' \
  --config 'patch.crates-io.rand.path=".check-stubs/rand"' \
  --config 'patch.crates-io.crossbeam-channel.path=".check-stubs/crossbeam-channel"' \
  --config 'patch.crates-io.parking_lot.path=".check-stubs/parking_lot"' \
  --config 'patch.crates-io.proptest.path=".check-stubs/proptest"' \
  --config 'patch.crates-io.criterion.path=".check-stubs/criterion"' \
  "$@"
