//! TCP mesh integration tests across codec versions: a classic codec-1
//! (JSON-only) site and two codec-2 (binary + batching) sites form one
//! mesh, and Hello negotiation downgrades each link independently so every
//! envelope arrives intact regardless of which pair it crosses.

use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

use decaf_core::{Envelope, Message};
use decaf_net::tcp::{TcpConfig, TcpEndpoint, TcpMesh};
use decaf_net::{TransportEndpoint, TransportEvent};
use decaf_vt::{SiteId, VirtualTime};

/// Envelopes each site sends to each of its two peers. Small enough to
/// never brush the 4096-entry outbound queue, large enough that the v2
/// writers get real coalescing opportunities.
const BURST: u64 = 40;

fn reserve_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

fn env(from: SiteId, to: SiteId, seq: u64) -> Envelope {
    Envelope {
        from,
        to,
        clock: VirtualTime::new(1000 * u64::from(from.0) + seq, from),
        msg: Message::Commit {
            txn: VirtualTime::new(seq, from),
        },
        span: Some(decaf_core::SpanCtx {
            origin: from,
            seq,
            hop: 0,
        }),
    }
}

/// Receives on `ep` until `expected` messages arrived (or panics at the
/// deadline), returning each sender/clock pair in arrival order.
fn collect(ep: &TcpEndpoint, expected: usize, who: &str) -> Vec<(SiteId, VirtualTime)> {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut got = Vec::new();
    while got.len() < expected {
        assert!(Instant::now() < deadline, "{who}: timed out with {got:?}");
        match ep.recv_timeout(Duration::from_millis(200)) {
            Some(TransportEvent::Message { from, msg }) => got.push((from, msg.clock)),
            Some(TransportEvent::SiteFailed { failed }) => {
                panic!("{who}: spurious SiteFailed({failed:?})")
            }
            None => {}
        }
    }
    got
}

/// The multiset of clocks `to` must observe from `from`.
fn expected_from(from: SiteId) -> Vec<(SiteId, VirtualTime)> {
    (0..BURST)
        .map(|seq| (from, VirtualTime::new(1000 * u64::from(from.0) + seq, from)))
        .collect()
}

#[test]
fn mixed_version_mesh_converges() {
    let ports = [reserve_port(), reserve_port(), reserve_port()];
    let addrs: Vec<SocketAddr> = ports
        .iter()
        .map(|p| format!("127.0.0.1:{p}").parse().unwrap())
        .collect();
    let sites = [SiteId(1), SiteId(2), SiteId(3)];

    let full_mesh = |mut cfg: TcpConfig, me: usize| {
        for (i, &peer) in sites.iter().enumerate() {
            if i != me {
                cfg = cfg.peer(peer, addrs[i]);
            }
        }
        TcpMesh::start(cfg).expect("bind")
    };

    // Site 1 predates the binary codec: it only speaks v1 JSON frames.
    // Sites 2 and 3 default to codec 2 with batching; the long linger makes
    // coalescing deterministic for the bursts below.
    let mut m1 = full_mesh(TcpConfig::new(sites[0], addrs[0]).codec(1), 0);
    let mut m2 = full_mesh(
        TcpConfig::new(sites[1], addrs[1]).batching(64, Duration::from_millis(5)),
        1,
    );
    let mut m3 = full_mesh(
        TcpConfig::new(sites[2], addrs[2]).batching(64, Duration::from_millis(5)),
        2,
    );

    let (e1, e2, e3) = (m1.endpoint(), m2.endpoint(), m3.endpoint());
    let senders = [(sites[0], &e1), (sites[1], &e2), (sites[2], &e3)];

    // Warm-up round: one envelope each way makes every link exchange its
    // Hello, so by the time the burst below is flushed each writer knows
    // whether its peer speaks the binary codec.
    for (from, ep) in senders {
        for &to in &sites {
            if to != from {
                ep.send(to, env(from, to, 0));
            }
        }
    }
    let mut got1 = collect(&e1, 2, "site 1 warm-up");
    let mut got2 = collect(&e2, 2, "site 2 warm-up");
    let mut got3 = collect(&e3, 2, "site 3 warm-up");

    for seq in 1..BURST {
        for (from, ep) in senders {
            for &to in &sites {
                if to != from {
                    ep.send(to, env(from, to, seq));
                }
            }
        }
    }
    let rest = 2 * (BURST as usize - 1);
    got1.extend(collect(&e1, rest, "site 1"));
    got2.extend(collect(&e2, rest, "site 2"));
    got3.extend(collect(&e3, rest, "site 3"));

    // Every site receives both peers' bursts, independent of which codec
    // each link negotiated.
    for (me, mut got, others) in [
        ("site 1", got1, [sites[1], sites[2]]),
        ("site 2", got2, [sites[0], sites[2]]),
        ("site 3", got3, [sites[0], sites[1]]),
    ] {
        got.sort();
        let mut want: Vec<_> = others.into_iter().flat_map(expected_from).collect();
        want.sort();
        assert_eq!(got, want, "{me}: wrong delivery multiset");
    }

    // The v1 site never emitted a binary frame and never coalesced.
    let s1 = m1.stats();
    assert_eq!(s1.codec_v2_frames, 0, "v1-only site sent a v2 frame: {s1}");
    assert_eq!(s1.frames_coalesced, 0, "v1-only site batched: {s1}");

    // The v2 sites used the binary codec on their mutual link (negotiation
    // dropped only the links that face site 1) and coalesced their bursts.
    for (name, mesh) in [("site 2", &m2), ("site 3", &m3)] {
        let s = mesh.stats();
        assert!(s.codec_v2_frames > 0, "{name}: no v2 frames: {s}");
        assert!(s.frames_coalesced > 0, "{name}: nothing coalesced: {s}");
        assert!(s.bytes_saved > 0, "{name}: batching saved no bytes: {s}");
        assert!(
            mesh.batch_histogram().count() > 0,
            "{name}: batch histogram is empty"
        );
    }

    m1.shutdown();
    m2.shutdown();
    m3.shutdown();
}

/// Two codec-1 peers on the modern build still interoperate — the
/// downgrade path is symmetric, not just v2-talking-to-v1.
#[test]
fn v1_pair_round_trips() {
    let (pa, pb) = (reserve_port(), reserve_port());
    let a_addr: SocketAddr = format!("127.0.0.1:{pa}").parse().unwrap();
    let b_addr: SocketAddr = format!("127.0.0.1:{pb}").parse().unwrap();
    let mut a = TcpMesh::start(
        TcpConfig::new(SiteId(1), a_addr)
            .codec(1)
            .peer(SiteId(2), b_addr),
    )
    .expect("bind a");
    let mut b = TcpMesh::start(
        TcpConfig::new(SiteId(2), b_addr)
            .codec(1)
            .peer(SiteId(1), a_addr),
    )
    .expect("bind b");
    let (ea, eb) = (a.endpoint(), b.endpoint());

    ea.send(SiteId(2), env(SiteId(1), SiteId(2), 0));
    let got = eb
        .recv_timeout(Duration::from_secs(10))
        .and_then(TransportEvent::into_message)
        .expect("delivery");
    assert_eq!(got.1, env(SiteId(1), SiteId(2), 0));

    eb.send(SiteId(1), env(SiteId(2), SiteId(1), 0));
    let back = ea
        .recv_timeout(Duration::from_secs(10))
        .and_then(TransportEvent::into_message)
        .expect("reply");
    assert_eq!(back.1, env(SiteId(2), SiteId(1), 0));

    assert_eq!(a.stats().codec_v2_frames + b.stats().codec_v2_frames, 0);
    a.shutdown();
    b.shutdown();
}
