//! Wire-codec v2 integration tests: every `Message` variant round-trips
//! through the hand-rolled binary encoding under arbitrary stream chunking,
//! golden byte snapshots pin the v2 layout, and a cross-version test checks
//! that the v1 JSON and v2 binary codecs decode to identical envelopes.

use proptest::prelude::*;

use decaf_core::{
    AssocSnapshot, Blueprint, Delegate, Envelope, Message, NodeRef, ObjectAddr, ObjectName, Path,
    PathElem, ReadItem, RelationId, ReplicationGraph, ScalarValue, SpanCtx, SubjectKind,
    TreeSnapshot, TxnOutcome, TxnPropagate, UpdateItem, WireOp,
};
use decaf_net::wire::{self, encode_frame, FrameKind, FrameReader};
use decaf_vt::{SiteId, VirtualTime};

fn vt(lamport: u64, site: u32) -> VirtualTime {
    VirtualTime::new(lamport, SiteId(site))
}

fn name(site: u32, seq: u64) -> ObjectName {
    ObjectName::new(SiteId(site), seq)
}

fn node(site: u32, seq: u64) -> NodeRef {
    NodeRef::new(SiteId(site), name(site, seq))
}

fn sample_assoc() -> AssocSnapshot {
    AssocSnapshot::from_wire_parts([
        (
            RelationId(7),
            vec![node(1, 3), node(2, 9)],
            "editors".to_string(),
        ),
        (RelationId(12), vec![], String::new()),
    ])
}

fn sample_graph() -> ReplicationGraph {
    ReplicationGraph::from_parts(
        [node(1, 3), node(2, 9), node(4, 1)],
        [(node(1, 3), node(2, 9), RelationId(7))],
    )
}

fn sample_tree() -> TreeSnapshot {
    TreeSnapshot::Tuple(vec![
        ("n".to_string(), TreeSnapshot::Scalar(ScalarValue::Int(-3))),
        (
            "r".to_string(),
            TreeSnapshot::Scalar(ScalarValue::Real(2.5)),
        ),
        (
            "s".to_string(),
            TreeSnapshot::Scalar(ScalarValue::Str("héllo ✓".to_string())),
        ),
        (
            "l".to_string(),
            TreeSnapshot::List(vec![
                (vt(9, 2), TreeSnapshot::Scalar(ScalarValue::Int(1))),
                (vt(10, 3), TreeSnapshot::Assoc(sample_assoc())),
            ]),
        ),
    ])
}

/// One update item per `WireOp` variant, alternating direct and indirect
/// addressing so both `ObjectAddr` forms and both `PathElem` forms appear.
fn sample_updates() -> Vec<UpdateItem> {
    let indirect = ObjectAddr::Indirect {
        root: name(1, 2),
        path: Path(vec![
            PathElem::Index {
                index: 3,
                tag: vt(8, 1),
            },
            PathElem::Key("k".to_string()),
        ]),
    };
    let ops = vec![
        WireOp::SetScalar(ScalarValue::Int(i64::MIN)),
        WireOp::SetScalar(ScalarValue::Real(-1.5e300)),
        WireOp::SetScalar(ScalarValue::Str("μτf-8".to_string())),
        WireOp::ListInsert {
            index: usize::MAX,
            child: Blueprint::List(vec![
                Blueprint::Int(1),
                Blueprint::Real(0.25),
                Blueprint::Tuple(vec![("k".to_string(), Blueprint::str("v"))]),
            ]),
        },
        WireOp::ListRemove { tag: vt(77, 5) },
        WireOp::TuplePut {
            key: "key".to_string(),
            child: Blueprint::Real(1.5),
        },
        WireOp::TupleRemove {
            key: "gone".to_string(),
        },
        WireOp::SetAssoc(sample_assoc()),
        WireOp::SetTree(sample_tree()),
    ];
    ops.into_iter()
        .enumerate()
        .map(|(i, op)| UpdateItem {
            addr: if i % 2 == 0 {
                ObjectAddr::Direct(name(4, 11 + i as u64))
            } else {
                indirect.clone()
            },
            t_r: vt(100 + i as u64, 1),
            t_g: vt(50, 2),
            op,
            needs_check: i % 2 == 0,
        })
        .collect()
}

fn sample_reads() -> Vec<ReadItem> {
    vec![
        ReadItem {
            addr: ObjectAddr::Direct(name(2, 5)),
            t_r: vt(40, 2),
            t_g: vt(30, 1),
            hi: None,
        },
        ReadItem {
            addr: ObjectAddr::Indirect {
                root: name(2, 5),
                path: Path(vec![PathElem::Key("x".to_string())]),
            },
            t_r: vt(41, 2),
            t_g: vt(30, 1),
            hi: Some(vt(99, 3)),
        },
    ]
}

/// One envelope per `Message` variant (plus extras so every `Option` field
/// is exercised in both its `Some` and `None` form).
fn sample_envelopes() -> Vec<Envelope> {
    let msgs = vec![
        Message::Txn(TxnPropagate {
            txn: vt(200, 1),
            origin: SiteId(1),
            updates: sample_updates(),
            reads: sample_reads(),
            delegate: Some(Delegate {
                notify: vec![SiteId(2), SiteId(3)],
            }),
        }),
        Message::Txn(TxnPropagate {
            txn: vt(201, 2),
            origin: SiteId(2),
            updates: vec![],
            reads: vec![],
            delegate: None,
        }),
        Message::SnapshotConfirm {
            subject: vt(210, 3),
            origin: SiteId(3),
            reads: sample_reads(),
        },
        Message::Confirm {
            subject: vt(211, 1),
            kind: SubjectKind::Txn,
        },
        Message::Deny {
            subject: vt(212, 1),
            kind: SubjectKind::Snapshot,
        },
        Message::Commit { txn: vt(213, 2) },
        Message::Abort { txn: vt(214, 2) },
        Message::JoinRequest {
            txn: vt(220, 1),
            origin: SiteId(1),
            relation: RelationId(7),
            a_node: node(1, 3),
            a_graph: sample_graph(),
            b_object: name(2, 9),
            assoc_object: Some(name(2, 10)),
        },
        Message::JoinRequest {
            txn: vt(221, 1),
            origin: SiteId(1),
            relation: RelationId(8),
            a_node: node(1, 4),
            a_graph: ReplicationGraph::singleton(node(1, 4)),
            b_object: name(3, 1),
            assoc_object: None,
        },
        Message::JoinReply {
            txn: vt(220, 1),
            ok: true,
            b_node: node(2, 9),
            merged: sample_graph(),
            b_value: Some(sample_tree()),
            b_value_vt: vt(190, 2),
            b_value_committed: false,
            confirms_expected: 2,
            extra_affected: vec![SiteId(4), SiteId(5)],
        },
        Message::JoinReply {
            txn: vt(221, 1),
            ok: false,
            b_node: node(3, 1),
            merged: ReplicationGraph::singleton(node(3, 1)),
            b_value: None,
            b_value_vt: VirtualTime::ZERO,
            b_value_committed: true,
            confirms_expected: 0,
            extra_affected: vec![],
        },
        Message::GraphUpdate {
            txn: vt(230, 1),
            origin: SiteId(1),
            target: name(2, 9),
            graph: sample_graph(),
            t_g: vt(50, 2),
            needs_check: true,
            adopt_value: Some(sample_tree()),
            adopt_value_vt: vt(190, 2),
        },
        Message::GraphUpdate {
            txn: vt(231, 1),
            origin: SiteId(1),
            target: name(2, 9),
            graph: sample_graph(),
            t_g: vt(50, 2),
            needs_check: false,
            adopt_value: None,
            adopt_value_vt: VirtualTime::ZERO,
        },
        Message::OutcomeQuery {
            txn: vt(240, 4),
            asker: SiteId(2),
        },
        Message::OutcomeReport {
            txn: vt(240, 4),
            outcome: Some(TxnOutcome::Committed),
        },
        Message::OutcomeReport {
            txn: vt(240, 4),
            outcome: None,
        },
        Message::OutcomeDecision {
            txn: vt(240, 4),
            outcome: TxnOutcome::Aborted,
        },
        Message::GraphPropose {
            ballot: u64::MAX,
            coordinator: SiteId(1),
            target: name(2, 9),
            coord_target: name(1, 3),
            graph: sample_graph(),
            at: vt(250, 1),
        },
        Message::GraphAck {
            ballot: u64::MAX,
            coord_target: name(1, 3),
        },
        Message::Heartbeat,
        Message::GraphApply {
            ballot: 3,
            target: name(2, 9),
            graph: sample_graph(),
            at: vt(250, 1),
        },
        Message::RejoinRequest {
            frontier: vt(260, 2),
            have: vec![vt(255, 1), vt(260, 2)],
            serve: true,
        },
        Message::RejoinRequest {
            frontier: VirtualTime::ZERO,
            have: vec![],
            serve: false,
        },
        Message::RejoinAck {
            frontier: vt(261, 3),
            have: vec![vt(255, 1)],
        },
        Message::CatchUp {
            commits: vec![TxnPropagate {
                txn: vt(262, 1),
                origin: SiteId(1),
                updates: sample_updates(),
                reads: vec![],
                delegate: None,
            }],
            rejoined: false,
        },
        Message::CatchUp {
            commits: vec![],
            rejoined: true,
        },
    ];
    msgs.into_iter()
        .enumerate()
        .map(|(i, msg)| Envelope {
            from: SiteId(1 + (i as u32 % 4)),
            to: SiteId(2),
            clock: vt(300 + i as u64, 1 + (i as u32 % 4)),
            msg,
            span: (i % 3 == 0).then_some(SpanCtx {
                origin: SiteId(1 + (i as u32 % 4)),
                seq: 300 + i as u64,
                hop: 0,
            }),
        })
        .collect()
}

// ---- deterministic coverage: every variant, both codecs ------------------

/// Every `Message` variant survives `encode_envelope_v2` →
/// `decode_envelope_v2` unchanged.
#[test]
fn every_message_variant_round_trips_through_v2() {
    for env in sample_envelopes() {
        let bytes = wire::encode_envelope_v2(&env);
        let back = wire::decode_envelope_v2(&bytes).unwrap();
        assert_eq!(back, env, "v2 round trip mangled {:?}", env.msg);
    }
}

/// Cross-version agreement: for every variant, decoding the v1 JSON payload
/// and the v2 binary payload of the same envelope produce identical
/// `Envelope` values — a v1 peer and a v2 peer observe the same protocol.
#[test]
fn v1_json_and_v2_binary_decode_to_identical_envelopes() {
    for env in sample_envelopes() {
        let via_v1 = wire::decode_envelope(&wire::encode_envelope(&env).unwrap()).unwrap();
        let via_v2 = wire::decode_envelope_v2(&wire::encode_envelope_v2(&env)).unwrap();
        assert_eq!(via_v1, via_v2, "codec disagreement on {:?}", env.msg);
        assert_eq!(via_v2, env);
    }
}

/// The v2 payload never exceeds the JSON payload on any variant, and is
/// strictly smaller in aggregate — the codec earns its complexity.
#[test]
fn v2_is_never_larger_than_v1() {
    let mut v1_total = 0usize;
    let mut v2_total = 0usize;
    for env in sample_envelopes() {
        let v1 = wire::encode_envelope(&env).unwrap().len();
        let v2 = wire::encode_envelope_v2(&env).len();
        assert!(
            v2 <= v1,
            "v2 ({v2} B) larger than v1 ({v1} B) on {:?}",
            env.msg
        );
        v1_total += v1;
        v2_total += v2;
    }
    assert!(v2_total * 2 < v1_total, "expected ≥2× aggregate compaction");
}

/// A Batch frame holding every variant plus one DataV2 frame per variant
/// all survive a one-byte-at-a-time stream.
#[test]
fn batch_of_every_variant_survives_one_byte_chunks() {
    let envs = sample_envelopes();
    let parts: Vec<Vec<u8>> = envs.iter().map(wire::encode_envelope_v2).collect();
    let mut stream = encode_frame(FrameKind::Batch, &wire::encode_batch_parts(&parts));
    for part in &parts {
        stream.extend_from_slice(&encode_frame(FrameKind::DataV2, part));
    }
    let mut reader = FrameReader::new();
    let mut decoded = Vec::new();
    for byte in stream.chunks(1) {
        reader.feed(byte);
        while let Some(frame) = reader.next_frame().unwrap() {
            match frame.kind {
                FrameKind::Batch => decoded.extend(wire::decode_batch(&frame.payload).unwrap()),
                FrameKind::DataV2 => {
                    decoded.push(wire::decode_envelope_v2(&frame.payload).unwrap())
                }
                other => panic!("unexpected frame kind {other:?}"),
            }
        }
    }
    assert_eq!(decoded.len(), envs.len() * 2);
    assert_eq!(&decoded[..envs.len()], &envs[..]);
    assert_eq!(&decoded[envs.len()..], &envs[..]);
    assert_eq!(reader.buffered(), 0);
}

// ---- property tests: arbitrary contents under arbitrary chunking ---------

fn arb_site() -> impl Strategy<Value = SiteId> {
    (0u32..9).prop_map(SiteId)
}

fn arb_vt() -> impl Strategy<Value = VirtualTime> {
    (0u64..1_000_000, 0u32..9).prop_map(|(l, s)| vt(l, s))
}

fn arb_name() -> impl Strategy<Value = ObjectName> {
    (0u32..9, 0u64..1000).prop_map(|(s, q)| name(s, q))
}

fn arb_node() -> impl Strategy<Value = NodeRef> {
    (arb_site(), arb_name()).prop_map(|(s, o)| NodeRef::new(s, o))
}

fn arb_scalar() -> impl Strategy<Value = ScalarValue> {
    prop_oneof![
        any::<i64>().prop_map(ScalarValue::Int),
        (-1.0e12f64..1.0e12).prop_map(ScalarValue::Real),
        "[a-zA-Zα-ω0-9 ]{0,12}".prop_map(ScalarValue::Str),
    ]
}

fn arb_path() -> impl Strategy<Value = Path> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..8, arb_vt()).prop_map(|(index, tag)| PathElem::Index { index, tag }),
            "[a-z]{1,6}".prop_map(PathElem::Key),
        ],
        0..4,
    )
    .prop_map(Path)
}

fn arb_addr() -> impl Strategy<Value = ObjectAddr> {
    prop_oneof![
        arb_name().prop_map(ObjectAddr::Direct),
        (arb_name(), arb_path()).prop_map(|(root, path)| ObjectAddr::Indirect { root, path }),
    ]
}

fn arb_blueprint() -> impl Strategy<Value = Blueprint> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Blueprint::Int),
        (-1.0e6f64..1.0e6).prop_map(Blueprint::Real),
        "[a-z]{0,6}".prop_map(Blueprint::Str),
    ];
    leaf.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..3).prop_map(Blueprint::List),
            proptest::collection::vec(("[a-z]{1,4}".prop_map(String::from), inner), 0..3)
                .prop_map(Blueprint::Tuple),
        ]
    })
}

fn arb_assoc() -> impl Strategy<Value = AssocSnapshot> {
    proptest::collection::vec(
        (
            (0u64..100).prop_map(RelationId),
            proptest::collection::vec(arb_node(), 0..3),
            "[a-z ]{0,8}".prop_map(String::from),
        ),
        0..3,
    )
    .prop_map(AssocSnapshot::from_wire_parts)
}

fn arb_tree() -> impl Strategy<Value = TreeSnapshot> {
    let leaf = prop_oneof![
        arb_scalar().prop_map(TreeSnapshot::Scalar),
        arb_assoc().prop_map(TreeSnapshot::Assoc),
    ];
    leaf.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            proptest::collection::vec((arb_vt(), inner.clone()), 0..3).prop_map(TreeSnapshot::List),
            proptest::collection::vec(("[a-z]{1,4}".prop_map(String::from), inner), 0..3)
                .prop_map(TreeSnapshot::Tuple),
        ]
    })
}

fn arb_graph() -> impl Strategy<Value = ReplicationGraph> {
    (
        proptest::collection::vec(arb_node(), 1..4),
        proptest::collection::vec(
            (arb_node(), arb_node(), (0u64..100).prop_map(RelationId)),
            0..3,
        ),
    )
        .prop_map(|(nodes, edges)| ReplicationGraph::from_parts(nodes, edges))
}

fn arb_wire_op() -> impl Strategy<Value = WireOp> {
    prop_oneof![
        arb_scalar().prop_map(WireOp::SetScalar),
        (0usize..10, arb_blueprint())
            .prop_map(|(index, child)| WireOp::ListInsert { index, child }),
        arb_vt().prop_map(|tag| WireOp::ListRemove { tag }),
        ("[a-z]{1,4}".prop_map(String::from), arb_blueprint())
            .prop_map(|(key, child)| WireOp::TuplePut { key, child }),
        "[a-z]{1,4}".prop_map(|key| WireOp::TupleRemove { key }),
        arb_assoc().prop_map(WireOp::SetAssoc),
        arb_tree().prop_map(WireOp::SetTree),
    ]
}

fn arb_update() -> impl Strategy<Value = UpdateItem> {
    (arb_addr(), arb_vt(), arb_vt(), arb_wire_op(), any::<bool>()).prop_map(
        |(addr, t_r, t_g, op, needs_check)| UpdateItem {
            addr,
            t_r,
            t_g,
            op,
            needs_check,
        },
    )
}

fn arb_read() -> impl Strategy<Value = ReadItem> {
    (arb_addr(), arb_vt(), arb_vt(), prop::option::of(arb_vt()))
        .prop_map(|(addr, t_r, t_g, hi)| ReadItem { addr, t_r, t_g, hi })
}

fn arb_kind() -> impl Strategy<Value = SubjectKind> {
    prop_oneof![Just(SubjectKind::Txn), Just(SubjectKind::Snapshot)]
}

fn arb_outcome() -> impl Strategy<Value = TxnOutcome> {
    prop_oneof![Just(TxnOutcome::Committed), Just(TxnOutcome::Aborted)]
}

/// Every one of the nineteen `Message` variants, with arbitrary contents.
fn arb_msg() -> impl Strategy<Value = Message> {
    let group_a = prop_oneof![
        (
            arb_vt(),
            arb_site(),
            proptest::collection::vec(arb_update(), 0..3),
            proptest::collection::vec(arb_read(), 0..3),
            prop::option::of(
                proptest::collection::vec(arb_site(), 0..3).prop_map(|notify| Delegate { notify })
            ),
        )
            .prop_map(|(txn, origin, updates, reads, delegate)| {
                Message::Txn(TxnPropagate {
                    txn,
                    origin,
                    updates,
                    reads,
                    delegate,
                })
            }),
        (
            arb_vt(),
            arb_site(),
            proptest::collection::vec(arb_read(), 0..3)
        )
            .prop_map(|(subject, origin, reads)| Message::SnapshotConfirm {
                subject,
                origin,
                reads
            }),
        (arb_vt(), arb_kind()).prop_map(|(subject, kind)| Message::Confirm { subject, kind }),
        (arb_vt(), arb_kind()).prop_map(|(subject, kind)| Message::Deny { subject, kind }),
        arb_vt().prop_map(|txn| Message::Commit { txn }),
        arb_vt().prop_map(|txn| Message::Abort { txn }),
        (
            arb_vt(),
            arb_site(),
            (0u64..100).prop_map(RelationId),
            arb_node(),
            arb_graph(),
            arb_name(),
            prop::option::of(arb_name()),
        )
            .prop_map(
                |(txn, origin, relation, a_node, a_graph, b_object, assoc_object)| {
                    Message::JoinRequest {
                        txn,
                        origin,
                        relation,
                        a_node,
                        a_graph,
                        b_object,
                        assoc_object,
                    }
                }
            ),
        (
            arb_vt(),
            any::<bool>(),
            arb_node(),
            arb_graph(),
            prop::option::of(arb_tree()),
            arb_vt(),
            any::<bool>(),
            any::<u32>(),
            proptest::collection::vec(arb_site(), 0..3),
        )
            .prop_map(
                |(
                    txn,
                    ok,
                    b_node,
                    merged,
                    b_value,
                    b_value_vt,
                    b_value_committed,
                    confirms_expected,
                    extra_affected,
                )| Message::JoinReply {
                    txn,
                    ok,
                    b_node,
                    merged,
                    b_value,
                    b_value_vt,
                    b_value_committed,
                    confirms_expected,
                    extra_affected,
                }
            ),
    ]
    .boxed();
    let group_b = prop_oneof![
        (
            arb_vt(),
            arb_site(),
            arb_name(),
            arb_graph(),
            arb_vt(),
            any::<bool>(),
            prop::option::of(arb_tree()),
            arb_vt(),
        )
            .prop_map(
                |(txn, origin, target, graph, t_g, needs_check, adopt_value, adopt_value_vt)| {
                    Message::GraphUpdate {
                        txn,
                        origin,
                        target,
                        graph,
                        t_g,
                        needs_check,
                        adopt_value,
                        adopt_value_vt,
                    }
                }
            ),
        (arb_vt(), arb_site()).prop_map(|(txn, asker)| Message::OutcomeQuery { txn, asker }),
        (arb_vt(), prop::option::of(arb_outcome()))
            .prop_map(|(txn, outcome)| Message::OutcomeReport { txn, outcome }),
        (arb_vt(), arb_outcome())
            .prop_map(|(txn, outcome)| Message::OutcomeDecision { txn, outcome }),
        (
            any::<u64>(),
            arb_site(),
            arb_name(),
            arb_name(),
            arb_graph(),
            arb_vt(),
        )
            .prop_map(|(ballot, coordinator, target, coord_target, graph, at)| {
                Message::GraphPropose {
                    ballot,
                    coordinator,
                    target,
                    coord_target,
                    graph,
                    at,
                }
            }),
        (any::<u64>(), arb_name()).prop_map(|(ballot, coord_target)| Message::GraphAck {
            ballot,
            coord_target
        }),
        Just(Message::Heartbeat),
        (any::<u64>(), arb_name(), arb_graph(), arb_vt()).prop_map(
            |(ballot, target, graph, at)| Message::GraphApply {
                ballot,
                target,
                graph,
                at
            }
        ),
        (
            arb_vt(),
            proptest::collection::vec(arb_vt(), 0..4),
            any::<bool>(),
        )
            .prop_map(|(frontier, have, serve)| Message::RejoinRequest {
                frontier,
                have,
                serve
            }),
        (arb_vt(), proptest::collection::vec(arb_vt(), 0..4))
            .prop_map(|(frontier, have)| Message::RejoinAck { frontier, have }),
        (
            proptest::collection::vec(
                (
                    arb_vt(),
                    arb_site(),
                    proptest::collection::vec(arb_update(), 0..3),
                )
                    .prop_map(|(txn, origin, updates)| TxnPropagate {
                        txn,
                        origin,
                        updates,
                        reads: vec![],
                        delegate: None,
                    }),
                0..3,
            ),
            any::<bool>(),
        )
            .prop_map(|(commits, rejoined)| Message::CatchUp { commits, rejoined }),
    ]
    .boxed();
    prop_oneof![group_a, group_b]
}

fn arb_envelope() -> impl Strategy<Value = Envelope> {
    (arb_site(), arb_site(), arb_vt(), arb_msg(), arb_span()).prop_map(
        |(from, to, clock, msg, span)| Envelope {
            from,
            to,
            clock,
            msg,
            span,
        },
    )
}

fn arb_span() -> impl Strategy<Value = Option<SpanCtx>> {
    prop::option::of(
        (arb_site(), any::<u64>(), 0u32..4).prop_map(|(origin, seq, hop)| SpanCtx {
            origin,
            seq,
            hop,
        }),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary envelopes, encoded as either individual DataV2 frames or
    /// one Batch frame, survive arbitrary stream fragmentation.
    #[test]
    fn v2_round_trips_arbitrary_envelopes_under_chunking(
        envs in proptest::collection::vec(arb_envelope(), 1..5),
        chunk in 1usize..48,
        batched in any::<bool>(),
    ) {
        let mut stream = Vec::new();
        if batched {
            let parts: Vec<Vec<u8>> = envs.iter().map(wire::encode_envelope_v2).collect();
            stream.extend_from_slice(&encode_frame(FrameKind::Batch, &wire::encode_batch_parts(&parts)));
        } else {
            for env in &envs {
                stream.extend_from_slice(&encode_frame(FrameKind::DataV2, &wire::encode_envelope_v2(env)));
            }
        }
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        for piece in stream.chunks(chunk) {
            reader.feed(piece);
            while let Some(frame) = reader.next_frame().unwrap() {
                match frame.kind {
                    FrameKind::Batch => decoded.extend(wire::decode_batch(&frame.payload).unwrap()),
                    FrameKind::DataV2 => decoded.push(wire::decode_envelope_v2(&frame.payload).unwrap()),
                    other => prop_assert!(false, "unexpected frame kind {other:?}"),
                }
            }
        }
        prop_assert_eq!(&decoded, &envs);
        prop_assert_eq!(reader.buffered(), 0);
    }

    /// The deterministic every-variant corpus also survives every chunk size
    /// the strategy picks — variant coverage and fragmentation composed.
    #[test]
    fn every_variant_round_trips_v2_under_arbitrary_chunking(chunk in 1usize..64) {
        let envs = sample_envelopes();
        let mut stream = Vec::new();
        for env in &envs {
            stream.extend_from_slice(&encode_frame(FrameKind::DataV2, &wire::encode_envelope_v2(env)));
        }
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        for piece in stream.chunks(chunk) {
            reader.feed(piece);
            while let Some(frame) = reader.next_frame().unwrap() {
                prop_assert_eq!(frame.kind, FrameKind::DataV2);
                decoded.push(wire::decode_envelope_v2(&frame.payload).unwrap());
            }
        }
        prop_assert_eq!(&decoded, &envs);
    }
}

// ---- golden snapshots: protocol version 2 is pinned ----------------------
//
// These bytes are the v2 wire format. If any of them change, bump
// `PROTOCOL_VERSION_V2` — a silent layout change would let two sites with
// different builds corrupt each other's streams undetected.

fn golden_commit_env() -> Envelope {
    Envelope {
        from: SiteId(3),
        to: SiteId(1),
        clock: vt(42, 3),
        msg: Message::Commit { txn: vt(41, 3) },
        span: None,
    }
}

fn golden_heartbeat_env() -> Envelope {
    Envelope {
        from: SiteId(1),
        to: SiteId(2),
        clock: vt(7, 1),
        msg: Message::Heartbeat,
        span: None,
    }
}

#[test]
fn golden_v2_commit_payload() {
    let golden = [0x03, 0x01, 0x2a, 0x03, 0x05, 0x29, 0x03];
    assert_eq!(
        wire::encode_envelope_v2(&golden_commit_env()),
        golden,
        "v2 commit: from | to | clock lamport varint | clock site | tag 5 | txn varint | txn site"
    );
    assert_eq!(
        wire::decode_envelope_v2(&golden).unwrap(),
        golden_commit_env()
    );
}

#[test]
fn golden_v2_heartbeat_payload() {
    let golden = [0x01, 0x02, 0x07, 0x01, 0x0f];
    assert_eq!(
        wire::encode_envelope_v2(&golden_heartbeat_env()),
        golden,
        "v2 heartbeat: five bytes total — envelope header plus tag 15"
    );
    assert_eq!(
        wire::decode_envelope_v2(&golden).unwrap(),
        golden_heartbeat_env()
    );
}

#[test]
fn golden_v2_rejoin_request_payload() {
    let env = Envelope {
        from: SiteId(3),
        to: SiteId(1),
        clock: vt(42, 3),
        msg: Message::RejoinRequest {
            frontier: vt(41, 3),
            have: vec![vt(40, 1), vt(41, 3)],
            serve: true,
        },
        span: None,
    };
    let golden = [
        0x03, 0x01, 0x2a, 0x03, // from | to | clock
        0x11, // tag 17 = RejoinRequest
        0x29, 0x03, // frontier
        0x02, 0x28, 0x01, 0x29, 0x03, // have: count | vt | vt
        0x01, // serve = true
    ];
    assert_eq!(wire::encode_envelope_v2(&env), golden);
    assert_eq!(wire::decode_envelope_v2(&golden).unwrap(), env);
}

#[test]
fn golden_v2_rejoin_ack_payload() {
    let env = Envelope {
        from: SiteId(1),
        to: SiteId(3),
        clock: vt(43, 1),
        msg: Message::RejoinAck {
            frontier: vt(41, 3),
            have: vec![vt(40, 1)],
        },
        span: None,
    };
    let golden = [
        0x01, 0x03, 0x2b, 0x01, // from | to | clock
        0x12, // tag 18 = RejoinAck
        0x29, 0x03, // frontier
        0x01, 0x28, 0x01, // have: count | vt
    ];
    assert_eq!(wire::encode_envelope_v2(&env), golden);
    assert_eq!(wire::decode_envelope_v2(&golden).unwrap(), env);
}

#[test]
fn golden_v2_catch_up_payload() {
    let env = Envelope {
        from: SiteId(3),
        to: SiteId(1),
        clock: vt(44, 3),
        msg: Message::CatchUp {
            commits: vec![TxnPropagate {
                txn: vt(41, 3),
                origin: SiteId(3),
                updates: vec![],
                reads: vec![],
                delegate: None,
            }],
            rejoined: true,
        },
        span: None,
    };
    let golden = [
        0x03, 0x01, 0x2c, 0x03, // from | to | clock
        0x13, // tag 19 = CatchUp
        0x01, // one commit
        0x29, 0x03, // txn
        0x03, // origin
        0x00, // no updates
        0x00, // no reads
        0x00, // no delegate
        0x01, // rejoined = true
    ];
    assert_eq!(wire::encode_envelope_v2(&env), golden);
    assert_eq!(wire::decode_envelope_v2(&golden).unwrap(), env);
}

#[test]
fn golden_v2_batch_payload() {
    let golden = [
        0x02, // two envelopes
        0x07, 0x03, 0x01, 0x2a, 0x03, 0x05, 0x29, 0x03, // len 7 | commit
        0x05, 0x01, 0x02, 0x07, 0x01, 0x0f, // len 5 | heartbeat
    ];
    assert_eq!(
        wire::encode_batch(&[golden_commit_env(), golden_heartbeat_env()]),
        golden
    );
    assert_eq!(
        wire::decode_batch(&golden).unwrap(),
        vec![golden_commit_env(), golden_heartbeat_env()]
    );
}

#[test]
fn golden_v2_commit_payload_with_span() {
    let env = Envelope {
        span: Some(SpanCtx {
            origin: SiteId(3),
            seq: 41,
            hop: 0,
        }),
        ..golden_commit_env()
    };
    let golden = [
        0x03, 0x01, 0x2a, 0x03, 0x05, 0x29, 0x03, // span-less commit envelope
        0x03, 0x29, 0x00, // trailing span: origin 3 | seq 41 varint | hop 0
    ];
    assert_eq!(
        wire::encode_envelope_v2(&env),
        golden,
        "v2 span rides as a trailing section: origin site | seq varint | hop varint"
    );
    assert_eq!(wire::decode_envelope_v2(&golden).unwrap(), env);
}

/// Mixed-fleet interop: a spanned v2 envelope is the span-less encoding
/// plus a trailing section, so a pre-span build's bytes decode on a new
/// build as `span: None`, and over v1 JSON the span is an extra object
/// key that old decoders skip like any unknown key.
#[test]
fn mixed_fleet_span_interop() {
    let spanned = Envelope {
        span: Some(SpanCtx {
            origin: SiteId(3),
            seq: 41,
            hop: 0,
        }),
        ..golden_commit_env()
    };

    // v2: old bytes = new bytes minus the trailing span section.
    let old_bytes = wire::encode_envelope_v2(&golden_commit_env());
    let new_bytes = wire::encode_envelope_v2(&spanned);
    assert_eq!(&new_bytes[..old_bytes.len()], &old_bytes[..]);
    assert_eq!(wire::decode_envelope_v2(&old_bytes).unwrap().span, None);

    // v1 JSON: the span is one more key on the envelope object...
    let spanless_json = wire::encode_envelope(&golden_commit_env()).unwrap();
    let spanned_json = wire::encode_envelope(&spanned).unwrap();
    let spanned_json = std::str::from_utf8(&spanned_json).unwrap();
    assert!(spanned_json.contains("\"span\":{\"origin\":3,\"seq\":41,\"hop\":0}"));
    assert!(!String::from_utf8(spanless_json).unwrap().contains("span"));
    assert_eq!(
        wire::decode_envelope(spanned_json.as_bytes()).unwrap(),
        spanned
    );

    // ...and unknown keys are skipped, which is exactly how a pre-span
    // decoder treats "span" — simulate one with a future extra key.
    let future = spanned_json.replacen("\"span\"", "\"spam\"", 1);
    let decoded = wire::decode_envelope(future.as_bytes()).unwrap();
    assert_eq!(decoded, golden_commit_env());
}

#[test]
fn golden_v2_data_frame() {
    assert_eq!(
        encode_frame(
            FrameKind::DataV2,
            &wire::encode_envelope_v2(&golden_commit_env())
        ),
        [
            0x44, 0x43, 0x41, 0x46, // magic 'DCAF'
            0x02, // protocol version 2
            0x04, // kind 4 = DataV2
            0x07, 0x00, 0x00, 0x00, // payload length 7, LE
            0xb7, 0x82, 0x98, 0x25, // CRC-32 of the payload, LE
            0x03, 0x01, 0x2a, 0x03, 0x05, 0x29, 0x03, // payload
        ],
        "DataV2 frame: same 14-byte header as v1, version byte bumped to 2"
    );
}

#[test]
fn golden_hello_v2() {
    assert_eq!(wire::encode_hello_v2(SiteId(7), 2), [0x07, 0, 0, 0, 0x02]);
    // A v2 hello announces the sender's max codec in the fifth byte...
    assert_eq!(
        wire::decode_hello_any(&[0x07, 0, 0, 0, 0x02]).unwrap(),
        (SiteId(7), 2)
    );
    // ...while a classic 4-byte hello implies codec 1, so old peers
    // negotiate down without knowing negotiation exists.
    assert_eq!(
        wire::decode_hello_any(&[0x07, 0, 0, 0]).unwrap(),
        (SiteId(7), 1)
    );
}
