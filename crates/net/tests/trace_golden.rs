//! Golden-trace test for the deterministic simulator.
//!
//! The [`SimTransport`] stamps trace events with *simulated* time, so a
//! fixed workload must always produce byte-identical JSONL traces. The
//! test drives a 3-site replicated-counter commit twice and asserts the
//! runs agree event-for-event, plus structural invariants (every send has
//! a matching delivery, timestamps follow the 5 ms uniform latency).

use decaf_core::{wiring, Envelope, ObjectName, Site, Transaction, TxnCtx, TxnError, TxnOutcome};
use decaf_net::sim::{LatencyModel, SimTime, SimTransport};
use decaf_net::{Transport, TransportEndpoint, TransportEvent};
use decaf_trace::{Replay, TraceEvent, TraceKind, TraceSink};
use decaf_vt::SiteId;

struct Incr(ObjectName);
impl Transaction for Incr {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        let v = ctx.read_int(self.0)?;
        ctx.write_int(self.0, v + 1)
    }
}

/// Runs the fixed 3-site workload: site 1 increments a replicated counter,
/// all protocol traffic crosses the simulator, and each site's transport
/// trace is collected. Returns the concatenated JSONL (sites in id order).
fn run_once() -> (String, Vec<i64>) {
    let mut sites: Vec<Site> = (1..=3u32).map(|i| Site::new(SiteId(i))).collect();
    let objs: Vec<ObjectName> = sites.iter_mut().map(|s| s.create_int(0)).collect();
    {
        let mut parts: Vec<(&mut Site, ObjectName)> =
            sites.iter_mut().zip(objs.iter().copied()).collect();
        wiring::wire_replicas(&mut parts);
    }

    let net: SimTransport<Envelope> =
        SimTransport::new(LatencyModel::uniform(SimTime::from_millis(5)));
    let eps: Vec<_> = (1..=3u32).map(|i| net.endpoint(SiteId(i))).collect();
    let sinks: Vec<TraceSink> = (1..=3u32).map(|i| TraceSink::enabled(i, 1024)).collect();
    for (i, sink) in sinks.iter().enumerate() {
        net.set_trace_sink(SiteId(i as u32 + 1), sink.clone());
    }

    let h = sites[0].execute(Box::new(Incr(objs[0])));

    // Pump until global quiescence: outboxes onto the wire, then inboxes
    // into the engines, in fixed site order for determinism.
    loop {
        let mut progress = false;
        for (idx, site) in sites.iter_mut().enumerate() {
            for env in site.drain_outbox() {
                eps[idx].send(env.to, env);
                progress = true;
            }
        }
        for (idx, site) in sites.iter_mut().enumerate() {
            while let Some(ev) = eps[idx].try_recv() {
                if let TransportEvent::Message { msg, .. } = ev {
                    site.handle_message(msg);
                    progress = true;
                }
            }
        }
        if !progress {
            break;
        }
    }

    assert_eq!(sites[0].txn_outcome(h), Some(TxnOutcome::Committed));
    let values: Vec<i64> = sites
        .iter()
        .zip(objs.iter())
        .map(|(s, o)| s.read_int_committed(*o).expect("committed value"))
        .collect();

    let mut jsonl = String::new();
    for sink in &sinks {
        assert_eq!(sink.dropped(), 0, "ring must not overflow in this test");
        let mut buf = Vec::new();
        sink.write_jsonl(&mut buf).expect("serialize trace");
        jsonl.push_str(std::str::from_utf8(&buf).expect("jsonl is utf-8"));
    }
    (jsonl, values)
}

#[test]
fn engine_emits_txn_lifecycle_into_sink() {
    let sink = TraceSink::enabled(1, 256);
    let mut a = Site::new(SiteId(1));
    a.set_trace_sink(sink.clone());
    let o = a.create_int(0);
    let h = a.execute(Box::new(Incr(o)));
    assert_eq!(a.txn_outcome(h), Some(TxnOutcome::Committed));

    let kinds: Vec<TraceKind> = sink.snapshot().iter().map(|e| e.kind).collect();
    assert!(
        kinds.contains(&TraceKind::TxnBegin),
        "begin traced: {kinds:?}"
    );
    assert!(
        kinds.contains(&TraceKind::Commit),
        "commit traced: {kinds:?}"
    );
    let summary = sink.summary();
    assert_eq!(
        summary.commit_lat_ns.count, 1,
        "one begin→commit latency sample paired"
    );
    assert_eq!(a.stats().trace_events_dropped, 0);
}

#[test]
fn three_site_commit_trace_is_deterministic() {
    let (trace_a, values_a) = run_once();
    let (trace_b, values_b) = run_once();
    assert_eq!(values_a, vec![1, 1, 1], "all replicas converge to 1");
    assert_eq!(values_b, values_a);
    assert_eq!(
        trace_a, trace_b,
        "identical workloads must produce byte-identical traces"
    );
    assert!(!trace_a.is_empty(), "the commit crossed the wire");
}

#[test]
fn three_site_commit_trace_structure() {
    let (jsonl, _) = run_once();
    let mut replay = Replay::new();
    replay
        .observe_jsonl(&jsonl)
        .expect("trace parses cleanly back through the analyzer");

    let mut sends = 0u64;
    let mut recvs = 0u64;
    for line in jsonl.lines() {
        let ev = TraceEvent::from_jsonl(line).expect("well-formed event");
        match ev.kind {
            TraceKind::MsgSend => sends += 1,
            TraceKind::MsgRecv => recvs += 1,
            other => panic!("sim transport only emits send/recv, got {other}"),
        }
        assert!(ev.peer.is_some(), "transport events always name a peer");
        assert_eq!(
            ev.ts_ns % 5_000_000,
            0,
            "uniform 5ms latency: every timestamp is a whole hop count"
        );
    }
    assert_eq!(sends, recvs, "reliable links: every send is delivered");
    assert!(sends >= 2, "a 3-site commit takes at least one round trip");
    assert_eq!(replay.events(), sends + recvs, "analyzer saw every line");
    assert_eq!(replay.sites().len(), 3, "all three sites traced");
    let total_sent: u64 = replay.sites().values().map(|s| s.msgs_sent).sum();
    assert_eq!(total_sent, sends, "per-site digests agree with raw events");
}
