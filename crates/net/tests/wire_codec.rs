//! Wire-codec integration tests: envelope round-trips under arbitrary
//! chunking, malformed-frame rejection (truncation, corruption, oversized
//! lengths), and golden byte snapshots that pin protocol version 1.

use std::io::Cursor;

use proptest::prelude::*;

use decaf_core::{Envelope, Message};
use decaf_net::wire::{
    self, crc32, encode_frame, Frame, FrameKind, FrameReader, WireError, HEADER_LEN, MAGIC,
    MAX_PAYLOAD, PROTOCOL_VERSION,
};
use decaf_vt::{SiteId, VirtualTime};

fn vt(lamport: u64, site: u32) -> VirtualTime {
    VirtualTime::new(lamport, SiteId(site))
}

fn arb_msg() -> impl Strategy<Value = Message> {
    prop_oneof![
        Just(Message::Heartbeat),
        (1u64..1000, 0u32..8).prop_map(|(l, s)| Message::Commit { txn: vt(l, s) }),
        (1u64..1000, 0u32..8).prop_map(|(l, s)| Message::Abort { txn: vt(l, s) }),
    ]
}

fn arb_envelope() -> impl Strategy<Value = Envelope> {
    (0u32..8, 0u32..8, 1u64..1000, 0u32..8, arb_msg()).prop_map(|(from, to, l, s, msg)| Envelope {
        from: SiteId(from),
        to: SiteId(to),
        clock: vt(l, s),
        msg,
        span: None,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Envelope -> JSON payload -> framed bytes -> FrameReader (fed in
    /// arbitrary-size chunks) -> payload -> Envelope is the identity,
    /// regardless of how the TCP stream fragments the bytes.
    #[test]
    fn envelope_round_trips_under_arbitrary_chunking(
        envs in proptest::collection::vec(arb_envelope(), 1..8),
        chunk in 1usize..64,
    ) {
        let mut stream = Vec::new();
        for env in &envs {
            let payload = wire::encode_envelope(env).unwrap();
            stream.extend_from_slice(&encode_frame(FrameKind::Data, &payload));
        }
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        for piece in stream.chunks(chunk) {
            reader.feed(piece);
            while let Some(frame) = reader.next_frame().unwrap() {
                prop_assert_eq!(frame.kind, FrameKind::Data);
                decoded.push(wire::decode_envelope(&frame.payload).unwrap());
            }
        }
        prop_assert_eq!(&decoded, &envs);
        prop_assert_eq!(reader.buffered(), 0);
    }

    /// A truncated frame never yields; the reader waits for the rest.
    #[test]
    fn truncated_frames_do_not_yield(cut in 0usize..10) {
        let payload = b"truncation probe";
        let bytes = encode_frame(FrameKind::Data, payload);
        let cut = cut.min(bytes.len().saturating_sub(1));
        let mut reader = FrameReader::new();
        reader.feed(&bytes[..bytes.len() - 1 - cut]);
        prop_assert_eq!(reader.next_frame().unwrap(), None);
        // Completing the bytes completes the frame.
        reader.feed(&bytes[bytes.len() - 1 - cut..]);
        let frame = reader.next_frame().unwrap().unwrap();
        prop_assert_eq!(frame.payload.as_slice(), payload.as_slice());
    }

    /// Any single flipped payload bit is caught by the CRC.
    #[test]
    fn corrupt_payload_is_rejected(pos in 0usize..16, bit in 0u8..8) {
        let mut bytes = encode_frame(FrameKind::Data, b"crc integrity 16");
        let idx = HEADER_LEN + (pos % 16);
        bytes[idx] ^= 1 << bit;
        let mut reader = FrameReader::new();
        reader.feed(&bytes);
        prop_assert!(matches!(reader.next_frame(), Err(WireError::BadCrc { .. })));
    }
}

#[test]
fn bad_magic_version_kind_and_oversized_are_rejected() {
    let good = encode_frame(FrameKind::Ping, b"");

    let mut bad_magic = good.clone();
    bad_magic[0] = b'X';
    let mut r = FrameReader::new();
    r.feed(&bad_magic);
    assert!(matches!(r.next_frame(), Err(WireError::BadMagic(_))));

    // Versions 1 (classic) and 2 (binary codec + batching) are both legal;
    // anything else is from the future and must be rejected.
    let mut bad_version = good.clone();
    bad_version[4] = 99;
    let mut r = FrameReader::new();
    r.feed(&bad_version);
    assert_eq!(r.next_frame(), Err(WireError::UnsupportedVersion(99)));

    let mut bad_kind = good.clone();
    bad_kind[5] = 0xEE;
    let mut r = FrameReader::new();
    r.feed(&bad_kind);
    assert_eq!(r.next_frame(), Err(WireError::UnknownKind(0xEE)));

    // An absurd length field is rejected from the header alone — before
    // any payload arrives, so no allocation can be provoked.
    let mut oversized = good;
    oversized[6..10].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
    let mut r = FrameReader::new();
    r.feed(&oversized[..HEADER_LEN]);
    assert_eq!(r.next_frame(), Err(WireError::Oversized(MAX_PAYLOAD + 1)));
}

/// After one malformed frame the stream is unrecoverable (framing is
/// lost), so the reader stays poisoned even if valid bytes follow.
#[test]
fn reader_stays_poisoned_after_garbage() {
    let mut r = FrameReader::new();
    r.feed(b"not a frame at all");
    assert!(r.next_frame().is_err());
    r.feed(&encode_frame(FrameKind::Ping, b""));
    assert!(r.next_frame().is_err(), "poisoned reader must not resync");
}

#[test]
fn write_then_read_frame_round_trips_over_io() {
    let mut buf = Vec::new();
    wire::write_frame(&mut buf, FrameKind::Data, b"io round trip").unwrap();
    wire::write_frame(&mut buf, FrameKind::Ping, b"").unwrap();
    let mut cursor = Cursor::new(buf);
    let a = wire::read_frame(&mut cursor).unwrap();
    assert_eq!(
        a,
        Frame {
            kind: FrameKind::Data,
            payload: b"io round trip".to_vec()
        }
    );
    let b = wire::read_frame(&mut cursor).unwrap();
    assert_eq!(b.kind, FrameKind::Ping);
    // EOF mid-header surfaces as an io error, not a panic.
    assert!(wire::read_frame(&mut cursor).is_err());
}

#[test]
fn corrupt_frame_over_io_is_invalid_data() {
    let mut buf = Vec::new();
    wire::write_frame(&mut buf, FrameKind::Data, b"corrupt me").unwrap();
    let last = buf.len() - 1;
    buf[last] ^= 0x01;
    let err = wire::read_frame(&mut Cursor::new(buf)).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

// ---- golden snapshots: protocol version 1 is pinned ----------------------
//
// These bytes are the v1 wire format. If any of them change, bump
// `PROTOCOL_VERSION` — a silent layout change would let two sites with
// different builds corrupt each other's streams undetected.

#[test]
fn golden_ping_frame() {
    assert_eq!(
        encode_frame(FrameKind::Ping, b""),
        [0x44, 0x43, 0x41, 0x46, 0x01, 0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00],
        "ping frame: magic 'DCAF' | version 1 | kind 3 | len 0 | crc 0"
    );
}

#[test]
fn golden_hello_frame() {
    assert_eq!(
        encode_frame(FrameKind::Hello, &wire::encode_hello(SiteId(7))),
        [
            0x44, 0x43, 0x41, 0x46, 0x01, 0x01, 0x04, 0x00, 0x00, 0x00, 0xa5, 0xe7, 0x93, 0xbc,
            0x07, 0x00, 0x00, 0x00,
        ],
        "hello frame: magic | version 1 | kind 1 | len 4 | crc | site id LE"
    );
    assert_eq!(wire::decode_hello(&[0x07, 0, 0, 0]), Ok(SiteId(7)));
}

#[test]
fn golden_header_constants() {
    assert_eq!(MAGIC, *b"DCAF");
    assert_eq!(PROTOCOL_VERSION, 1);
    assert_eq!(HEADER_LEN, 14);
    // CRC-32 (IEEE) check value, the classic "123456789" vector.
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
}

/// The v1 Data payload encoding is the serde-JSON of `Envelope`; this
/// pinned string guards the field names and enum representation.
#[test]
fn golden_envelope_payload_decodes() {
    let golden =
        br#"{"from":3,"to":1,"clock":{"lamport":42,"site":3},"msg":{"Commit":{"txn":{"lamport":41,"site":3}}}}"#;
    let env = wire::decode_envelope(golden).unwrap();
    assert_eq!(env.from, SiteId(3));
    assert_eq!(env.to, SiteId(1));
    assert_eq!(env.clock, vt(42, 3));
    assert_eq!(env.msg, Message::Commit { txn: vt(41, 3) });
    // And the encoder reproduces it byte-for-byte.
    assert_eq!(wire::encode_envelope(&env).unwrap(), golden.to_vec());
}

#[test]
fn garbage_payload_is_a_codec_error_not_a_panic() {
    assert!(matches!(
        wire::decode_envelope(b"\xff\xfe not json"),
        Err(WireError::Codec(_))
    ));
    assert!(matches!(
        wire::decode_hello(b"too many bytes"),
        Err(WireError::Codec(_))
    ));
}
