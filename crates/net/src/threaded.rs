//! Multi-threaded transport: real threads, crossbeam channels, injected
//! point-to-point delays.
//!
//! The simulator in [`crate::sim`] is the primary experimental substrate;
//! this transport exists to exercise the same sans-I/O site engine under
//! true parallelism (integration tests and examples), the way the paper's
//! Java prototype ran one JVM per user. For crossing real process
//! boundaries, see [`crate::tcp`].
//!
//! Endpoints deliver [`TransportEvent`]s: ordinary messages, plus the
//! §3.4 fail-stop notification injected by [`ThreadedNet::fail_site`].

use std::collections::BinaryHeap;
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use decaf_trace::{SpanCarrier, TraceKind, TraceSink};
use decaf_vt::SiteId;

use crate::{Transport, TransportEndpoint, TransportEvent};

enum RouterCmd<M> {
    Send {
        from: SiteId,
        to: SiteId,
        msg: M,
    },
    /// A batch of messages for one destination: one channel hop and one
    /// router wake-up for the whole group (the threaded analogue of the
    /// TCP mesh's `Batch` frame). FIFO with respect to `Send`.
    SendMany {
        from: SiteId,
        to: SiteId,
        msgs: Vec<M>,
    },
    Disconnect(SiteId),
    Fail(SiteId),
    Shutdown,
}

struct Pending<M> {
    due: Instant,
    seq: u64,
    from: SiteId,
    to: SiteId,
    msg: M,
}

impl<M> PartialEq for Pending<M> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<M> Eq for Pending<M> {}
impl<M> PartialOrd for Pending<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Pending<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Earliest due first (min-heap via reversal).
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

/// One site's handle onto a [`ThreadedNet`].
///
/// Cloneable; typically moved into the site's thread.
pub struct Endpoint<M> {
    site: SiteId,
    to_router: Sender<RouterCmd<M>>,
    inbox: Receiver<TransportEvent<M>>,
    trace: TraceSink,
}

impl<M> fmt::Debug for Endpoint<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Endpoint")
            .field("site", &self.site)
            .finish()
    }
}

impl<M> Clone for Endpoint<M> {
    fn clone(&self) -> Self {
        Endpoint {
            site: self.site,
            to_router: self.to_router.clone(),
            inbox: self.inbox.clone(),
            trace: self.trace.clone(),
        }
    }
}

impl<M: Send + SpanCarrier + 'static> Endpoint<M> {
    /// The site this endpoint belongs to.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Sends `msg` to `to`; it is delivered after the network's configured
    /// delay. Sends after shutdown are silently discarded.
    pub fn send(&self, to: SiteId, msg: M) {
        let span = msg.trace_span();
        self.trace.emit_span(
            TraceKind::MsgSend,
            span.map(|(o, s, _)| (s, o)),
            Some(to.0),
            None,
            span,
        );
        let _ = self.to_router.send(RouterCmd::Send {
            from: self.site,
            to,
            msg,
        });
    }

    /// Sends a whole batch to `to` through one router command — one channel
    /// hop instead of `msgs.len()`, preserving the batch's internal order
    /// and its FIFO position relative to surrounding [`send`](Self::send)
    /// calls. Each message is still delivered individually after the
    /// configured delay. An empty batch is a no-op.
    pub fn send_many(&self, to: SiteId, msgs: Vec<M>) {
        if msgs.is_empty() {
            return;
        }
        for msg in &msgs {
            let span = msg.trace_span();
            self.trace.emit_span(
                TraceKind::MsgSend,
                span.map(|(o, s, _)| (s, o)),
                Some(to.0),
                None,
                span,
            );
        }
        let _ = self.to_router.send(RouterCmd::SendMany {
            from: self.site,
            to,
            msgs,
        });
    }

    /// Stamps an inbound event into the trace (messages and failure
    /// notifications alike) and passes it through unchanged.
    fn trace_recv(&self, ev: TransportEvent<M>) -> TransportEvent<M> {
        match &ev {
            TransportEvent::Message { from, msg } => {
                let span = msg.trace_span();
                self.trace.emit_span(
                    TraceKind::MsgRecv,
                    span.map(|(o, s, _)| (s, o)),
                    Some(from.0),
                    None,
                    span,
                );
            }
            TransportEvent::SiteFailed { failed } => {
                self.trace
                    .emit(TraceKind::SiteFailed, None, Some(failed.0), None);
            }
        }
        ev
    }

    /// Blocks until an event arrives.
    ///
    /// # Errors
    ///
    /// Returns `Err` once the network has shut down and the inbox drained.
    pub fn recv(&self) -> Result<TransportEvent<M>, crossbeam_channel::RecvError> {
        self.inbox.recv().map(|ev| self.trace_recv(ev))
    }

    /// Receives with a timeout.
    ///
    /// # Errors
    ///
    /// Returns `Err` on timeout or after shutdown.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<TransportEvent<M>, RecvTimeoutError> {
        self.inbox
            .recv_timeout(timeout)
            .map(|ev| self.trace_recv(ev))
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<TransportEvent<M>> {
        self.inbox.try_recv().ok().map(|ev| self.trace_recv(ev))
    }
}

impl<M: Send + SpanCarrier + 'static> TransportEndpoint for Endpoint<M> {
    type Msg = M;

    fn site(&self) -> SiteId {
        Endpoint::site(self)
    }

    fn send(&self, to: SiteId, msg: M) {
        Endpoint::send(self, to, msg)
    }

    fn try_recv(&self) -> Option<TransportEvent<M>> {
        Endpoint::try_recv(self)
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<TransportEvent<M>> {
        Endpoint::recv_timeout(self, timeout).ok()
    }
}

/// A real-time message router between a fixed set of sites.
///
/// Every message is held for `delay` before delivery, emulating a network
/// with uniform point-to-point latency — the paper's "artificially induced
/// network delays" (§5.2.2) — under real thread concurrency.
///
/// # Example
///
/// ```
/// use decaf_net::threaded::ThreadedNet;
/// use decaf_net::TransportEvent;
/// use decaf_vt::SiteId;
/// use std::time::Duration;
///
/// let mut net: ThreadedNet<String> = ThreadedNet::new(2, Duration::from_millis(1));
/// let a = net.endpoint(SiteId(0));
/// let b = net.endpoint(SiteId(1));
/// a.send(SiteId(1), "hi".to_string());
/// match b.recv().unwrap() {
///     TransportEvent::Message { from, msg } => {
///         assert_eq!(from, SiteId(0));
///         assert_eq!(msg, "hi");
///     }
///     other => panic!("unexpected {other:?}"),
/// }
/// net.shutdown();
/// ```
pub struct ThreadedNet<M> {
    endpoints: Vec<Endpoint<M>>,
    to_router: Sender<RouterCmd<M>>,
    router: Option<JoinHandle<u64>>,
    delivered: Arc<Mutex<u64>>,
}

impl<M> fmt::Debug for ThreadedNet<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadedNet")
            .field("sites", &self.endpoints.len())
            .finish()
    }
}

impl<M: Send + 'static> ThreadedNet<M> {
    /// Creates a network of `n` sites (ids `0..n`) with uniform `delay`.
    pub fn new(n: usize, delay: Duration) -> Self {
        let (to_router, cmds) = unbounded::<RouterCmd<M>>();
        let mut inboxes = Vec::with_capacity(n);
        let mut endpoints = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx) = unbounded::<TransportEvent<M>>();
            inboxes.push(tx);
            endpoints.push(Endpoint {
                site: SiteId(i as u32),
                to_router: to_router.clone(),
                inbox: rx,
                trace: TraceSink::disabled(),
            });
        }
        let delivered = Arc::new(Mutex::new(0u64));
        let counter = Arc::clone(&delivered);
        let router = std::thread::Builder::new()
            .name("decaf-net-router".into())
            .spawn(move || Self::route(cmds, inboxes, delay, counter))
            .expect("spawn router thread");
        ThreadedNet {
            endpoints,
            to_router,
            router: Some(router),
            delivered,
        }
    }

    fn route(
        cmds: Receiver<RouterCmd<M>>,
        inboxes: Vec<Sender<TransportEvent<M>>>,
        delay: Duration,
        delivered: Arc<Mutex<u64>>,
    ) -> u64 {
        let mut pending: BinaryHeap<Pending<M>> = BinaryHeap::new();
        let mut disconnected = std::collections::HashSet::new();
        let mut seq = 0u64;
        let mut count = 0u64;
        let mut shutting_down = false;
        loop {
            // Deliver everything due.
            let now = Instant::now();
            while pending.peek().map(|p| p.due <= now).unwrap_or(false) {
                let p = pending.pop().expect("peeked entry exists");
                if disconnected.contains(&p.from) || disconnected.contains(&p.to) {
                    continue;
                }
                if let Some(tx) = inboxes.get(p.to.0 as usize) {
                    if tx
                        .send(TransportEvent::Message {
                            from: p.from,
                            msg: p.msg,
                        })
                        .is_ok()
                    {
                        count += 1;
                        *delivered.lock() = count;
                    }
                }
            }
            if shutting_down && pending.is_empty() {
                return count;
            }
            let timeout = pending
                .peek()
                .map(|p| p.due.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_millis(50));
            match cmds.recv_timeout(timeout) {
                Ok(RouterCmd::Send { from, to, msg }) => {
                    if disconnected.contains(&from) || disconnected.contains(&to) {
                        continue;
                    }
                    seq += 1;
                    pending.push(Pending {
                        due: Instant::now() + delay,
                        seq,
                        from,
                        to,
                        msg,
                    });
                }
                Ok(RouterCmd::SendMany { from, to, msgs }) => {
                    if disconnected.contains(&from) || disconnected.contains(&to) {
                        continue;
                    }
                    // One `due` for the batch; ascending `seq` keeps the
                    // batch's internal order through the heap.
                    let due = Instant::now() + delay;
                    for msg in msgs {
                        seq += 1;
                        pending.push(Pending {
                            due,
                            seq,
                            from,
                            to,
                            msg,
                        });
                    }
                }
                Ok(RouterCmd::Disconnect(site)) => {
                    disconnected.insert(site);
                }
                Ok(RouterCmd::Fail(site)) => {
                    let newly = disconnected.insert(site);
                    if newly {
                        // ISIS-style fail-stop notification (§3.4): every
                        // surviving site hears about the failure.
                        for (i, tx) in inboxes.iter().enumerate() {
                            let observer = SiteId(i as u32);
                            if observer == site || disconnected.contains(&observer) {
                                continue;
                            }
                            let _ = tx.send(TransportEvent::SiteFailed { failed: site });
                        }
                    }
                }
                Ok(RouterCmd::Shutdown) | Err(RecvTimeoutError::Disconnected) => {
                    shutting_down = true;
                }
                Err(RecvTimeoutError::Timeout) => {}
            }
        }
    }

    /// The endpoint for `site`.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range for this network.
    pub fn endpoint(&self, site: SiteId) -> Endpoint<M> {
        self.endpoints
            .get(site.0 as usize)
            .cloned()
            .unwrap_or_else(|| panic!("no such site {site}"))
    }

    /// Emulates a fail-stop of `site`: its pending and future traffic is
    /// discarded. (Failure *notification* delivery is the harness's job on
    /// this transport; use [`fail_site`](ThreadedNet::fail_site) for the
    /// notified variant.)
    pub fn disconnect(&self, site: SiteId) {
        let _ = self.to_router.send(RouterCmd::Disconnect(site));
    }

    /// Fail-stops `site` *and* delivers a [`TransportEvent::SiteFailed`]
    /// notification to every surviving endpoint, reproducing the ISIS
    /// failure-detector behaviour the paper assumes (§3.4).
    pub fn fail_site(&self, site: SiteId) {
        let _ = self.to_router.send(RouterCmd::Fail(site));
    }

    /// Installs `sink` on `site`'s endpoint: send/receive/failure events
    /// are traced with wall-clock timestamps. Endpoints cloned out
    /// *before* this call keep their previous (typically disabled) sink.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range for this network.
    pub fn set_trace_sink(&mut self, site: SiteId, sink: TraceSink) {
        self.endpoints
            .get_mut(site.0 as usize)
            .unwrap_or_else(|| panic!("no such site {site}"))
            .trace = sink;
    }

    /// Total messages delivered so far.
    pub fn delivered(&self) -> u64 {
        *self.delivered.lock()
    }

    /// Flushes remaining traffic and stops the router thread.
    pub fn shutdown(&mut self) {
        let _ = self.to_router.send(RouterCmd::Shutdown);
        if let Some(h) = self.router.take() {
            let _ = h.join();
        }
    }
}

impl<M: Send + SpanCarrier + 'static> Transport for ThreadedNet<M> {
    type Msg = M;
    type Endpoint = Endpoint<M>;

    fn endpoint(&self, site: SiteId) -> Endpoint<M> {
        ThreadedNet::endpoint(self, site)
    }

    fn shutdown(&mut self) {
        ThreadedNet::shutdown(self)
    }
}

impl<M> Drop for ThreadedNet<M> {
    fn drop(&mut self) {
        // Non-blocking best effort; `shutdown` is the clean teardown path.
        let _ = self.to_router.send(RouterCmd::Shutdown);
        if let Some(h) = self.router.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg_of<M>(ev: TransportEvent<M>) -> (SiteId, M) {
        ev.into_message().expect("expected a Message event")
    }

    #[test]
    fn round_trip_between_two_sites() {
        let mut net: ThreadedNet<u32> = ThreadedNet::new(2, Duration::from_millis(1));
        let a = net.endpoint(SiteId(0));
        let b = net.endpoint(SiteId(1));
        a.send(SiteId(1), 5);
        let (from, got) = msg_of(b.recv().unwrap());
        assert_eq!((from, got), (SiteId(0), 5));
        b.send(SiteId(0), got * 2);
        assert_eq!(msg_of(a.recv().unwrap()).1, 10);
        net.shutdown();
        assert_eq!(net.delivered(), 2);
    }

    #[test]
    fn delay_is_enforced() {
        let mut net: ThreadedNet<()> = ThreadedNet::new(2, Duration::from_millis(30));
        let a = net.endpoint(SiteId(0));
        let b = net.endpoint(SiteId(1));
        let start = Instant::now();
        a.send(SiteId(1), ());
        b.recv().unwrap();
        assert!(
            start.elapsed() >= Duration::from_millis(25),
            "message should be delayed ~30ms, took {:?}",
            start.elapsed()
        );
        net.shutdown();
    }

    #[test]
    fn fifo_per_link() {
        let mut net: ThreadedNet<u32> = ThreadedNet::new(2, Duration::from_millis(1));
        let a = net.endpoint(SiteId(0));
        let b = net.endpoint(SiteId(1));
        for i in 0..20 {
            a.send(SiteId(1), i);
        }
        for i in 0..20 {
            assert_eq!(msg_of(b.recv().unwrap()).1, i);
        }
        net.shutdown();
    }

    #[test]
    fn send_many_preserves_order_and_counts() {
        let mut net: ThreadedNet<u32> = ThreadedNet::new(2, Duration::from_millis(1));
        let a = net.endpoint(SiteId(0));
        let b = net.endpoint(SiteId(1));
        a.send(SiteId(1), 0);
        a.send_many(SiteId(1), (1..=10).collect());
        a.send(SiteId(1), 11);
        a.send_many(SiteId(1), Vec::new()); // no-op
        for i in 0..=11 {
            assert_eq!(msg_of(b.recv().unwrap()).1, i);
        }
        net.shutdown();
        assert_eq!(net.delivered(), 12);
    }

    #[test]
    fn disconnect_drops_traffic() {
        let mut net: ThreadedNet<u32> = ThreadedNet::new(3, Duration::from_millis(5));
        let a = net.endpoint(SiteId(0));
        let b = net.endpoint(SiteId(1));
        net.disconnect(SiteId(2));
        a.send(SiteId(2), 1); // dropped
        a.send(SiteId(1), 2); // delivered
        assert_eq!(msg_of(b.recv().unwrap()).1, 2);
        net.shutdown();
        assert_eq!(net.delivered(), 1);
    }

    #[test]
    fn fail_site_notifies_survivors() {
        let mut net: ThreadedNet<u32> = ThreadedNet::new(3, Duration::from_millis(1));
        let a = net.endpoint(SiteId(0));
        let b = net.endpoint(SiteId(1));
        net.fail_site(SiteId(2));
        for ep in [&a, &b] {
            match ep.recv_timeout(Duration::from_secs(1)).unwrap() {
                TransportEvent::SiteFailed { failed } => assert_eq!(failed, SiteId(2)),
                other => panic!("unexpected {other:?}"),
            }
        }
        // Traffic to the failed site is discarded; survivors still talk.
        a.send(SiteId(2), 9);
        a.send(SiteId(1), 3);
        assert_eq!(msg_of(b.recv().unwrap()).1, 3);
        // A second fail_site is idempotent — no duplicate notification.
        net.fail_site(SiteId(2));
        assert!(a.recv_timeout(Duration::from_millis(80)).is_err());
        net.shutdown();
    }

    #[test]
    fn concurrent_senders() {
        let mut net: ThreadedNet<u32> = ThreadedNet::new(4, Duration::from_millis(1));
        let sink = net.endpoint(SiteId(0));
        let mut handles = Vec::new();
        for s in 1..4u32 {
            let ep = net.endpoint(SiteId(s));
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    ep.send(SiteId(0), s * 1000 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut got = 0;
        while got < 150 {
            sink.recv().unwrap();
            got += 1;
        }
        net.shutdown();
    }

    #[test]
    fn trait_object_style_generic_driving() {
        fn ping<T: Transport<Msg = u8>>(net: &T) -> Option<(SiteId, u8)> {
            let a = net.endpoint(SiteId(0));
            let b = net.endpoint(SiteId(1));
            a.send(SiteId(1), 0xAB);
            b.recv_timeout(Duration::from_secs(1))
                .and_then(TransportEvent::into_message)
        }
        let mut net: ThreadedNet<u8> = ThreadedNet::new(2, Duration::from_millis(1));
        assert_eq!(ping(&net), Some((SiteId(0), 0xAB)));
        Transport::shutdown(&mut net);
    }
}
