//! Deterministic discrete-event network simulator.
//!
//! The simulator carries opaque messages of type `M` between sites with a
//! configurable [`LatencyModel`], plus two auxiliary event kinds the DECAF
//! experiments need:
//!
//! * **timers** — the workload generators schedule "user gesture" events as
//!   timers ([`SimNet::set_timer`]);
//! * **fail-stop failure notification** — the paper assumes "the underlying
//!   communication infrastructure provides notification of such failures
//!   and, as common in systems such as ISIS, presents them to the
//!   application as fail-stop failures" (§3.4). [`SimNet::fail_site`]
//!   reproduces that: the failed site's traffic is cut off and every
//!   surviving observer receives a [`Event::SiteFailed`] notification.
//!
//! Determinism: events at equal simulated times are delivered in the order
//! they were scheduled (a per-net sequence number breaks ties), and latency
//! jitter comes from a seeded RNG, so a run is a pure function of its
//! inputs.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use decaf_vt::SiteId;

/// A point in simulated time, with microsecond resolution.
///
/// # Example
///
/// ```
/// use decaf_net::sim::SimTime;
///
/// let t = SimTime::from_millis(3) + SimTime::from_micros(500);
/// assert_eq!(t.as_micros(), 3_500);
/// assert_eq!(t.as_millis_f64(), 3.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero — the start of every simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs a time from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Constructs a time from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Constructs a time from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// This time as whole microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// This time as (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This time as (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

/// Per-link message latency model.
///
/// The paper's performance analysis is parameterized by "the average network
/// latency of a single point-to-point message, `t` ms" (§5.1.1). The model
/// supports a uniform `t`, per-link overrides, and optional bounded uniform
/// jitter from a seeded RNG.
///
/// # Example
///
/// ```
/// use decaf_net::sim::{LatencyModel, SimTime};
/// use decaf_vt::SiteId;
///
/// let mut m = LatencyModel::uniform(SimTime::from_millis(20))
///     .with_link(SiteId(1), SiteId(2), SimTime::from_millis(5));
/// assert_eq!(m.sample(SiteId(1), SiteId(2)), SimTime::from_millis(5));
/// assert_eq!(m.sample(SiteId(1), SiteId(3)), SimTime::from_millis(20));
/// ```
#[derive(Debug, Clone)]
pub struct LatencyModel {
    default: SimTime,
    links: HashMap<(SiteId, SiteId), SimTime>,
    /// Jitter as a fraction of the base latency (0.0 = none).
    jitter_frac: f64,
    rng: SmallRng,
}

impl LatencyModel {
    /// Every message takes exactly `t`, matching the paper's analysis.
    pub fn uniform(t: SimTime) -> Self {
        LatencyModel {
            default: t,
            links: HashMap::new(),
            jitter_frac: 0.0,
            rng: SmallRng::seed_from_u64(0),
        }
    }

    /// Overrides the latency of the (directed) pair `from -> to` and its
    /// reverse.
    pub fn with_link(mut self, a: SiteId, b: SiteId, t: SimTime) -> Self {
        self.links.insert((a, b), t);
        self.links.insert((b, a), t);
        self
    }

    /// Adds symmetric uniform jitter of `frac` (e.g. `0.1` = ±10%) drawn
    /// from a RNG seeded with `seed`.
    pub fn with_jitter(mut self, frac: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&frac),
            "jitter fraction must be in [0,1)"
        );
        self.jitter_frac = frac;
        self.rng = SmallRng::seed_from_u64(seed);
        self
    }

    /// Samples the latency of one message on the link `from -> to`.
    pub fn sample(&mut self, from: SiteId, to: SiteId) -> SimTime {
        let base = *self.links.get(&(from, to)).unwrap_or(&self.default);
        if self.jitter_frac == 0.0 {
            return base;
        }
        let us = base.as_micros() as f64;
        let delta = self.rng.gen_range(-self.jitter_frac..=self.jitter_frac);
        SimTime::from_micros((us * (1.0 + delta)).max(1.0) as u64)
    }
}

/// What happens to messages already in flight when a site fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailMode {
    /// In-flight messages to and from the failed site are discarded
    /// (strict fail-stop cut-off; the default).
    #[default]
    DropInFlight,
    /// Messages the failed site sent before failing are still delivered;
    /// messages addressed to it are discarded.
    DeliverInFlight,
}

/// An event surfaced by [`SimNet::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<M> {
    /// A message arrived at `to`.
    Deliver {
        /// Simulated delivery time.
        at: SimTime,
        /// Sending site.
        from: SiteId,
        /// Receiving site.
        to: SiteId,
        /// The payload.
        msg: M,
    },
    /// A timer set by [`SimNet::set_timer`] expired at `site`.
    Timer {
        /// Simulated expiry time.
        at: SimTime,
        /// Site the timer belongs to.
        site: SiteId,
        /// Caller-chosen token identifying the timer's purpose.
        token: u64,
    },
    /// The communication layer notifies `observer` that `failed` has
    /// fail-stopped (paper §3.4).
    SiteFailed {
        /// Simulated notification time.
        at: SimTime,
        /// Surviving site receiving the notification.
        observer: SiteId,
        /// The site that failed.
        failed: SiteId,
    },
}

impl<M> Event<M> {
    /// The simulated time at which this event occurs.
    pub fn at(&self) -> SimTime {
        match self {
            Event::Deliver { at, .. } | Event::Timer { at, .. } | Event::SiteFailed { at, .. } => {
                *at
            }
        }
    }
}

#[derive(Debug)]
enum Payload<M> {
    Msg { from: SiteId, to: SiteId, msg: M },
    Timer { site: SiteId, token: u64 },
    FailNotice { observer: SiteId, failed: SiteId },
}

#[derive(Debug)]
struct Queued<M> {
    at: SimTime,
    seq: u64,
    payload: Payload<M>,
}

impl<M> PartialEq for Queued<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Queued<M> {}
impl<M> PartialOrd for Queued<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Queued<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Counters describing a finished (or in-progress) simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to [`SimNet::send`].
    pub sent: u64,
    /// Messages delivered to a live site. With the duplication fault
    /// enabled this can exceed `sent`.
    pub delivered: u64,
    /// Messages discarded because an endpoint had failed or a link was
    /// severed (per-link breakdown via [`SimNet::dropped_on`]).
    pub dropped: u64,
    /// Extra copies injected by the duplication fault
    /// ([`SimNet::set_duplication`]); not counted in `sent`.
    pub duplicated: u64,
}

/// The deterministic event-driven network.
///
/// Drive it in a loop: inject initial messages/timers, then repeatedly call
/// [`step`](SimNet::step), hand each [`Event`] to the owning site's state
/// machine, and [`send`](SimNet::send) whatever the site emits.
///
/// # Example
///
/// ```
/// use decaf_net::sim::{Event, LatencyModel, SimNet, SimTime};
/// use decaf_vt::SiteId;
///
/// let mut net: SimNet<u32> = SimNet::new(LatencyModel::uniform(SimTime::from_millis(5)));
/// net.set_timer(SiteId(1), SimTime::from_millis(1), 42);
/// net.send(SiteId(1), SiteId(2), 7);
/// // Timer at 1ms fires before the 5ms delivery:
/// assert!(matches!(net.step(), Some(Event::Timer { token: 42, .. })));
/// assert!(matches!(net.step(), Some(Event::Deliver { msg: 7, .. })));
/// assert!(net.step().is_none());
/// ```
#[derive(Debug)]
pub struct SimNet<M> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Queued<M>>,
    latency: LatencyModel,
    failed: HashSet<SiteId>,
    /// Sites transiently down (crash-restart, **without** fail-stop
    /// notification — the failure detector hasn't fired, or the site is
    /// expected back before it would). In-flight deliveries to a crashed
    /// site are lost with its process; *new* sends are parked per the
    /// sender's retrying transport and redelivered FIFO on restart.
    crashed: HashSet<SiteId>,
    /// Messages parked while their destination is crashed, in send order.
    crash_parked: Vec<(SiteId, SiteId, M)>,
    fail_mode: FailMode,
    /// Bidirectionally severed links (network partition). Messages sent
    /// while a link is down are dropped; in-flight messages still arrive.
    down_links: HashSet<(SiteId, SiteId)>,
    /// Active two-group partition, if any (see [`SimNet::partition`]).
    partition: Option<(HashSet<SiteId>, HashSet<SiteId>)>,
    /// Messages parked while a partition separates their endpoints, in
    /// send order; redelivered FIFO on [`SimNet::heal`].
    parked: Vec<(SiteId, SiteId, M)>,
    /// Per-directed-link delivery-time floors keeping a heal's redelivered
    /// batch FIFO with respect to later sends on the same link.
    link_floor: HashMap<(SiteId, SiteId), SimTime>,
    /// Per-(undirected)-link drop counters (see [`SimNet::dropped_on`]).
    link_drops: HashMap<(SiteId, SiteId), u64>,
    /// Message-duplication fault: probability plus a dedicated seeded RNG.
    duplication: Option<(f64, SmallRng)>,
    stats: NetStats,
}

impl<M> SimNet<M> {
    /// Creates a network with the given latency model.
    pub fn new(latency: LatencyModel) -> Self {
        SimNet {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            latency,
            failed: HashSet::new(),
            crashed: HashSet::new(),
            crash_parked: Vec::new(),
            fail_mode: FailMode::default(),
            down_links: HashSet::new(),
            partition: None,
            parked: Vec::new(),
            link_floor: HashMap::new(),
            link_drops: HashMap::new(),
            duplication: None,
            stats: NetStats::default(),
        }
    }

    /// Sets the policy for in-flight messages on failure.
    pub fn set_fail_mode(&mut self, mode: FailMode) {
        self.fail_mode = mode;
    }

    /// Current simulated time (the time of the last event stepped).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Whether `site` has fail-stopped.
    pub fn is_failed(&self, site: SiteId) -> bool {
        self.failed.contains(&site)
    }

    /// Sends `msg` from `from` to `to`; it will be delivered after the
    /// link's sampled latency. Messages involving failed sites or a
    /// severed link are counted as dropped; messages crossing an active
    /// [`partition`](SimNet::partition) are parked until
    /// [`heal`](SimNet::heal).
    pub fn send(&mut self, from: SiteId, to: SiteId, msg: M)
    where
        M: Clone,
    {
        self.stats.sent += 1;
        if self.failed.contains(&from)
            || self.failed.contains(&to)
            || self.crashed.contains(&from)
            || self.down_links.contains(&link_key(from, to))
        {
            self.drop_on_link(from, to);
            return;
        }
        if self.crashed.contains(&to) {
            // The destination's process is down but expected back: the
            // sender's transport holds the envelope and retries after
            // reconnect (mirroring the TCP mesh's stranded-envelope
            // redelivery), so park rather than drop.
            self.crash_parked.push((from, to, msg));
            return;
        }
        if self.crosses_partition(from, to) {
            self.parked.push((from, to, msg));
            return;
        }
        let dup = match &mut self.duplication {
            Some((frac, rng)) => rng.gen_bool(*frac).then(|| msg.clone()),
            None => None,
        };
        self.schedule_msg(from, to, msg);
        if let Some(copy) = dup {
            self.stats.duplicated += 1;
            self.schedule_msg(from, to, copy);
        }
    }

    /// Schedules one message delivery, clamping to the per-link FIFO
    /// floor. DECAF assumes reliable FIFO links (§3.4), so jitter varies
    /// per-message delay but must never reorder a directed link: each
    /// send raises the link's floor to its own delivery time, and later
    /// sends that sample a shorter latency are clamped up to it. Equal
    /// times deliver in schedule order (seq tiebreak), so clamped sends
    /// stay behind the messages ahead of them — including a heal's
    /// redelivered batch, which maintains the same floor.
    fn schedule_msg(&mut self, from: SiteId, to: SiteId, msg: M) {
        let mut at = self.now + self.latency.sample(from, to);
        if let Some(&floor) = self.link_floor.get(&(from, to)) {
            if at < floor {
                at = floor;
            }
        }
        self.link_floor.insert((from, to), at);
        self.push(at, Payload::Msg { from, to, msg });
    }

    fn drop_on_link(&mut self, from: SiteId, to: SiteId) {
        self.stats.dropped += 1;
        *self.link_drops.entry(link_key(from, to)).or_insert(0) += 1;
    }

    /// Messages dropped so far on the (undirected) link between `a` and
    /// `b` — failed-endpoint and severed-link drops broken out per link;
    /// the aggregate is [`NetStats::dropped`].
    pub fn dropped_on(&self, a: SiteId, b: SiteId) -> u64 {
        *self.link_drops.get(&link_key(a, b)).unwrap_or(&0)
    }

    /// Partitions the network into two groups: sends between the groups
    /// are *parked* (not dropped) until [`heal`](SimNet::heal) restores
    /// connectivity. The DECAF protocol assumes reliable FIFO links with
    /// fail-stop disconnection (§3.4), so a transient partition must delay
    /// traffic, not lose it — unlike [`set_link_down`](SimNet::set_link_down),
    /// which models loss. Messages already in flight when the partition
    /// starts still arrive; intra-group traffic and traffic involving
    /// sites in neither group are unaffected. Fail-stop notifications
    /// ([`fail_site`](SimNet::fail_site)) model an out-of-band failure
    /// detector and are not parked.
    ///
    /// Calling `partition` while one is active heals the old one first
    /// (releasing its parked traffic), so a fault plan can move straight
    /// from one cut to another.
    ///
    /// # Panics
    ///
    /// Panics if the two groups overlap.
    pub fn partition(&mut self, group_a: &[SiteId], group_b: &[SiteId]) {
        if self.partition.is_some() {
            self.heal();
        }
        let a: HashSet<SiteId> = group_a.iter().copied().collect();
        let b: HashSet<SiteId> = group_b.iter().copied().collect();
        assert!(a.is_disjoint(&b), "partition groups must be disjoint");
        self.partition = Some((a, b));
    }

    /// Heals an active partition, re-injecting every parked message with a
    /// freshly sampled latency while preserving per-link FIFO order (each
    /// directed link's deliveries keep their send order, and later sends
    /// on that link cannot overtake the redelivered batch). No-op if no
    /// partition is active.
    pub fn heal(&mut self) {
        self.partition = None;
        let parked = std::mem::take(&mut self.parked);
        for (from, to, msg) in parked {
            if self.failed.contains(&from) || self.failed.contains(&to) {
                self.drop_on_link(from, to);
                continue;
            }
            if self.crashed.contains(&to) {
                self.crash_parked.push((from, to, msg));
                continue;
            }
            self.schedule_msg(from, to, msg);
        }
    }

    /// Whether a [`partition`](SimNet::partition) is currently active.
    pub fn is_partitioned(&self) -> bool {
        self.partition.is_some()
    }

    /// Number of messages currently parked by an active partition.
    pub fn parked(&self) -> usize {
        self.parked.len()
    }

    /// Number of messages parked for crashed destinations.
    pub fn crash_parked(&self) -> usize {
        self.crash_parked.len()
    }

    /// Whether a send `from -> to` would cross the active partition.
    fn crosses_partition(&self, from: SiteId, to: SiteId) -> bool {
        match &self.partition {
            Some((a, b)) => {
                (a.contains(&from) && b.contains(&to)) || (b.contains(&from) && a.contains(&to))
            }
            None => false,
        }
    }

    /// Enables the message-duplication fault: each send is delivered an
    /// extra time with probability `frac`, with independently sampled
    /// latency, drawn from a RNG seeded with `seed`. Pass `frac = 0.0` to
    /// disable. Duplicates count in [`NetStats::duplicated`] and
    /// [`NetStats::delivered`] but not [`NetStats::sent`]; note that the
    /// DECAF engine assumes reliable (exactly-once) links, so this fault
    /// is for transport-level testing.
    pub fn set_duplication(&mut self, frac: f64, seed: u64) {
        assert!(
            (0.0..=1.0).contains(&frac),
            "duplication fraction must be in [0,1]"
        );
        self.duplication = if frac > 0.0 {
            Some((frac, SmallRng::seed_from_u64(seed)))
        } else {
            None
        };
    }

    /// Schedules a timer for `site`, expiring `delay` after the current
    /// simulated time, carrying a caller-chosen `token`.
    pub fn set_timer(&mut self, site: SiteId, delay: SimTime, token: u64) {
        self.push(self.now + delay, Payload::Timer { site, token });
    }

    /// Severs the (bidirectional) link between `a` and `b`: subsequent
    /// sends on it are dropped until [`set_link_up`](SimNet::set_link_up).
    /// Messages already in flight still arrive.
    ///
    /// The DECAF protocol assumes reliable FIFO links with fail-stop
    /// disconnection (§3.4), so a lasting partition should be surfaced to
    /// the sites as a failure notification; transient use is for testing
    /// loss behaviour.
    pub fn set_link_down(&mut self, a: SiteId, b: SiteId) {
        self.down_links.insert(link_key(a, b));
    }

    /// Restores a severed link.
    pub fn set_link_up(&mut self, a: SiteId, b: SiteId) {
        self.down_links.remove(&link_key(a, b));
    }

    /// Whether the link between `a` and `b` is currently severed.
    pub fn is_link_down(&self, a: SiteId, b: SiteId) -> bool {
        self.down_links.contains(&link_key(a, b))
    }

    /// Fail-stops `site` now.
    ///
    /// In-flight traffic is handled per [`FailMode`]; every site in
    /// `observers` receives an [`Event::SiteFailed`] notification after the
    /// failed-link latency (modelling the communication layer's failure
    /// detector).
    pub fn fail_site(&mut self, site: SiteId, observers: impl IntoIterator<Item = SiteId>) {
        self.failed.insert(site);
        // Discard queued deliveries involving the failed site: both
        // directions in DropInFlight, inbound only in DeliverInFlight.
        let drained = std::mem::take(&mut self.queue);
        let mut kept = BinaryHeap::with_capacity(drained.len());
        for q in drained {
            let cut = match (&q.payload, self.fail_mode) {
                (Payload::Msg { from, to, .. }, FailMode::DropInFlight) => {
                    *from == site || *to == site
                }
                (Payload::Msg { to, .. }, FailMode::DeliverInFlight) => *to == site,
                _ => false,
            };
            if cut {
                if let Payload::Msg { from, to, .. } = &q.payload {
                    let (from, to) = (*from, *to);
                    self.drop_on_link(from, to);
                }
            } else {
                kept.push(q);
            }
        }
        self.queue = kept;
        // Parked partition traffic involving the failed site will never be
        // deliverable; account for it now rather than at heal time.
        let parked = std::mem::take(&mut self.parked);
        self.parked = parked
            .into_iter()
            .filter(|(from, to, _)| {
                if *from == site || *to == site {
                    self.stats.dropped += 1;
                    *self.link_drops.entry(link_key(*from, *to)).or_insert(0) += 1;
                    false
                } else {
                    true
                }
            })
            .collect();
        for observer in observers {
            if observer == site || self.failed.contains(&observer) {
                continue;
            }
            let delay = self.latency.sample(site, observer);
            self.push(
                self.now + delay,
                Payload::FailNotice {
                    observer,
                    failed: site,
                },
            );
        }
    }

    /// Crashes `site` *transiently*: its process dies now but is expected
    /// to restart ([`restart_site`](SimNet::restart_site)), so — unlike
    /// [`fail_site`](SimNet::fail_site) — **no** failure notification is
    /// emitted (the failure detector's window is assumed longer than the
    /// outage). In-flight deliveries addressed to the site are lost with
    /// its process (kernel socket buffers die with it); traffic it already
    /// put on the wire still arrives. Sends addressed to it while down are
    /// parked FIFO and redelivered on restart, modelling peers' retrying
    /// transports. Timers for the site are *kept*: the fault injector uses
    /// a timer to schedule the restart itself, and the driver is expected
    /// to ignore application timers that fire for a crashed site.
    pub fn crash_site(&mut self, site: SiteId) {
        self.crashed.insert(site);
        let drained = std::mem::take(&mut self.queue);
        let mut kept = BinaryHeap::with_capacity(drained.len());
        for q in drained {
            match &q.payload {
                Payload::Msg { from, to, .. } if *to == site => {
                    let (from, to) = (*from, *to);
                    self.drop_on_link(from, to);
                }
                _ => kept.push(q),
            }
        }
        self.queue = kept;
        // Partition-parked traffic addressed to the crashed site moves to
        // the crash queue so a heal during the outage cannot deliver it
        // early; it is released (and re-checked against any partition) at
        // restart.
        let parked = std::mem::take(&mut self.parked);
        for (from, to, msg) in parked {
            if to == site {
                self.crash_parked.push((from, to, msg));
            } else {
                self.parked.push((from, to, msg));
            }
        }
    }

    /// Brings a crashed site back: parked traffic addressed to it is
    /// re-injected in send order with freshly sampled latencies (per-link
    /// FIFO floors keep each directed link ordered, and later sends cannot
    /// overtake the redelivered batch). Messages whose sender has since
    /// fail-stopped are dropped; messages that would cross an active
    /// partition are parked with the partition's traffic instead.
    pub fn restart_site(&mut self, site: SiteId) {
        if !self.crashed.remove(&site) {
            return;
        }
        let parked = std::mem::take(&mut self.crash_parked);
        for (from, to, msg) in parked {
            if to != site {
                self.crash_parked.push((from, to, msg));
            } else if self.failed.contains(&from) {
                self.drop_on_link(from, to);
            } else if self.crosses_partition(from, to) {
                self.parked.push((from, to, msg));
            } else {
                self.schedule_msg(from, to, msg);
            }
        }
    }

    /// Whether `site` is currently crashed (down but expected back).
    pub fn is_crashed(&self, site: SiteId) -> bool {
        self.crashed.contains(&site)
    }

    /// Pops the next event, advancing simulated time to it.
    ///
    /// Returns `None` when the queue is empty (the system has quiesced).
    pub fn step(&mut self) -> Option<Event<M>> {
        loop {
            let q = self.queue.pop()?;
            self.now = q.at;
            match q.payload {
                Payload::Msg { from, to, msg } => {
                    let from_dead =
                        self.fail_mode == FailMode::DropInFlight && self.failed.contains(&from);
                    if self.failed.contains(&to) || from_dead {
                        self.drop_on_link(from, to);
                        continue;
                    }
                    if self.crashed.contains(&to) {
                        // Scheduled before the crash via a path that did
                        // not purge (e.g. a heal raced the outage): the
                        // destination is down, so the sender's transport
                        // holds it for redelivery at restart.
                        self.crash_parked.push((from, to, msg));
                        continue;
                    }
                    self.stats.delivered += 1;
                    return Some(Event::Deliver {
                        at: q.at,
                        from,
                        to,
                        msg,
                    });
                }
                Payload::Timer { site, token } => {
                    if self.failed.contains(&site) {
                        continue;
                    }
                    return Some(Event::Timer {
                        at: q.at,
                        site,
                        token,
                    });
                }
                Payload::FailNotice { observer, failed } => {
                    if self.failed.contains(&observer) || self.crashed.contains(&observer) {
                        // A crashed observer's detector state dies with
                        // it; after restart it re-learns membership from
                        // the rejoin exchange instead.
                        continue;
                    }
                    return Some(Event::SiteFailed {
                        at: q.at,
                        observer,
                        failed,
                    });
                }
            }
        }
    }

    /// The simulated time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|q| q.at)
    }

    /// Number of events still queued.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    fn push(&mut self, at: SimTime, payload: Payload<M>) {
        self.seq += 1;
        self.queue.push(Queued {
            at,
            seq: self.seq,
            payload,
        });
    }
}

/// Canonical (sorted) key for an undirected link.
fn link_key(a: SiteId, b: SiteId) -> (SiteId, SiteId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

// ---------------------------------------------------------------------------
// Transport-trait adapter
// ---------------------------------------------------------------------------

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use decaf_trace::{SpanCarrier, TraceKind, TraceSink};

use crate::{Transport, TransportEndpoint, TransportEvent};

/// Simulated time as the nanosecond timestamp a trace event carries.
/// Traces stamped from virtual time are a pure function of the run, so
/// golden tests can assert exact event sequences.
fn sim_ns(t: SimTime) -> u64 {
    t.as_micros().saturating_mul(1_000)
}

struct SimShared<M> {
    net: SimNet<M>,
    queues: HashMap<SiteId, VecDeque<TransportEvent<M>>>,
    /// Per-site trace sinks; events are stamped with *simulated* time via
    /// [`TraceSink::emit_at`] so traces are deterministic.
    traces: HashMap<SiteId, TraceSink>,
}

impl<M: SpanCarrier> SimShared<M> {
    /// Steps the simulator until `site`'s queue is non-empty or the network
    /// quiesces, routing every surfaced event to its owner's queue. Timer
    /// events are outside the [`Transport`] vocabulary and are discarded
    /// (drive [`SimNet`] directly if the workload needs timers).
    fn pump_for(&mut self, site: SiteId) -> Option<TransportEvent<M>> {
        loop {
            if let Some(ev) = self.queues.entry(site).or_default().pop_front() {
                return Some(ev);
            }
            match self.net.step()? {
                Event::Deliver { at, from, to, msg } => {
                    if let Some(sink) = self.traces.get(&to) {
                        let span = msg.trace_span();
                        sink.emit_at_span(
                            sim_ns(at),
                            TraceKind::MsgRecv,
                            span.map(|(o, s, _)| (s, o)),
                            Some(from.0),
                            None,
                            span,
                        );
                    }
                    self.queues
                        .entry(to)
                        .or_default()
                        .push_back(TransportEvent::Message { from, msg });
                }
                Event::SiteFailed {
                    at,
                    observer,
                    failed,
                } => {
                    if let Some(sink) = self.traces.get(&observer) {
                        sink.emit_at(
                            sim_ns(at),
                            TraceKind::SiteFailed,
                            None,
                            Some(failed.0),
                            None,
                        );
                    }
                    self.queues
                        .entry(observer)
                        .or_default()
                        .push_back(TransportEvent::SiteFailed { failed });
                }
                Event::Timer { .. } => {}
            }
        }
    }
}

/// [`Transport`]-trait facade over a shared [`SimNet`].
///
/// The raw simulator is pull-based: one driver owns it and calls
/// [`SimNet::step`]. This adapter instead hands out per-site
/// [`SimEndpoint`]s whose `try_recv` transparently advances virtual time
/// until an event for that site (or quiescence) is reached — the same
/// endpoint-oriented shape as the threaded and TCP substrates, so
/// substrate-generic tests can run deterministically.
///
/// `recv_timeout` ignores its wall-clock argument: the simulator lives in
/// virtual time, so "waiting" just means stepping further.
///
/// # Example
///
/// ```
/// use decaf_net::sim::{LatencyModel, SimTime, SimTransport};
/// use decaf_net::{Transport, TransportEndpoint, TransportEvent};
/// use decaf_vt::SiteId;
///
/// let net: SimTransport<u32> =
///     SimTransport::new(LatencyModel::uniform(SimTime::from_millis(5)));
/// let a = net.endpoint(SiteId(1));
/// let b = net.endpoint(SiteId(2));
/// a.send(SiteId(2), 7);
/// assert_eq!(
///     b.try_recv().and_then(TransportEvent::into_message),
///     Some((SiteId(1), 7)),
/// );
/// ```
pub struct SimTransport<M> {
    shared: Arc<Mutex<SimShared<M>>>,
}

impl<M> fmt::Debug for SimTransport<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimTransport").finish_non_exhaustive()
    }
}

impl<M> SimTransport<M> {
    /// Creates a transport over a fresh simulator with `latency`.
    pub fn new(latency: LatencyModel) -> Self {
        SimTransport {
            shared: Arc::new(Mutex::new(SimShared {
                net: SimNet::new(latency),
                queues: HashMap::new(),
                traces: HashMap::new(),
            })),
        }
    }

    /// Installs `sink` as `site`'s trace sink. Send/receive/failure events
    /// are stamped with **simulated** time, so a given workload always
    /// produces byte-identical traces — the basis of the golden tests.
    pub fn set_trace_sink(&self, site: SiteId, sink: TraceSink) {
        self.shared.lock().traces.insert(site, sink);
    }

    /// Fail-stops `site`, notifying every site that has obtained an
    /// endpoint (the registered membership).
    pub fn fail_site(&self, site: SiteId) {
        let mut shared = self.shared.lock();
        let observers: Vec<SiteId> = shared.queues.keys().copied().collect();
        shared.net.fail_site(site, observers);
    }

    /// Traffic counters of the underlying simulator.
    pub fn stats(&self) -> NetStats {
        self.shared.lock().net.stats()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.shared.lock().net.now()
    }
}

impl<M: Clone + SpanCarrier> Transport for SimTransport<M> {
    type Msg = M;
    type Endpoint = SimEndpoint<M>;

    fn endpoint(&self, site: SiteId) -> SimEndpoint<M> {
        // Register the site so fail_site knows the membership.
        self.shared.lock().queues.entry(site).or_default();
        SimEndpoint {
            site,
            shared: Arc::clone(&self.shared),
        }
    }

    fn shutdown(&mut self) {}
}

/// One site's handle onto a [`SimTransport`].
pub struct SimEndpoint<M> {
    site: SiteId,
    shared: Arc<Mutex<SimShared<M>>>,
}

impl<M> fmt::Debug for SimEndpoint<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimEndpoint")
            .field("site", &self.site)
            .finish()
    }
}

impl<M> Clone for SimEndpoint<M> {
    fn clone(&self) -> Self {
        SimEndpoint {
            site: self.site,
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<M: Clone + SpanCarrier> TransportEndpoint for SimEndpoint<M> {
    type Msg = M;

    fn site(&self) -> SiteId {
        self.site
    }

    fn send(&self, to: SiteId, msg: M) {
        let mut shared = self.shared.lock();
        let from = self.site;
        if let Some(sink) = shared.traces.get(&from) {
            let span = msg.trace_span();
            sink.emit_at_span(
                sim_ns(shared.net.now()),
                TraceKind::MsgSend,
                span.map(|(o, s, _)| (s, o)),
                Some(to.0),
                None,
                span,
            );
        }
        shared.net.send(from, to, msg);
    }

    fn try_recv(&self) -> Option<TransportEvent<M>> {
        self.shared.lock().pump_for(self.site)
    }

    fn recv_timeout(&self, _timeout: Duration) -> Option<TransportEvent<M>> {
        // Virtual time: a timeout is just "advance until quiescence".
        self.try_recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(ms: u64) -> SimNet<u32> {
        SimNet::new(LatencyModel::uniform(SimTime::from_millis(ms)))
    }

    #[test]
    fn delivery_after_uniform_latency() {
        let mut n = net(10);
        n.send(SiteId(1), SiteId(2), 99);
        let e = n.step().unwrap();
        assert_eq!(e.at(), SimTime::from_millis(10));
        assert!(matches!(
            e,
            Event::Deliver {
                from: SiteId(1),
                to: SiteId(2),
                msg: 99,
                ..
            }
        ));
    }

    #[test]
    fn fifo_order_among_equal_times() {
        let mut n = net(10);
        n.send(SiteId(1), SiteId(2), 1);
        n.send(SiteId(1), SiteId(2), 2);
        n.send(SiteId(1), SiteId(2), 3);
        let order: Vec<u32> = (0..3)
            .map(|_| match n.step().unwrap() {
                Event::Deliver { msg, .. } => msg,
                _ => panic!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn time_advances_monotonically() {
        let mut n = net(10);
        n.send(SiteId(1), SiteId(2), 1);
        n.step().unwrap();
        // A send at now=10ms lands at 20ms.
        n.send(SiteId(2), SiteId(1), 2);
        let e = n.step().unwrap();
        assert_eq!(e.at(), SimTime::from_millis(20));
    }

    #[test]
    fn per_link_override() {
        let model = LatencyModel::uniform(SimTime::from_millis(50)).with_link(
            SiteId(1),
            SiteId(2),
            SimTime::from_millis(5),
        );
        let mut n: SimNet<u32> = SimNet::new(model);
        n.send(SiteId(1), SiteId(3), 0);
        n.send(SiteId(2), SiteId(1), 1);
        let first = n.step().unwrap();
        assert!(
            matches!(first, Event::Deliver { msg: 1, .. }),
            "short link delivers first"
        );
    }

    #[test]
    fn timers_interleave_with_messages() {
        let mut n = net(10);
        n.send(SiteId(1), SiteId(2), 7);
        n.set_timer(SiteId(1), SimTime::from_millis(3), 42);
        assert!(matches!(n.step(), Some(Event::Timer { token: 42, .. })));
        assert!(matches!(n.step(), Some(Event::Deliver { .. })));
    }

    #[test]
    fn failed_site_traffic_dropped_and_observers_notified() {
        let mut n = net(10);
        n.send(SiteId(1), SiteId(2), 7); // in flight to the failing site
        n.fail_site(SiteId(2), [SiteId(1), SiteId(3)]);
        let mut notices = 0;
        while let Some(e) = n.step() {
            match e {
                Event::SiteFailed { failed, .. } => {
                    assert_eq!(failed, SiteId(2));
                    notices += 1;
                }
                Event::Deliver { .. } => panic!("delivery to failed site"),
                _ => {}
            }
        }
        assert_eq!(notices, 2);
        assert_eq!(n.stats().dropped, 1);
        // Sends to a failed site are dropped immediately.
        n.send(SiteId(3), SiteId(2), 8);
        assert_eq!(n.stats().dropped, 2);
    }

    #[test]
    fn deliver_in_flight_mode_keeps_outbound() {
        let mut n = net(10);
        n.set_fail_mode(FailMode::DeliverInFlight);
        n.send(SiteId(2), SiteId(1), 7); // from the failing site
        n.fail_site(SiteId(2), []);
        // step() still filters by the `from` check... in DeliverInFlight the
        // queue keeps it, but delivery-time filtering must allow it.
        let mut delivered = false;
        while let Some(e) = n.step() {
            if matches!(e, Event::Deliver { msg: 7, .. }) {
                delivered = true;
            }
        }
        // Documented behaviour: DeliverInFlight retains the queue entry, but
        // final delivery also requires the sender to be alive at delivery
        // time only in DropInFlight mode.
        assert!(delivered, "pre-failure sends delivered in DeliverInFlight");
    }

    #[test]
    fn crash_loses_inbound_in_flight_keeps_outbound_and_parks_new_sends() {
        let mut n = net(10);
        n.send(SiteId(1), SiteId(2), 7); // inbound to the crashing site
        n.send(SiteId(2), SiteId(3), 8); // already on the wire from it
        n.crash_site(SiteId(2));
        assert!(n.is_crashed(SiteId(2)));
        assert_eq!(n.stats().dropped, 1, "inbound in-flight died with it");
        let mut got = Vec::new();
        while let Some(e) = n.step() {
            match e {
                Event::Deliver { msg, .. } => got.push(msg),
                Event::SiteFailed { .. } => panic!("crash must not emit a failure notice"),
                _ => {}
            }
        }
        assert_eq!(got, vec![8], "outbound in-flight still arrives");
        // New sends to the crashed site are parked, not dropped.
        n.send(SiteId(3), SiteId(2), 9);
        assert_eq!(n.crash_parked(), 1);
        assert_eq!(n.stats().dropped, 1);
    }

    #[test]
    fn restart_redelivers_parked_sends_in_order() {
        let mut n = net(10);
        n.crash_site(SiteId(2));
        n.send(SiteId(1), SiteId(2), 1);
        n.send(SiteId(1), SiteId(2), 2);
        n.send(SiteId(3), SiteId(2), 3);
        assert!(n.step().is_none(), "everything parked while down");
        n.restart_site(SiteId(2));
        assert!(!n.is_crashed(SiteId(2)));
        assert_eq!(n.crash_parked(), 0);
        n.send(SiteId(1), SiteId(2), 4); // must not overtake the batch
        let mut got = Vec::new();
        while let Some(e) = n.step() {
            if let Event::Deliver { to, msg, .. } = e {
                assert_eq!(to, SiteId(2));
                got.push(msg);
            }
        }
        assert_eq!(got, vec![1, 2, 3, 4]);
    }

    #[test]
    fn timers_for_crashed_site_still_fire() {
        // The fault injector schedules the restart itself as a timer for
        // the crashed site, so crash must not swallow timers.
        let mut n = net(10);
        n.crash_site(SiteId(2));
        n.set_timer(SiteId(2), SimTime::from_millis(5), 77);
        assert!(matches!(
            n.step(),
            Some(Event::Timer {
                site: SiteId(2),
                token: 77,
                ..
            })
        ));
    }

    #[test]
    fn heal_during_crash_holds_traffic_until_restart() {
        let mut n = net(10);
        n.partition(&[SiteId(1)], &[SiteId(2)]);
        n.send(SiteId(1), SiteId(2), 5);
        assert_eq!(n.parked(), 1);
        n.crash_site(SiteId(2));
        assert_eq!(n.parked(), 0, "moved to the crash queue");
        assert_eq!(n.crash_parked(), 1);
        n.heal();
        assert!(
            n.step().is_none(),
            "healing must not deliver to a crashed site"
        );
        n.restart_site(SiteId(2));
        assert!(matches!(
            n.step(),
            Some(Event::Deliver {
                to: SiteId(2),
                msg: 5,
                ..
            })
        ));
    }

    #[test]
    fn jitter_stays_within_bounds_and_is_deterministic() {
        let mk = || LatencyModel::uniform(SimTime::from_millis(100)).with_jitter(0.2, 7);
        let mut a = mk();
        let mut b = mk();
        for _ in 0..100 {
            let la = a.sample(SiteId(1), SiteId(2));
            let lb = b.sample(SiteId(1), SiteId(2));
            assert_eq!(la, lb, "same seed, same samples");
            assert!(la >= SimTime::from_millis(80) && la <= SimTime::from_millis(120));
        }
    }

    #[test]
    fn quiesces_when_queue_empty() {
        let mut n = net(10);
        assert!(n.step().is_none());
        assert_eq!(n.pending(), 0);
        assert_eq!(n.peek_time(), None);
    }

    #[test]
    fn severed_link_drops_new_sends_but_not_in_flight() {
        let mut n = net(10);
        n.send(SiteId(1), SiteId(2), 1); // in flight before the cut
        n.set_link_down(SiteId(1), SiteId(2));
        assert!(n.is_link_down(SiteId(2), SiteId(1)), "undirected");
        n.send(SiteId(1), SiteId(2), 2); // dropped
        n.send(SiteId(2), SiteId(1), 3); // dropped (bidirectional)
        n.send(SiteId(1), SiteId(3), 4); // unaffected link
        let mut delivered = Vec::new();
        while let Some(e) = n.step() {
            if let Event::Deliver { msg, .. } = e {
                delivered.push(msg);
            }
        }
        delivered.sort_unstable();
        assert_eq!(delivered, vec![1, 4]);
        assert_eq!(n.stats().dropped, 2);
        // Healing restores traffic.
        n.set_link_up(SiteId(1), SiteId(2));
        n.send(SiteId(1), SiteId(2), 5);
        assert!(matches!(n.step(), Some(Event::Deliver { msg: 5, .. })));
    }

    #[test]
    fn partition_parks_and_heal_redelivers_in_fifo_order() {
        let model = LatencyModel::uniform(SimTime::from_millis(10)).with_jitter(0.5, 3);
        let mut n: SimNet<u32> = SimNet::new(model);
        n.partition(&[SiteId(1)], &[SiteId(2), SiteId(3)]);
        assert!(n.is_partitioned());
        for msg in 1..=5 {
            n.send(SiteId(1), SiteId(2), msg);
        }
        n.send(SiteId(2), SiteId(3), 99); // intra-group, unaffected
        assert_eq!(n.parked(), 5);
        assert!(matches!(n.step(), Some(Event::Deliver { msg: 99, .. })));
        assert!(n.step().is_none(), "cross-partition traffic parked");
        n.heal();
        assert!(!n.is_partitioned());
        assert_eq!(n.parked(), 0);
        let mut order = Vec::new();
        while let Some(Event::Deliver { msg, .. }) = n.step() {
            order.push(msg);
        }
        assert_eq!(order, vec![1, 2, 3, 4, 5], "per-link FIFO across heal");
        assert_eq!(n.stats().dropped, 0, "partitions delay, never lose");
        assert_eq!(n.stats().delivered, 6);
    }

    #[test]
    fn send_after_heal_cannot_overtake_redelivered_batch() {
        // Huge jitter makes an overtake all but certain without the
        // per-link floor: a post-heal send may sample a far smaller
        // latency than a redelivered message did.
        let model = LatencyModel::uniform(SimTime::from_millis(10)).with_jitter(0.9, 11);
        let mut n: SimNet<u32> = SimNet::new(model);
        n.partition(&[SiteId(1)], &[SiteId(2)]);
        for msg in 1..=8 {
            n.send(SiteId(1), SiteId(2), msg);
        }
        n.heal();
        for msg in 9..=16 {
            n.send(SiteId(1), SiteId(2), msg);
        }
        let mut order = Vec::new();
        while let Some(Event::Deliver { msg, .. }) = n.step() {
            order.push(msg);
        }
        assert_eq!(order, (1..=16).collect::<Vec<u32>>());
    }

    #[test]
    fn jitter_never_reorders_a_directed_link() {
        // Many back-to-back sends on one link under heavy jitter: without
        // the per-link FIFO floor, a later send sampling a small latency
        // would overtake an earlier one that sampled a large latency.
        let model = LatencyModel::uniform(SimTime::from_millis(10)).with_jitter(0.9, 7);
        let mut n: SimNet<u32> = SimNet::new(model);
        for msg in 0..64 {
            n.send(SiteId(1), SiteId(2), msg);
            // Messages on the reverse link and on other links are free to
            // interleave however jitter dictates; only 1->2 is checked.
            n.send(SiteId(2), SiteId(1), 1000 + msg);
        }
        let mut order = Vec::new();
        while let Some(Event::Deliver { msg, to, .. }) = n.step() {
            if to == SiteId(2) {
                order.push(msg);
            }
        }
        assert_eq!(order, (0..64).collect::<Vec<u32>>());
    }

    #[test]
    fn repartition_heals_previous_cut_first() {
        let mut n = net(10);
        n.partition(&[SiteId(1)], &[SiteId(2)]);
        n.send(SiteId(1), SiteId(2), 1);
        // Moving to a new cut releases the old cut's parked traffic.
        n.partition(&[SiteId(1)], &[SiteId(3)]);
        assert_eq!(n.parked(), 0);
        assert!(matches!(n.step(), Some(Event::Deliver { msg: 1, .. })));
        n.send(SiteId(1), SiteId(3), 2);
        assert_eq!(n.parked(), 1);
        n.heal();
        assert!(matches!(n.step(), Some(Event::Deliver { msg: 2, .. })));
    }

    #[test]
    fn failed_site_loses_its_parked_traffic() {
        let mut n = net(10);
        n.partition(&[SiteId(1)], &[SiteId(2)]);
        n.send(SiteId(1), SiteId(2), 1);
        n.send(SiteId(2), SiteId(1), 2);
        n.fail_site(SiteId(2), []);
        assert_eq!(n.parked(), 0, "undeliverable parked traffic discarded");
        assert_eq!(n.stats().dropped, 2);
        assert_eq!(n.dropped_on(SiteId(1), SiteId(2)), 2);
        n.heal();
        assert!(n.step().is_none());
    }

    #[test]
    fn per_link_drop_counters_break_out_global_count() {
        let mut n = net(10);
        n.set_link_down(SiteId(1), SiteId(2));
        n.send(SiteId(1), SiteId(2), 1); // dropped on 1-2
        n.send(SiteId(2), SiteId(1), 2); // dropped on 1-2 (undirected)
        n.fail_site(SiteId(3), []);
        n.send(SiteId(4), SiteId(3), 3); // dropped on 3-4
        assert_eq!(n.stats().dropped, 3);
        assert_eq!(n.dropped_on(SiteId(1), SiteId(2)), 2);
        assert_eq!(n.dropped_on(SiteId(3), SiteId(4)), 1);
        assert_eq!(n.dropped_on(SiteId(1), SiteId(4)), 0);
    }

    #[test]
    fn duplication_fault_injects_counted_extra_copies() {
        let mut n = net(10);
        n.set_duplication(1.0, 42);
        for msg in 0..4 {
            n.send(SiteId(1), SiteId(2), msg);
        }
        let mut delivered = Vec::new();
        while let Some(Event::Deliver { msg, .. }) = n.step() {
            delivered.push(msg);
        }
        assert_eq!(delivered.len(), 8, "every message delivered twice");
        let s = n.stats();
        assert_eq!((s.sent, s.duplicated, s.delivered), (4, 4, 8));
        // Disable and confirm it stops.
        n.set_duplication(0.0, 42);
        n.send(SiteId(1), SiteId(2), 9);
        assert!(matches!(n.step(), Some(Event::Deliver { msg: 9, .. })));
        assert!(n.step().is_none());
    }

    #[test]
    fn duplication_fault_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut n = net(5);
            n.set_duplication(0.5, seed);
            for msg in 0..32 {
                n.send(SiteId(1), SiteId(2), msg);
            }
            while n.step().is_some() {}
            n.stats().duplicated
        };
        assert_eq!(run(7), run(7), "same seed, same duplicates");
        assert!(run(7) > 0, "p=0.5 over 32 sends should duplicate some");
    }

    #[test]
    fn sim_transport_delivers_and_notifies_failures() {
        use crate::{Transport, TransportEndpoint, TransportEvent};

        let net: SimTransport<u32> =
            SimTransport::new(LatencyModel::uniform(SimTime::from_millis(5)));
        let a = net.endpoint(SiteId(1));
        let b = net.endpoint(SiteId(2));
        let c = net.endpoint(SiteId(3));
        a.send(SiteId(2), 11);
        a.send(SiteId(3), 12);
        assert_eq!(
            b.try_recv().and_then(TransportEvent::into_message),
            Some((SiteId(1), 11))
        );
        // c's event was routed to its queue while b pumped the sim.
        assert_eq!(
            c.recv_timeout(std::time::Duration::from_secs(1))
                .and_then(TransportEvent::into_message),
            Some((SiteId(1), 12))
        );
        net.fail_site(SiteId(1));
        for ep in [&b, &c] {
            match ep.try_recv() {
                Some(TransportEvent::SiteFailed { failed }) => assert_eq!(failed, SiteId(1)),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(b.try_recv().is_none(), "network quiesced");
        assert_eq!(net.stats().delivered, 2);
        assert!(net.now() > SimTime::ZERO);
    }

    #[test]
    fn simtime_arithmetic() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_micros(2500);
        assert_eq!((a + b).as_micros(), 7_500);
        assert_eq!((a - b).as_micros(), 2_500);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(SimTime::from_secs(1).as_millis_f64(), 1000.0);
        assert_eq!(a.to_string(), "5.000ms");
    }
}
