//! Deterministic discrete-event network simulator.
//!
//! The simulator carries opaque messages of type `M` between sites with a
//! configurable [`LatencyModel`], plus two auxiliary event kinds the DECAF
//! experiments need:
//!
//! * **timers** — the workload generators schedule "user gesture" events as
//!   timers ([`SimNet::set_timer`]);
//! * **fail-stop failure notification** — the paper assumes "the underlying
//!   communication infrastructure provides notification of such failures
//!   and, as common in systems such as ISIS, presents them to the
//!   application as fail-stop failures" (§3.4). [`SimNet::fail_site`]
//!   reproduces that: the failed site's traffic is cut off and every
//!   surviving observer receives a [`Event::SiteFailed`] notification.
//!
//! Determinism: events at equal simulated times are delivered in the order
//! they were scheduled (a per-net sequence number breaks ties), and latency
//! jitter comes from a seeded RNG, so a run is a pure function of its
//! inputs.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use decaf_vt::SiteId;

/// A point in simulated time, with microsecond resolution.
///
/// # Example
///
/// ```
/// use decaf_net::sim::SimTime;
///
/// let t = SimTime::from_millis(3) + SimTime::from_micros(500);
/// assert_eq!(t.as_micros(), 3_500);
/// assert_eq!(t.as_millis_f64(), 3.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero — the start of every simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs a time from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Constructs a time from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Constructs a time from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// This time as whole microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// This time as (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This time as (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

/// Per-link message latency model.
///
/// The paper's performance analysis is parameterized by "the average network
/// latency of a single point-to-point message, `t` ms" (§5.1.1). The model
/// supports a uniform `t`, per-link overrides, and optional bounded uniform
/// jitter from a seeded RNG.
///
/// # Example
///
/// ```
/// use decaf_net::sim::{LatencyModel, SimTime};
/// use decaf_vt::SiteId;
///
/// let mut m = LatencyModel::uniform(SimTime::from_millis(20))
///     .with_link(SiteId(1), SiteId(2), SimTime::from_millis(5));
/// assert_eq!(m.sample(SiteId(1), SiteId(2)), SimTime::from_millis(5));
/// assert_eq!(m.sample(SiteId(1), SiteId(3)), SimTime::from_millis(20));
/// ```
#[derive(Debug, Clone)]
pub struct LatencyModel {
    default: SimTime,
    links: HashMap<(SiteId, SiteId), SimTime>,
    /// Jitter as a fraction of the base latency (0.0 = none).
    jitter_frac: f64,
    rng: SmallRng,
}

impl LatencyModel {
    /// Every message takes exactly `t`, matching the paper's analysis.
    pub fn uniform(t: SimTime) -> Self {
        LatencyModel {
            default: t,
            links: HashMap::new(),
            jitter_frac: 0.0,
            rng: SmallRng::seed_from_u64(0),
        }
    }

    /// Overrides the latency of the (directed) pair `from -> to` and its
    /// reverse.
    pub fn with_link(mut self, a: SiteId, b: SiteId, t: SimTime) -> Self {
        self.links.insert((a, b), t);
        self.links.insert((b, a), t);
        self
    }

    /// Adds symmetric uniform jitter of `frac` (e.g. `0.1` = ±10%) drawn
    /// from a RNG seeded with `seed`.
    pub fn with_jitter(mut self, frac: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&frac),
            "jitter fraction must be in [0,1)"
        );
        self.jitter_frac = frac;
        self.rng = SmallRng::seed_from_u64(seed);
        self
    }

    /// Samples the latency of one message on the link `from -> to`.
    pub fn sample(&mut self, from: SiteId, to: SiteId) -> SimTime {
        let base = *self.links.get(&(from, to)).unwrap_or(&self.default);
        if self.jitter_frac == 0.0 {
            return base;
        }
        let us = base.as_micros() as f64;
        let delta = self.rng.gen_range(-self.jitter_frac..=self.jitter_frac);
        SimTime::from_micros((us * (1.0 + delta)).max(1.0) as u64)
    }
}

/// What happens to messages already in flight when a site fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailMode {
    /// In-flight messages to and from the failed site are discarded
    /// (strict fail-stop cut-off; the default).
    #[default]
    DropInFlight,
    /// Messages the failed site sent before failing are still delivered;
    /// messages addressed to it are discarded.
    DeliverInFlight,
}

/// An event surfaced by [`SimNet::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<M> {
    /// A message arrived at `to`.
    Deliver {
        /// Simulated delivery time.
        at: SimTime,
        /// Sending site.
        from: SiteId,
        /// Receiving site.
        to: SiteId,
        /// The payload.
        msg: M,
    },
    /// A timer set by [`SimNet::set_timer`] expired at `site`.
    Timer {
        /// Simulated expiry time.
        at: SimTime,
        /// Site the timer belongs to.
        site: SiteId,
        /// Caller-chosen token identifying the timer's purpose.
        token: u64,
    },
    /// The communication layer notifies `observer` that `failed` has
    /// fail-stopped (paper §3.4).
    SiteFailed {
        /// Simulated notification time.
        at: SimTime,
        /// Surviving site receiving the notification.
        observer: SiteId,
        /// The site that failed.
        failed: SiteId,
    },
}

impl<M> Event<M> {
    /// The simulated time at which this event occurs.
    pub fn at(&self) -> SimTime {
        match self {
            Event::Deliver { at, .. } | Event::Timer { at, .. } | Event::SiteFailed { at, .. } => {
                *at
            }
        }
    }
}

#[derive(Debug)]
enum Payload<M> {
    Msg { from: SiteId, to: SiteId, msg: M },
    Timer { site: SiteId, token: u64 },
    FailNotice { observer: SiteId, failed: SiteId },
}

#[derive(Debug)]
struct Queued<M> {
    at: SimTime,
    seq: u64,
    payload: Payload<M>,
}

impl<M> PartialEq for Queued<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Queued<M> {}
impl<M> PartialOrd for Queued<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Queued<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Counters describing a finished (or in-progress) simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to [`SimNet::send`].
    pub sent: u64,
    /// Messages delivered to a live site.
    pub delivered: u64,
    /// Messages discarded because an endpoint had failed.
    pub dropped: u64,
}

/// The deterministic event-driven network.
///
/// Drive it in a loop: inject initial messages/timers, then repeatedly call
/// [`step`](SimNet::step), hand each [`Event`] to the owning site's state
/// machine, and [`send`](SimNet::send) whatever the site emits.
///
/// # Example
///
/// ```
/// use decaf_net::sim::{Event, LatencyModel, SimNet, SimTime};
/// use decaf_vt::SiteId;
///
/// let mut net: SimNet<u32> = SimNet::new(LatencyModel::uniform(SimTime::from_millis(5)));
/// net.set_timer(SiteId(1), SimTime::from_millis(1), 42);
/// net.send(SiteId(1), SiteId(2), 7);
/// // Timer at 1ms fires before the 5ms delivery:
/// assert!(matches!(net.step(), Some(Event::Timer { token: 42, .. })));
/// assert!(matches!(net.step(), Some(Event::Deliver { msg: 7, .. })));
/// assert!(net.step().is_none());
/// ```
#[derive(Debug)]
pub struct SimNet<M> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Queued<M>>,
    latency: LatencyModel,
    failed: HashSet<SiteId>,
    fail_mode: FailMode,
    /// Bidirectionally severed links (network partition). Messages sent
    /// while a link is down are dropped; in-flight messages still arrive.
    down_links: HashSet<(SiteId, SiteId)>,
    stats: NetStats,
}

impl<M> SimNet<M> {
    /// Creates a network with the given latency model.
    pub fn new(latency: LatencyModel) -> Self {
        SimNet {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            latency,
            failed: HashSet::new(),
            fail_mode: FailMode::default(),
            down_links: HashSet::new(),
            stats: NetStats::default(),
        }
    }

    /// Sets the policy for in-flight messages on failure.
    pub fn set_fail_mode(&mut self, mode: FailMode) {
        self.fail_mode = mode;
    }

    /// Current simulated time (the time of the last event stepped).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Whether `site` has fail-stopped.
    pub fn is_failed(&self, site: SiteId) -> bool {
        self.failed.contains(&site)
    }

    /// Sends `msg` from `from` to `to`; it will be delivered after the
    /// link's sampled latency. Messages involving failed sites are counted
    /// as dropped.
    pub fn send(&mut self, from: SiteId, to: SiteId, msg: M) {
        self.stats.sent += 1;
        if self.failed.contains(&from)
            || self.failed.contains(&to)
            || self.down_links.contains(&link_key(from, to))
        {
            self.stats.dropped += 1;
            return;
        }
        let delay = self.latency.sample(from, to);
        self.push(self.now + delay, Payload::Msg { from, to, msg });
    }

    /// Schedules a timer for `site`, expiring `delay` after the current
    /// simulated time, carrying a caller-chosen `token`.
    pub fn set_timer(&mut self, site: SiteId, delay: SimTime, token: u64) {
        self.push(self.now + delay, Payload::Timer { site, token });
    }

    /// Severs the (bidirectional) link between `a` and `b`: subsequent
    /// sends on it are dropped until [`set_link_up`](SimNet::set_link_up).
    /// Messages already in flight still arrive.
    ///
    /// The DECAF protocol assumes reliable FIFO links with fail-stop
    /// disconnection (§3.4), so a lasting partition should be surfaced to
    /// the sites as a failure notification; transient use is for testing
    /// loss behaviour.
    pub fn set_link_down(&mut self, a: SiteId, b: SiteId) {
        self.down_links.insert(link_key(a, b));
    }

    /// Restores a severed link.
    pub fn set_link_up(&mut self, a: SiteId, b: SiteId) {
        self.down_links.remove(&link_key(a, b));
    }

    /// Whether the link between `a` and `b` is currently severed.
    pub fn is_link_down(&self, a: SiteId, b: SiteId) -> bool {
        self.down_links.contains(&link_key(a, b))
    }

    /// Fail-stops `site` now.
    ///
    /// In-flight traffic is handled per [`FailMode`]; every site in
    /// `observers` receives an [`Event::SiteFailed`] notification after the
    /// failed-link latency (modelling the communication layer's failure
    /// detector).
    pub fn fail_site(&mut self, site: SiteId, observers: impl IntoIterator<Item = SiteId>) {
        self.failed.insert(site);
        if self.fail_mode == FailMode::DropInFlight {
            // Discard queued deliveries involving the failed site.
            let drained = std::mem::take(&mut self.queue);
            let mut dropped = 0;
            self.queue = drained
                .into_iter()
                .filter(|q| match &q.payload {
                    Payload::Msg { from, to, .. } if *from == site || *to == site => {
                        dropped += 1;
                        false
                    }
                    _ => true,
                })
                .collect();
            self.stats.dropped += dropped;
        } else {
            // Only discard deliveries *to* the failed site.
            let drained = std::mem::take(&mut self.queue);
            let mut dropped = 0;
            self.queue = drained
                .into_iter()
                .filter(|q| match &q.payload {
                    Payload::Msg { to, .. } if *to == site => {
                        dropped += 1;
                        false
                    }
                    _ => true,
                })
                .collect();
            self.stats.dropped += dropped;
        }
        for observer in observers {
            if observer == site || self.failed.contains(&observer) {
                continue;
            }
            let delay = self.latency.sample(site, observer);
            self.push(
                self.now + delay,
                Payload::FailNotice {
                    observer,
                    failed: site,
                },
            );
        }
    }

    /// Pops the next event, advancing simulated time to it.
    ///
    /// Returns `None` when the queue is empty (the system has quiesced).
    pub fn step(&mut self) -> Option<Event<M>> {
        loop {
            let q = self.queue.pop()?;
            self.now = q.at;
            match q.payload {
                Payload::Msg { from, to, msg } => {
                    let from_dead =
                        self.fail_mode == FailMode::DropInFlight && self.failed.contains(&from);
                    if self.failed.contains(&to) || from_dead {
                        self.stats.dropped += 1;
                        continue;
                    }
                    self.stats.delivered += 1;
                    return Some(Event::Deliver {
                        at: q.at,
                        from,
                        to,
                        msg,
                    });
                }
                Payload::Timer { site, token } => {
                    if self.failed.contains(&site) {
                        continue;
                    }
                    return Some(Event::Timer {
                        at: q.at,
                        site,
                        token,
                    });
                }
                Payload::FailNotice { observer, failed } => {
                    if self.failed.contains(&observer) {
                        continue;
                    }
                    return Some(Event::SiteFailed {
                        at: q.at,
                        observer,
                        failed,
                    });
                }
            }
        }
    }

    /// The simulated time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|q| q.at)
    }

    /// Number of events still queued.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    fn push(&mut self, at: SimTime, payload: Payload<M>) {
        self.seq += 1;
        self.queue.push(Queued {
            at,
            seq: self.seq,
            payload,
        });
    }
}

/// Canonical (sorted) key for an undirected link.
fn link_key(a: SiteId, b: SiteId) -> (SiteId, SiteId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

// ---------------------------------------------------------------------------
// Transport-trait adapter
// ---------------------------------------------------------------------------

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use decaf_trace::{TraceKind, TraceSink};

use crate::{Transport, TransportEndpoint, TransportEvent};

/// Simulated time as the nanosecond timestamp a trace event carries.
/// Traces stamped from virtual time are a pure function of the run, so
/// golden tests can assert exact event sequences.
fn sim_ns(t: SimTime) -> u64 {
    t.as_micros().saturating_mul(1_000)
}

struct SimShared<M> {
    net: SimNet<M>,
    queues: HashMap<SiteId, VecDeque<TransportEvent<M>>>,
    /// Per-site trace sinks; events are stamped with *simulated* time via
    /// [`TraceSink::emit_at`] so traces are deterministic.
    traces: HashMap<SiteId, TraceSink>,
}

impl<M> SimShared<M> {
    /// Steps the simulator until `site`'s queue is non-empty or the network
    /// quiesces, routing every surfaced event to its owner's queue. Timer
    /// events are outside the [`Transport`] vocabulary and are discarded
    /// (drive [`SimNet`] directly if the workload needs timers).
    fn pump_for(&mut self, site: SiteId) -> Option<TransportEvent<M>> {
        loop {
            if let Some(ev) = self.queues.entry(site).or_default().pop_front() {
                return Some(ev);
            }
            match self.net.step()? {
                Event::Deliver { at, from, to, msg } => {
                    if let Some(sink) = self.traces.get(&to) {
                        sink.emit_at(sim_ns(at), TraceKind::MsgRecv, None, Some(from.0), None);
                    }
                    self.queues
                        .entry(to)
                        .or_default()
                        .push_back(TransportEvent::Message { from, msg });
                }
                Event::SiteFailed {
                    at,
                    observer,
                    failed,
                } => {
                    if let Some(sink) = self.traces.get(&observer) {
                        sink.emit_at(
                            sim_ns(at),
                            TraceKind::SiteFailed,
                            None,
                            Some(failed.0),
                            None,
                        );
                    }
                    self.queues
                        .entry(observer)
                        .or_default()
                        .push_back(TransportEvent::SiteFailed { failed });
                }
                Event::Timer { .. } => {}
            }
        }
    }
}

/// [`Transport`]-trait facade over a shared [`SimNet`].
///
/// The raw simulator is pull-based: one driver owns it and calls
/// [`SimNet::step`]. This adapter instead hands out per-site
/// [`SimEndpoint`]s whose `try_recv` transparently advances virtual time
/// until an event for that site (or quiescence) is reached — the same
/// endpoint-oriented shape as the threaded and TCP substrates, so
/// substrate-generic tests can run deterministically.
///
/// `recv_timeout` ignores its wall-clock argument: the simulator lives in
/// virtual time, so "waiting" just means stepping further.
///
/// # Example
///
/// ```
/// use decaf_net::sim::{LatencyModel, SimTime, SimTransport};
/// use decaf_net::{Transport, TransportEndpoint, TransportEvent};
/// use decaf_vt::SiteId;
///
/// let net: SimTransport<u32> =
///     SimTransport::new(LatencyModel::uniform(SimTime::from_millis(5)));
/// let a = net.endpoint(SiteId(1));
/// let b = net.endpoint(SiteId(2));
/// a.send(SiteId(2), 7);
/// assert_eq!(
///     b.try_recv().and_then(TransportEvent::into_message),
///     Some((SiteId(1), 7)),
/// );
/// ```
pub struct SimTransport<M> {
    shared: Arc<Mutex<SimShared<M>>>,
}

impl<M> fmt::Debug for SimTransport<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimTransport").finish_non_exhaustive()
    }
}

impl<M> SimTransport<M> {
    /// Creates a transport over a fresh simulator with `latency`.
    pub fn new(latency: LatencyModel) -> Self {
        SimTransport {
            shared: Arc::new(Mutex::new(SimShared {
                net: SimNet::new(latency),
                queues: HashMap::new(),
                traces: HashMap::new(),
            })),
        }
    }

    /// Installs `sink` as `site`'s trace sink. Send/receive/failure events
    /// are stamped with **simulated** time, so a given workload always
    /// produces byte-identical traces — the basis of the golden tests.
    pub fn set_trace_sink(&self, site: SiteId, sink: TraceSink) {
        self.shared.lock().traces.insert(site, sink);
    }

    /// Fail-stops `site`, notifying every site that has obtained an
    /// endpoint (the registered membership).
    pub fn fail_site(&self, site: SiteId) {
        let mut shared = self.shared.lock();
        let observers: Vec<SiteId> = shared.queues.keys().copied().collect();
        shared.net.fail_site(site, observers);
    }

    /// Traffic counters of the underlying simulator.
    pub fn stats(&self) -> NetStats {
        self.shared.lock().net.stats()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.shared.lock().net.now()
    }
}

impl<M> Transport for SimTransport<M> {
    type Msg = M;
    type Endpoint = SimEndpoint<M>;

    fn endpoint(&self, site: SiteId) -> SimEndpoint<M> {
        // Register the site so fail_site knows the membership.
        self.shared.lock().queues.entry(site).or_default();
        SimEndpoint {
            site,
            shared: Arc::clone(&self.shared),
        }
    }

    fn shutdown(&mut self) {}
}

/// One site's handle onto a [`SimTransport`].
pub struct SimEndpoint<M> {
    site: SiteId,
    shared: Arc<Mutex<SimShared<M>>>,
}

impl<M> fmt::Debug for SimEndpoint<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimEndpoint")
            .field("site", &self.site)
            .finish()
    }
}

impl<M> Clone for SimEndpoint<M> {
    fn clone(&self) -> Self {
        SimEndpoint {
            site: self.site,
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<M> TransportEndpoint for SimEndpoint<M> {
    type Msg = M;

    fn site(&self) -> SiteId {
        self.site
    }

    fn send(&self, to: SiteId, msg: M) {
        let mut shared = self.shared.lock();
        let from = self.site;
        if let Some(sink) = shared.traces.get(&from) {
            sink.emit_at(
                sim_ns(shared.net.now()),
                TraceKind::MsgSend,
                None,
                Some(to.0),
                None,
            );
        }
        shared.net.send(from, to, msg);
    }

    fn try_recv(&self) -> Option<TransportEvent<M>> {
        self.shared.lock().pump_for(self.site)
    }

    fn recv_timeout(&self, _timeout: Duration) -> Option<TransportEvent<M>> {
        // Virtual time: a timeout is just "advance until quiescence".
        self.try_recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(ms: u64) -> SimNet<u32> {
        SimNet::new(LatencyModel::uniform(SimTime::from_millis(ms)))
    }

    #[test]
    fn delivery_after_uniform_latency() {
        let mut n = net(10);
        n.send(SiteId(1), SiteId(2), 99);
        let e = n.step().unwrap();
        assert_eq!(e.at(), SimTime::from_millis(10));
        assert!(matches!(
            e,
            Event::Deliver {
                from: SiteId(1),
                to: SiteId(2),
                msg: 99,
                ..
            }
        ));
    }

    #[test]
    fn fifo_order_among_equal_times() {
        let mut n = net(10);
        n.send(SiteId(1), SiteId(2), 1);
        n.send(SiteId(1), SiteId(2), 2);
        n.send(SiteId(1), SiteId(2), 3);
        let order: Vec<u32> = (0..3)
            .map(|_| match n.step().unwrap() {
                Event::Deliver { msg, .. } => msg,
                _ => panic!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn time_advances_monotonically() {
        let mut n = net(10);
        n.send(SiteId(1), SiteId(2), 1);
        n.step().unwrap();
        // A send at now=10ms lands at 20ms.
        n.send(SiteId(2), SiteId(1), 2);
        let e = n.step().unwrap();
        assert_eq!(e.at(), SimTime::from_millis(20));
    }

    #[test]
    fn per_link_override() {
        let model = LatencyModel::uniform(SimTime::from_millis(50)).with_link(
            SiteId(1),
            SiteId(2),
            SimTime::from_millis(5),
        );
        let mut n: SimNet<u32> = SimNet::new(model);
        n.send(SiteId(1), SiteId(3), 0);
        n.send(SiteId(2), SiteId(1), 1);
        let first = n.step().unwrap();
        assert!(
            matches!(first, Event::Deliver { msg: 1, .. }),
            "short link delivers first"
        );
    }

    #[test]
    fn timers_interleave_with_messages() {
        let mut n = net(10);
        n.send(SiteId(1), SiteId(2), 7);
        n.set_timer(SiteId(1), SimTime::from_millis(3), 42);
        assert!(matches!(n.step(), Some(Event::Timer { token: 42, .. })));
        assert!(matches!(n.step(), Some(Event::Deliver { .. })));
    }

    #[test]
    fn failed_site_traffic_dropped_and_observers_notified() {
        let mut n = net(10);
        n.send(SiteId(1), SiteId(2), 7); // in flight to the failing site
        n.fail_site(SiteId(2), [SiteId(1), SiteId(3)]);
        let mut notices = 0;
        while let Some(e) = n.step() {
            match e {
                Event::SiteFailed { failed, .. } => {
                    assert_eq!(failed, SiteId(2));
                    notices += 1;
                }
                Event::Deliver { .. } => panic!("delivery to failed site"),
                _ => {}
            }
        }
        assert_eq!(notices, 2);
        assert_eq!(n.stats().dropped, 1);
        // Sends to a failed site are dropped immediately.
        n.send(SiteId(3), SiteId(2), 8);
        assert_eq!(n.stats().dropped, 2);
    }

    #[test]
    fn deliver_in_flight_mode_keeps_outbound() {
        let mut n = net(10);
        n.set_fail_mode(FailMode::DeliverInFlight);
        n.send(SiteId(2), SiteId(1), 7); // from the failing site
        n.fail_site(SiteId(2), []);
        // step() still filters by the `from` check... in DeliverInFlight the
        // queue keeps it, but delivery-time filtering must allow it.
        let mut delivered = false;
        while let Some(e) = n.step() {
            if matches!(e, Event::Deliver { msg: 7, .. }) {
                delivered = true;
            }
        }
        // Documented behaviour: DeliverInFlight retains the queue entry, but
        // final delivery also requires the sender to be alive at delivery
        // time only in DropInFlight mode.
        assert!(delivered, "pre-failure sends delivered in DeliverInFlight");
    }

    #[test]
    fn jitter_stays_within_bounds_and_is_deterministic() {
        let mk = || LatencyModel::uniform(SimTime::from_millis(100)).with_jitter(0.2, 7);
        let mut a = mk();
        let mut b = mk();
        for _ in 0..100 {
            let la = a.sample(SiteId(1), SiteId(2));
            let lb = b.sample(SiteId(1), SiteId(2));
            assert_eq!(la, lb, "same seed, same samples");
            assert!(la >= SimTime::from_millis(80) && la <= SimTime::from_millis(120));
        }
    }

    #[test]
    fn quiesces_when_queue_empty() {
        let mut n = net(10);
        assert!(n.step().is_none());
        assert_eq!(n.pending(), 0);
        assert_eq!(n.peek_time(), None);
    }

    #[test]
    fn severed_link_drops_new_sends_but_not_in_flight() {
        let mut n = net(10);
        n.send(SiteId(1), SiteId(2), 1); // in flight before the cut
        n.set_link_down(SiteId(1), SiteId(2));
        assert!(n.is_link_down(SiteId(2), SiteId(1)), "undirected");
        n.send(SiteId(1), SiteId(2), 2); // dropped
        n.send(SiteId(2), SiteId(1), 3); // dropped (bidirectional)
        n.send(SiteId(1), SiteId(3), 4); // unaffected link
        let mut delivered = Vec::new();
        while let Some(e) = n.step() {
            if let Event::Deliver { msg, .. } = e {
                delivered.push(msg);
            }
        }
        delivered.sort_unstable();
        assert_eq!(delivered, vec![1, 4]);
        assert_eq!(n.stats().dropped, 2);
        // Healing restores traffic.
        n.set_link_up(SiteId(1), SiteId(2));
        n.send(SiteId(1), SiteId(2), 5);
        assert!(matches!(n.step(), Some(Event::Deliver { msg: 5, .. })));
    }

    #[test]
    fn sim_transport_delivers_and_notifies_failures() {
        use crate::{Transport, TransportEndpoint, TransportEvent};

        let net: SimTransport<u32> =
            SimTransport::new(LatencyModel::uniform(SimTime::from_millis(5)));
        let a = net.endpoint(SiteId(1));
        let b = net.endpoint(SiteId(2));
        let c = net.endpoint(SiteId(3));
        a.send(SiteId(2), 11);
        a.send(SiteId(3), 12);
        assert_eq!(
            b.try_recv().and_then(TransportEvent::into_message),
            Some((SiteId(1), 11))
        );
        // c's event was routed to its queue while b pumped the sim.
        assert_eq!(
            c.recv_timeout(std::time::Duration::from_secs(1))
                .and_then(TransportEvent::into_message),
            Some((SiteId(1), 12))
        );
        net.fail_site(SiteId(1));
        for ep in [&b, &c] {
            match ep.try_recv() {
                Some(TransportEvent::SiteFailed { failed }) => assert_eq!(failed, SiteId(1)),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(b.try_recv().is_none(), "network quiesced");
        assert_eq!(net.stats().delivered, 2);
        assert!(net.now() > SimTime::ZERO);
    }

    #[test]
    fn simtime_arithmetic() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_micros(2500);
        assert_eq!((a + b).as_micros(), 7_500);
        assert_eq!((a - b).as_micros(), 2_500);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(SimTime::from_secs(1).as_millis_f64(), 1000.0);
        assert_eq!(a.to_string(), "5.000ms");
    }
}
