//! Versioned, length-prefixed wire codec for DECAF protocol envelopes.
//!
//! The TCP mesh ([`crate::tcp`]) carries [`decaf_core::Envelope`]s between
//! OS processes. Each envelope (or control message) travels in one *frame*:
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------
//!      0     4  magic  = b"DCAF"
//!      4     1  protocol version (currently 1)
//!      5     1  frame kind (1 = Hello, 2 = Data, 3 = Ping)
//!      6     4  payload length, u32 little-endian
//!     10     4  CRC-32 (IEEE) of the payload, u32 little-endian
//!     14   len  payload bytes
//! ```
//!
//! Data payloads are the serde-JSON encoding of an `Envelope`; Hello
//! payloads are the 4-byte little-endian [`SiteId`] of the connecting peer;
//! Ping (heartbeat) payloads are empty.
//!
//! Malformed input — wrong magic, unknown version or kind, oversized
//! length, CRC mismatch, or an undecodable payload — is rejected with a
//! [`WireError`], never a panic, so a byte stream from a hostile or
//! corrupted peer cannot take a site down.
//!
//! # Example
//!
//! ```
//! use decaf_net::wire::{encode_frame, FrameKind, FrameReader};
//!
//! let bytes = encode_frame(FrameKind::Data, b"payload");
//! let mut reader = FrameReader::new();
//! reader.feed(&bytes[..5]); // arbitrary fragmentation is fine
//! assert!(reader.next_frame().unwrap().is_none());
//! reader.feed(&bytes[5..]);
//! let frame = reader.next_frame().unwrap().unwrap();
//! assert_eq!(frame.kind, FrameKind::Data);
//! assert_eq!(frame.payload, b"payload");
//! ```

use std::fmt;
use std::io::{self, Read, Write};

use decaf_core::Envelope;
use decaf_vt::SiteId;

/// Magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"DCAF";

/// Current wire protocol version.
///
/// Bump on any change to the frame layout or to the payload encodings; the
/// golden-frame snapshot test in `tests/wire_codec.rs` guards against
/// accidental drift.
pub const PROTOCOL_VERSION: u8 = 1;

/// Fixed frame header size in bytes.
pub const HEADER_LEN: usize = 14;

/// Upper bound on a frame payload (16 MiB). Larger length fields are
/// rejected before any allocation, so a corrupt header cannot trigger an
/// absurd allocation.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Connection preamble: identifies the dialing site (4-byte LE id).
    Hello,
    /// A serde-JSON encoded [`Envelope`].
    Data,
    /// Heartbeat/keepalive; empty payload.
    Ping,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Hello => 1,
            FrameKind::Data => 2,
            FrameKind::Ping => 3,
        }
    }

    fn from_byte(b: u8) -> Option<FrameKind> {
        match b {
            1 => Some(FrameKind::Hello),
            2 => Some(FrameKind::Data),
            3 => Some(FrameKind::Ping),
            _ => None,
        }
    }
}

/// A decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame's kind tag.
    pub kind: FrameKind,
    /// The raw payload bytes (CRC already verified).
    pub payload: Vec<u8>,
}

/// Why a byte sequence was rejected by the codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The version byte did not match [`PROTOCOL_VERSION`].
    UnsupportedVersion(u8),
    /// The kind byte named no known [`FrameKind`].
    UnknownKind(u8),
    /// The declared payload length exceeded [`MAX_PAYLOAD`].
    Oversized(u32),
    /// The payload's CRC-32 did not match the header.
    BadCrc {
        /// CRC declared in the header.
        expected: u32,
        /// CRC computed over the received payload.
        found: u32,
    },
    /// A payload failed to decode (e.g. invalid JSON for a Data frame, or
    /// a Hello payload of the wrong size).
    Codec(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (want {PROTOCOL_VERSION})"
                )
            }
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Oversized(n) => {
                write!(f, "declared payload length {n} exceeds cap {MAX_PAYLOAD}")
            }
            WireError::BadCrc { expected, found } => {
                write!(
                    f,
                    "payload CRC mismatch: header {expected:#010x}, computed {found:#010x}"
                )
            }
            WireError::Codec(e) => write!(f, "payload decode failed: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
///
/// In-tree implementation: the container policy forbids new external
/// dependencies, and 30 lines of const-fn table generation beat a crate.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC-32 (IEEE) checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC_TABLE[idx];
    }
    !crc
}

/// Encodes one frame into a fresh byte vector.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_PAYLOAD`] — the caller controls
/// outbound payloads, so an oversized one is a local programming error
/// (inbound oversize is an *error*, not a panic; see [`FrameReader`]).
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_PAYLOAD as usize,
        "outbound payload of {} bytes exceeds MAX_PAYLOAD",
        payload.len()
    );
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(PROTOCOL_VERSION);
    out.push(kind.to_byte());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Incremental frame parser for a byte stream.
///
/// Feed it arbitrarily fragmented chunks ([`feed`](FrameReader::feed)) and
/// pop complete frames ([`next_frame`](FrameReader::next_frame)). Any
/// malformed header or payload poisons the stream: once an error is
/// returned, the reader keeps returning it (a TCP byte stream has no frame
/// resynchronization point, so the connection must be dropped).
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    poisoned: Option<WireError>,
}

impl FrameReader {
    /// Creates an empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends raw bytes from the stream.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.poisoned.is_none() {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Number of buffered, not-yet-consumed bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Tries to pop the next complete frame.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// Returns the [`WireError`] that poisoned the stream, on this and all
    /// subsequent calls.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let header: [u8; HEADER_LEN] = self.buf[..HEADER_LEN]
            .try_into()
            .expect("slice has HEADER_LEN bytes");
        let (kind, len, crc) = match parse_header(&header) {
            Ok(h) => h,
            Err(e) => {
                self.poisoned = Some(e.clone());
                return Err(e);
            }
        };
        let total = HEADER_LEN + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = self.buf[HEADER_LEN..total].to_vec();
        let found = crc32(&payload);
        if found != crc {
            let e = WireError::BadCrc {
                expected: crc,
                found,
            };
            self.poisoned = Some(e.clone());
            return Err(e);
        }
        self.buf.drain(..total);
        Ok(Some(Frame { kind, payload }))
    }
}

/// Validates a frame header, returning `(kind, payload_len, payload_crc)`.
fn parse_header(h: &[u8; HEADER_LEN]) -> Result<(FrameKind, u32, u32), WireError> {
    if h[..4] != MAGIC {
        return Err(WireError::BadMagic([h[0], h[1], h[2], h[3]]));
    }
    if h[4] != PROTOCOL_VERSION {
        return Err(WireError::UnsupportedVersion(h[4]));
    }
    let kind = FrameKind::from_byte(h[5]).ok_or(WireError::UnknownKind(h[5]))?;
    let len = u32::from_le_bytes([h[6], h[7], h[8], h[9]]);
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized(len));
    }
    let crc = u32::from_le_bytes([h[10], h[11], h[12], h[13]]);
    Ok((kind, len, crc))
}

/// Writes one frame to a blocking writer (header + payload, then flush).
///
/// Returns the number of bytes written.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> io::Result<usize> {
    let bytes = encode_frame(kind, payload);
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(bytes.len())
}

/// Reads one complete frame from a blocking reader.
///
/// # Errors
///
/// Malformed frames surface as [`io::ErrorKind::InvalidData`] with the
/// underlying [`WireError`] as the source; a cleanly closed stream at a
/// frame boundary is [`io::ErrorKind::UnexpectedEof`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let (kind, len, crc) =
        parse_header(&header).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let found = crc32(&payload);
    if found != crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::BadCrc {
                expected: crc,
                found,
            },
        ));
    }
    Ok(Frame { kind, payload })
}

/// Serializes an [`Envelope`] into a Data-frame payload.
///
/// # Errors
///
/// Returns [`WireError::Codec`] if serialization fails (it cannot for the
/// in-tree `Envelope`, but the serde backend's error is surfaced rather
/// than unwrapped).
pub fn encode_envelope(env: &Envelope) -> Result<Vec<u8>, WireError> {
    serde_json::to_vec(env).map_err(|e| WireError::Codec(e.to_string()))
}

/// Deserializes a Data-frame payload back into an [`Envelope`].
///
/// # Errors
///
/// Returns [`WireError::Codec`] on invalid JSON or a shape mismatch.
pub fn decode_envelope(payload: &[u8]) -> Result<Envelope, WireError> {
    serde_json::from_slice(payload).map_err(|e| WireError::Codec(e.to_string()))
}

/// Encodes a Hello payload: the dialing site's id, 4 bytes little-endian.
pub fn encode_hello(site: SiteId) -> [u8; 4] {
    site.0.to_le_bytes()
}

/// Decodes a Hello payload.
///
/// # Errors
///
/// Returns [`WireError::Codec`] if the payload is not exactly 4 bytes.
pub fn decode_hello(payload: &[u8]) -> Result<SiteId, WireError> {
    let bytes: [u8; 4] = payload.try_into().map_err(|_| {
        WireError::Codec(format!("hello payload of {} bytes, want 4", payload.len()))
    })?;
    Ok(SiteId(u32::from_le_bytes(bytes)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip_via_reader() {
        let bytes = encode_frame(FrameKind::Data, b"hello world");
        let mut r = FrameReader::new();
        r.feed(&bytes);
        let f = r.next_frame().unwrap().unwrap();
        assert_eq!(f.kind, FrameKind::Data);
        assert_eq!(f.payload, b"hello world");
        assert!(r.next_frame().unwrap().is_none());
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn reader_handles_fragmentation_and_back_to_back_frames() {
        let mut stream = encode_frame(FrameKind::Ping, b"");
        stream.extend_from_slice(&encode_frame(FrameKind::Data, b"x"));
        let mut r = FrameReader::new();
        for chunk in stream.chunks(3) {
            r.feed(chunk);
        }
        assert_eq!(r.next_frame().unwrap().unwrap().kind, FrameKind::Ping);
        let f = r.next_frame().unwrap().unwrap();
        assert_eq!((f.kind, f.payload.as_slice()), (FrameKind::Data, &b"x"[..]));
    }

    #[test]
    fn bad_magic_poisons() {
        let mut bytes = encode_frame(FrameKind::Data, b"p");
        bytes[0] = b'X';
        let mut r = FrameReader::new();
        r.feed(&bytes);
        assert!(matches!(r.next_frame(), Err(WireError::BadMagic(_))));
        // Poisoned: same error again, new bytes ignored.
        r.feed(&encode_frame(FrameKind::Ping, b""));
        assert!(matches!(r.next_frame(), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn version_kind_length_crc_rejections() {
        let good = encode_frame(FrameKind::Data, b"payload");

        let mut v = good.clone();
        v[4] = 99;
        let mut r = FrameReader::new();
        r.feed(&v);
        assert!(matches!(
            r.next_frame(),
            Err(WireError::UnsupportedVersion(99))
        ));

        let mut k = good.clone();
        k[5] = 0;
        let mut r = FrameReader::new();
        r.feed(&k);
        assert!(matches!(r.next_frame(), Err(WireError::UnknownKind(0))));

        let mut o = good.clone();
        o[6..10].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        let mut r = FrameReader::new();
        r.feed(&o);
        assert!(matches!(r.next_frame(), Err(WireError::Oversized(_))));

        let mut c = good;
        let last = c.len() - 1;
        c[last] ^= 0xFF;
        let mut r = FrameReader::new();
        r.feed(&c);
        assert!(matches!(r.next_frame(), Err(WireError::BadCrc { .. })));
    }

    #[test]
    fn blocking_read_write_roundtrip() {
        let mut buf = Vec::new();
        let n = write_frame(&mut buf, FrameKind::Hello, &encode_hello(SiteId(7))).unwrap();
        assert_eq!(n, buf.len());
        let mut cursor = io::Cursor::new(buf);
        let f = read_frame(&mut cursor).unwrap();
        assert_eq!(f.kind, FrameKind::Hello);
        assert_eq!(decode_hello(&f.payload).unwrap(), SiteId(7));
    }

    #[test]
    fn blocking_read_rejects_truncation_and_corruption() {
        let bytes = encode_frame(FrameKind::Data, b"abcdef");
        // Truncated mid-payload.
        let mut cursor = io::Cursor::new(bytes[..bytes.len() - 2].to_vec());
        assert_eq!(
            read_frame(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Flipped payload byte.
        let mut corrupt = bytes;
        let last = corrupt.len() - 1;
        corrupt[last] ^= 1;
        let mut cursor = io::Cursor::new(corrupt);
        assert_eq!(
            read_frame(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn hello_payload_size_checked() {
        assert!(decode_hello(&[1, 2, 3]).is_err());
        assert_eq!(decode_hello(&encode_hello(SiteId(42))).unwrap(), SiteId(42));
    }

    #[test]
    fn wire_error_display_covers_variants() {
        for e in [
            WireError::BadMagic(*b"XXXX"),
            WireError::UnsupportedVersion(9),
            WireError::UnknownKind(0),
            WireError::Oversized(u32::MAX),
            WireError::BadCrc {
                expected: 1,
                found: 2,
            },
            WireError::Codec("boom".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
