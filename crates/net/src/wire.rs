//! Versioned, length-prefixed wire codec for DECAF protocol envelopes.
//!
//! The TCP mesh ([`crate::tcp`]) carries [`decaf_core::Envelope`]s between
//! OS processes. Each envelope (or control message) travels in one *frame*:
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------
//!      0     4  magic  = b"DCAF"
//!      4     1  protocol version (1 for v1 kinds, 2 for v2 kinds)
//!      5     1  frame kind (1 Hello, 2 Data, 3 Ping, 4 DataV2, 5 Batch)
//!      6     4  payload length, u32 little-endian
//!     10     4  CRC-32 (IEEE) of the payload, u32 little-endian
//!     14   len  payload bytes
//! ```
//!
//! Two payload codecs coexist:
//!
//! * **v1** (`Data`): a strict JSON encoding of an `Envelope`, byte-for-byte
//!   what serde-JSON produced in earlier releases, hand-rolled here so the
//!   hot path carries no serializer framework overhead. Peers that predate
//!   v2 speak only this.
//! * **v2** (`DataV2`, `Batch`): a compact binary encoding — tag bytes for
//!   enum variants, LEB128 varints for integers, length-prefixed strings —
//!   with the same zero-external-deps discipline as `decaf-trace`'s JSONL
//!   codec. A `Batch` payload coalesces many envelopes into one frame.
//!
//! Codec choice is negotiated per link via the Hello frame: a v2-capable
//! peer appends a fifth byte (its maximum codec version) to the classic
//! 4-byte little-endian site id. Old peers ignore nothing — they simply
//! send 4 bytes — so [`decode_hello_any`] maps a short Hello to codec 1 and
//! both sides fall back to v1 JSON on that link.
//!
//! Hello payloads identify the connecting peer; Ping (heartbeat) payloads
//! are empty.
//!
//! Malformed input — wrong magic, unknown version or kind, oversized
//! length, CRC mismatch, or an undecodable payload — is rejected with a
//! [`WireError`], never a panic, so a byte stream from a hostile or
//! corrupted peer cannot take a site down.
//!
//! # Example
//!
//! ```
//! use decaf_net::wire::{encode_frame, FrameKind, FrameReader};
//!
//! let bytes = encode_frame(FrameKind::Data, b"payload");
//! let mut reader = FrameReader::new();
//! reader.feed(&bytes[..5]); // arbitrary fragmentation is fine
//! assert!(reader.next_frame().unwrap().is_none());
//! reader.feed(&bytes[5..]);
//! let frame = reader.next_frame().unwrap().unwrap();
//! assert_eq!(frame.kind, FrameKind::Data);
//! assert_eq!(frame.payload, b"payload");
//! ```

use std::fmt;
use std::io::{self, Read, Write};

use decaf_core::Envelope;
use decaf_vt::SiteId;

/// Magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"DCAF";

/// Wire protocol version for the original frame kinds (Hello/Data/Ping).
///
/// Kept at 1 so pre-v2 peers accept everything we send them; the
/// golden-frame snapshot test in `tests/wire_codec.rs` guards against
/// accidental drift.
pub const PROTOCOL_VERSION: u8 = 1;

/// Wire protocol version stamped on v2 frame kinds (DataV2/Batch).
///
/// v1-only peers reject these with [`WireError::UnsupportedVersion`] — a
/// backstop that cannot trigger in practice, because v2 frames are only
/// sent on links whose Hello negotiated codec ≥ 2.
pub const PROTOCOL_VERSION_V2: u8 = 2;

/// Fixed frame header size in bytes.
pub const HEADER_LEN: usize = 14;

/// Upper bound on a frame payload (16 MiB). Larger length fields are
/// rejected before any allocation, so a corrupt header cannot trigger an
/// absurd allocation.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Connection preamble: identifies the dialing site (4-byte LE id,
    /// optionally followed by a codec-version byte; see [`encode_hello_v2`]).
    Hello,
    /// A v1 JSON encoded [`Envelope`].
    Data,
    /// Heartbeat/keepalive; empty payload.
    Ping,
    /// A single [`Envelope`] in the compact binary v2 codec.
    DataV2,
    /// Multiple v2-encoded [`Envelope`]s coalesced into one frame.
    Batch,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Hello => 1,
            FrameKind::Data => 2,
            FrameKind::Ping => 3,
            FrameKind::DataV2 => 4,
            FrameKind::Batch => 5,
        }
    }

    fn from_byte(b: u8) -> Option<FrameKind> {
        match b {
            1 => Some(FrameKind::Hello),
            2 => Some(FrameKind::Data),
            3 => Some(FrameKind::Ping),
            4 => Some(FrameKind::DataV2),
            5 => Some(FrameKind::Batch),
            _ => None,
        }
    }

    /// The protocol version byte stamped on frames of this kind.
    pub fn wire_version(self) -> u8 {
        match self {
            FrameKind::Hello | FrameKind::Data | FrameKind::Ping => PROTOCOL_VERSION,
            FrameKind::DataV2 | FrameKind::Batch => PROTOCOL_VERSION_V2,
        }
    }
}

/// A decoded frame (owned payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame's kind tag.
    pub kind: FrameKind,
    /// The raw payload bytes (CRC already verified).
    pub payload: Vec<u8>,
}

/// A decoded frame whose payload borrows the reader's reassembly buffer —
/// no copy. Valid until the next call that mutates the [`FrameReader`].
#[derive(Debug, PartialEq, Eq)]
pub struct FrameView<'a> {
    /// The frame's kind tag.
    pub kind: FrameKind,
    /// The raw payload bytes in place (CRC already verified).
    pub payload: &'a [u8],
}

/// Why a byte sequence was rejected by the codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The version byte named no supported protocol version.
    UnsupportedVersion(u8),
    /// The kind byte named no known [`FrameKind`].
    UnknownKind(u8),
    /// The declared payload length exceeded [`MAX_PAYLOAD`].
    Oversized(u32),
    /// The payload's CRC-32 did not match the header.
    BadCrc {
        /// CRC declared in the header.
        expected: u32,
        /// CRC computed over the received payload.
        found: u32,
    },
    /// A payload failed to decode (e.g. invalid JSON for a Data frame, or
    /// a Hello payload of the wrong size).
    Codec(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (want {PROTOCOL_VERSION} or {PROTOCOL_VERSION_V2})"
                )
            }
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Oversized(n) => {
                write!(f, "declared payload length {n} exceeds cap {MAX_PAYLOAD}")
            }
            WireError::BadCrc { expected, found } => {
                write!(
                    f,
                    "payload CRC mismatch: header {expected:#010x}, computed {found:#010x}"
                )
            }
            WireError::Codec(e) => write!(f, "payload decode failed: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
///
/// In-tree implementation: the container policy forbids new external
/// dependencies, and 30 lines of const-fn table generation beat a crate.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC-32 (IEEE) checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC_TABLE[idx];
    }
    !crc
}

/// Encodes one frame into a fresh byte vector.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_PAYLOAD`] — the caller controls
/// outbound payloads, so an oversized one is a local programming error
/// (inbound oversize is an *error*, not a panic; see [`FrameReader`]).
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_PAYLOAD as usize,
        "outbound payload of {} bytes exceeds MAX_PAYLOAD",
        payload.len()
    );
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(kind.wire_version());
    out.push(kind.to_byte());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Once the consumed prefix of the reassembly buffer exceeds this many
/// bytes, [`FrameReader`] compacts it with one `memmove` so the buffer
/// does not grow without bound on a long-lived connection.
const COMPACT_THRESHOLD: usize = 64 * 1024;

/// Incremental frame parser for a byte stream.
///
/// Feed it arbitrarily fragmented chunks ([`feed`](FrameReader::feed)) and
/// pop complete frames ([`next_frame`](FrameReader::next_frame), or
/// [`next_frame_view`](FrameReader::next_frame_view) to borrow the payload
/// in place without a copy). Any malformed header or payload poisons the
/// stream: once an error is returned, the reader keeps returning it (a TCP
/// byte stream has no frame resynchronization point, so the connection must
/// be dropped).
///
/// Consumed frames advance a rolling offset instead of draining the front
/// of the buffer, so popping N frames from one burst costs O(bytes), not
/// O(bytes × frames); the consumed prefix is reclaimed wholesale once it
/// crosses a threshold or the buffer empties.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    start: usize,
    poisoned: Option<WireError>,
}

impl FrameReader {
    /// Creates an empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends raw bytes from the stream.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.poisoned.is_some() {
            return;
        }
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= COMPACT_THRESHOLD {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered, not-yet-consumed bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Tries to pop the next complete frame, borrowing the payload from the
    /// reassembly buffer (no copy). The view is valid until the next call
    /// that mutates the reader.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// Returns the [`WireError`] that poisoned the stream, on this and all
    /// subsequent calls.
    pub fn next_frame_view(&mut self) -> Result<Option<FrameView<'_>>, WireError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        if self.buffered() < HEADER_LEN {
            return Ok(None);
        }
        let header: [u8; HEADER_LEN] = self.buf[self.start..self.start + HEADER_LEN]
            .try_into()
            .expect("slice has HEADER_LEN bytes");
        let (kind, len, crc) = match parse_header(&header) {
            Ok(h) => h,
            Err(e) => {
                self.poisoned = Some(e.clone());
                return Err(e);
            }
        };
        let total = HEADER_LEN + len as usize;
        if self.buffered() < total {
            return Ok(None);
        }
        let pstart = self.start + HEADER_LEN;
        let pend = self.start + total;
        let payload = &self.buf[pstart..pend];
        let found = crc32(payload);
        if found != crc {
            let e = WireError::BadCrc {
                expected: crc,
                found,
            };
            self.poisoned = Some(e.clone());
            return Err(e);
        }
        self.start = pend;
        Ok(Some(FrameView {
            kind,
            payload: &self.buf[pstart..pend],
        }))
    }

    /// Tries to pop the next complete frame with an owned payload.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// Returns the [`WireError`] that poisoned the stream, on this and all
    /// subsequent calls.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        Ok(self.next_frame_view()?.map(|v| Frame {
            kind: v.kind,
            payload: v.payload.to_vec(),
        }))
    }
}

/// Validates a frame header, returning `(kind, payload_len, payload_crc)`.
fn parse_header(h: &[u8; HEADER_LEN]) -> Result<(FrameKind, u32, u32), WireError> {
    if h[..4] != MAGIC {
        return Err(WireError::BadMagic([h[0], h[1], h[2], h[3]]));
    }
    if h[4] != PROTOCOL_VERSION && h[4] != PROTOCOL_VERSION_V2 {
        return Err(WireError::UnsupportedVersion(h[4]));
    }
    let kind = FrameKind::from_byte(h[5]).ok_or(WireError::UnknownKind(h[5]))?;
    let len = u32::from_le_bytes([h[6], h[7], h[8], h[9]]);
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized(len));
    }
    let crc = u32::from_le_bytes([h[10], h[11], h[12], h[13]]);
    Ok((kind, len, crc))
}

/// Writes one frame to a blocking writer (header + payload, then flush).
///
/// Returns the number of bytes written.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> io::Result<usize> {
    let bytes = encode_frame(kind, payload);
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(bytes.len())
}

/// Reads one complete frame from a blocking reader.
///
/// # Errors
///
/// Malformed frames surface as [`io::ErrorKind::InvalidData`] with the
/// underlying [`WireError`] as the source; a cleanly closed stream at a
/// frame boundary is [`io::ErrorKind::UnexpectedEof`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let (kind, len, crc) =
        parse_header(&header).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let found = crc32(&payload);
    if found != crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::BadCrc {
                expected: crc,
                found,
            },
        ));
    }
    Ok(Frame { kind, payload })
}

/// Serializes an [`Envelope`] into a v1 Data-frame payload.
///
/// The output is the strict JSON form historical peers expect (identical to
/// the serde-JSON bytes of earlier releases — see the golden payload test
/// in `tests/wire_codec.rs`), produced by the in-tree encoder so the hot
/// path does not pay for a serializer framework.
///
/// # Errors
///
/// Returns [`WireError::Codec`] if serialization fails (it cannot for the
/// in-tree `Envelope`; the `Result` is kept for signature stability).
pub fn encode_envelope(env: &Envelope) -> Result<Vec<u8>, WireError> {
    Ok(json::encode(env).into_bytes())
}

/// Deserializes a v1 Data-frame payload back into an [`Envelope`].
///
/// Accepts any field order and ignores unknown fields, matching the
/// tolerance of the serde-based decoder it replaces.
///
/// # Errors
///
/// Returns [`WireError::Codec`] on invalid JSON or a shape mismatch.
pub fn decode_envelope(payload: &[u8]) -> Result<Envelope, WireError> {
    json::decode(payload).map_err(WireError::Codec)
}

/// Serializes an [`Envelope`] into a compact binary v2 DataV2-frame
/// payload: tag bytes for variants, LEB128 varints for integers,
/// length-prefixed strings.
pub fn encode_envelope_v2(env: &Envelope) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    bin::envelope(&mut out, env);
    out
}

/// Deserializes a v2 DataV2-frame payload back into an [`Envelope`].
///
/// # Errors
///
/// Returns [`WireError::Codec`] on truncation, trailing bytes, an unknown
/// tag, or invalid UTF-8 in a string.
pub fn decode_envelope_v2(payload: &[u8]) -> Result<Envelope, WireError> {
    bin::decode_envelope(payload).map_err(WireError::Codec)
}

/// Serializes a run of [`Envelope`]s into one Batch-frame payload: a
/// varint count, then each envelope as a varint byte length followed by
/// its v2 binary encoding.
pub fn encode_batch(envs: &[Envelope]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 * envs.len().max(1));
    bin::put_varint(&mut out, envs.len() as u64);
    let mut scratch = Vec::with_capacity(64);
    for env in envs {
        scratch.clear();
        bin::envelope(&mut scratch, env);
        bin::put_varint(&mut out, scratch.len() as u64);
        out.extend_from_slice(&scratch);
    }
    out
}

/// Assembles a Batch-frame payload from envelopes that were already
/// encoded with [`encode_envelope_v2`] — the writer thread encodes each
/// envelope once as it drains its queue, then frames the batch without
/// re-encoding.
pub fn encode_batch_parts(parts: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total + 2 + 2 * parts.len());
    bin::put_varint(&mut out, parts.len() as u64);
    for p in parts {
        bin::put_varint(&mut out, p.len() as u64);
        out.extend_from_slice(p);
    }
    out
}

/// Deserializes a Batch-frame payload back into its [`Envelope`]s.
///
/// # Errors
///
/// Returns [`WireError::Codec`] on truncation, trailing bytes, a length
/// prefix that disagrees with its envelope, or any per-envelope decode
/// failure.
pub fn decode_batch(payload: &[u8]) -> Result<Vec<Envelope>, WireError> {
    bin::decode_batch(payload).map_err(WireError::Codec)
}

/// Encodes a classic (v1) Hello payload: the dialing site's id, 4 bytes
/// little-endian.
pub fn encode_hello(site: SiteId) -> [u8; 4] {
    site.0.to_le_bytes()
}

/// Encodes a v2 Hello payload: the 4-byte LE site id plus one byte naming
/// the sender's maximum supported codec version.
///
/// Each side announces its maximum; the link speaks `min` of the two. A
/// site configured for codec 1 sends the classic 4-byte form (so a strict
/// v1 peer accepts it) while still *accepting* 5-byte Hellos from newer
/// peers via [`decode_hello_any`] — that asymmetry is what lets a mixed
/// v1/v2 mesh negotiate per link.
pub fn encode_hello_v2(site: SiteId, max_codec: u8) -> [u8; 5] {
    let id = site.0.to_le_bytes();
    [id[0], id[1], id[2], id[3], max_codec]
}

/// Decodes a classic Hello payload (strict: exactly 4 bytes).
///
/// # Errors
///
/// Returns [`WireError::Codec`] if the payload is not exactly 4 bytes.
pub fn decode_hello(payload: &[u8]) -> Result<SiteId, WireError> {
    let bytes: [u8; 4] = payload.try_into().map_err(|_| {
        WireError::Codec(format!("hello payload of {} bytes, want 4", payload.len()))
    })?;
    Ok(SiteId(u32::from_le_bytes(bytes)))
}

/// Decodes either Hello form, returning the peer's site id and its maximum
/// codec version (a 4-byte classic Hello implies codec 1).
///
/// # Errors
///
/// Returns [`WireError::Codec`] if the payload is neither 4 nor 5 bytes,
/// or names codec version 0.
pub fn decode_hello_any(payload: &[u8]) -> Result<(SiteId, u8), WireError> {
    match payload.len() {
        4 => Ok((decode_hello(payload)?, 1)),
        5 => {
            let site = SiteId(u32::from_le_bytes([
                payload[0], payload[1], payload[2], payload[3],
            ]));
            let codec = payload[4];
            if codec == 0 {
                return Err(WireError::Codec("hello names codec version 0".into()));
            }
            Ok((site, codec))
        }
        n => Err(WireError::Codec(format!(
            "hello payload of {n} bytes, want 4 or 5"
        ))),
    }
}

// ---------------------------------------------------------------------------
// v1 JSON codec
// ---------------------------------------------------------------------------

/// Strict JSON codec for [`Envelope`]s, byte-compatible with the serde-JSON
/// encoding of earlier releases (struct fields in declaration order,
/// externally tagged enums, newtypes as their inner value, integer-keyed
/// maps as objects with decimal-string keys). Hand-rolled so the envelope
/// hot path carries no serializer framework; the equivalence test in
/// `tests/wire_codec_v2.rs` pins it against serde_json itself.
mod json {
    use decaf_core::{
        AssocSnapshot, Blueprint, Delegate, Envelope, Message, NodeRef, ObjectAddr, ObjectName,
        Path, PathElem, ReadItem, RelationId, ReplicationGraph, ScalarValue, SpanCtx, SubjectKind,
        TreeSnapshot, TxnOutcome, TxnPropagate, UpdateItem, WireOp,
    };
    use decaf_vt::{SiteId, VirtualTime};

    // ---- encoder ----------------------------------------------------------

    pub(super) fn encode(env: &Envelope) -> String {
        let mut out = String::with_capacity(128);
        envelope(&mut out, env);
        out
    }

    fn envelope(o: &mut String, e: &Envelope) {
        o.push_str("{\"from\":");
        uint(o, e.from.0 as u64);
        o.push_str(",\"to\":");
        uint(o, e.to.0 as u64);
        o.push_str(",\"clock\":");
        vt(o, &e.clock);
        o.push_str(",\"msg\":");
        message(o, &e.msg);
        // Trailing optional field, skipped when absent — matches serde's
        // skip_serializing_if, so span-less envelopes are byte-identical
        // to the pre-span wire format and old peers skip the new key.
        if let Some(s) = &e.span {
            o.push_str(",\"span\":{\"origin\":");
            uint(o, s.origin.0 as u64);
            o.push_str(",\"seq\":");
            uint(o, s.seq);
            o.push_str(",\"hop\":");
            uint(o, s.hop as u64);
            o.push('}');
        }
        o.push('}');
    }

    fn uint(o: &mut String, v: u64) {
        let mut buf = [0u8; 20];
        let mut i = buf.len();
        let mut v = v;
        loop {
            i -= 1;
            buf[i] = b'0' + (v % 10) as u8;
            v /= 10;
            if v == 0 {
                break;
            }
        }
        o.push_str(std::str::from_utf8(&buf[i..]).expect("digits are ASCII"));
    }

    fn int(o: &mut String, v: i64) {
        if v < 0 {
            o.push('-');
            uint(o, v.unsigned_abs());
        } else {
            uint(o, v as u64);
        }
    }

    fn real(o: &mut String, v: f64) {
        if !v.is_finite() {
            o.push_str("null"); // serde_json writes null for non-finite floats
            return;
        }
        let s = format!("{v}");
        o.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            o.push_str(".0");
        }
    }

    fn string(o: &mut String, s: &str) {
        o.push('"');
        for c in s.chars() {
            match c {
                '"' => o.push_str("\\\""),
                '\\' => o.push_str("\\\\"),
                '\u{08}' => o.push_str("\\b"),
                '\t' => o.push_str("\\t"),
                '\n' => o.push_str("\\n"),
                '\u{0c}' => o.push_str("\\f"),
                '\r' => o.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    o.push_str("\\u00");
                    let n = c as u32;
                    for shift in [4u32, 0] {
                        let d = (n >> shift) & 0xF;
                        o.push(char::from_digit(d, 16).expect("hex digit"));
                    }
                }
                c => o.push(c),
            }
        }
        o.push('"');
    }

    fn boolean(o: &mut String, b: bool) {
        o.push_str(if b { "true" } else { "false" });
    }

    fn seq<T>(o: &mut String, items: impl IntoIterator<Item = T>, f: impl Fn(&mut String, T)) {
        o.push('[');
        for (i, it) in items.into_iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            f(o, it);
        }
        o.push(']');
    }

    fn opt<T>(o: &mut String, v: Option<T>, f: impl Fn(&mut String, T)) {
        match v {
            None => o.push_str("null"),
            Some(v) => f(o, v),
        }
    }

    fn vt(o: &mut String, t: &VirtualTime) {
        o.push_str("{\"lamport\":");
        uint(o, t.lamport);
        o.push_str(",\"site\":");
        uint(o, t.site.0 as u64);
        o.push('}');
    }

    fn oname(o: &mut String, n: &ObjectName) {
        o.push_str("{\"site\":");
        uint(o, n.site.0 as u64);
        o.push_str(",\"seq\":");
        uint(o, n.seq);
        o.push('}');
    }

    fn noderef(o: &mut String, n: &NodeRef) {
        o.push_str("{\"site\":");
        uint(o, n.site.0 as u64);
        o.push_str(",\"object\":");
        oname(o, &n.object);
        o.push('}');
    }

    fn scalar(o: &mut String, s: &ScalarValue) {
        match s {
            ScalarValue::Int(v) => {
                o.push_str("{\"Int\":");
                int(o, *v);
            }
            ScalarValue::Real(v) => {
                o.push_str("{\"Real\":");
                real(o, *v);
            }
            ScalarValue::Str(v) => {
                o.push_str("{\"Str\":");
                string(o, v);
            }
        }
        o.push('}');
    }

    fn blueprint(o: &mut String, b: &Blueprint) {
        match b {
            Blueprint::Int(v) => {
                o.push_str("{\"Int\":");
                int(o, *v);
            }
            Blueprint::Real(v) => {
                o.push_str("{\"Real\":");
                real(o, *v);
            }
            Blueprint::Str(v) => {
                o.push_str("{\"Str\":");
                string(o, v);
            }
            Blueprint::List(children) => {
                o.push_str("{\"List\":");
                seq(o, children, blueprint);
            }
            Blueprint::Tuple(children) => {
                o.push_str("{\"Tuple\":");
                seq(o, children, |o, (k, c): &(String, Blueprint)| {
                    o.push('[');
                    string(o, k);
                    o.push(',');
                    blueprint(o, c);
                    o.push(']');
                });
            }
        }
        o.push('}');
    }

    fn path(o: &mut String, p: &Path) {
        seq(o, &p.0, |o, e: &PathElem| match e {
            PathElem::Index { index, tag } => {
                o.push_str("{\"Index\":{\"index\":");
                uint(o, *index as u64);
                o.push_str(",\"tag\":");
                vt(o, tag);
                o.push_str("}}");
            }
            PathElem::Key(k) => {
                o.push_str("{\"Key\":");
                string(o, k);
                o.push('}');
            }
        });
    }

    fn addr(o: &mut String, a: &ObjectAddr) {
        match a {
            ObjectAddr::Direct(n) => {
                o.push_str("{\"Direct\":");
                oname(o, n);
            }
            ObjectAddr::Indirect { root, path: p } => {
                o.push_str("{\"Indirect\":{\"root\":");
                oname(o, root);
                o.push_str(",\"path\":");
                path(o, p);
                o.push('}');
            }
        }
        o.push('}');
    }

    fn assoc(o: &mut String, a: &AssocSnapshot) {
        o.push('{');
        for (i, (RelationId(id), members, description)) in a.wire_parts().iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            // Integer map keys become decimal strings under serde_json.
            o.push('"');
            uint(o, *id);
            o.push_str("\":{\"members\":");
            seq(o, members, noderef);
            o.push_str(",\"description\":");
            string(o, description);
            o.push('}');
        }
        o.push('}');
    }

    fn tree(o: &mut String, t: &TreeSnapshot) {
        match t {
            TreeSnapshot::Scalar(s) => {
                o.push_str("{\"Scalar\":");
                scalar(o, s);
            }
            TreeSnapshot::List(entries) => {
                o.push_str("{\"List\":");
                seq(
                    o,
                    entries,
                    |o, (tag, child): &(VirtualTime, TreeSnapshot)| {
                        o.push('[');
                        vt(o, tag);
                        o.push(',');
                        tree(o, child);
                        o.push(']');
                    },
                );
            }
            TreeSnapshot::Tuple(entries) => {
                o.push_str("{\"Tuple\":");
                seq(o, entries, |o, (k, child): &(String, TreeSnapshot)| {
                    o.push('[');
                    string(o, k);
                    o.push(',');
                    tree(o, child);
                    o.push(']');
                });
            }
            TreeSnapshot::Assoc(a) => {
                o.push_str("{\"Assoc\":");
                assoc(o, a);
            }
        }
        o.push('}');
    }

    fn wireop(o: &mut String, w: &WireOp) {
        match w {
            WireOp::SetScalar(s) => {
                o.push_str("{\"SetScalar\":");
                scalar(o, s);
            }
            WireOp::ListInsert { index, child } => {
                o.push_str("{\"ListInsert\":{\"index\":");
                uint(o, *index as u64);
                o.push_str(",\"child\":");
                blueprint(o, child);
                o.push('}');
            }
            WireOp::ListRemove { tag } => {
                o.push_str("{\"ListRemove\":{\"tag\":");
                vt(o, tag);
                o.push('}');
            }
            WireOp::TuplePut { key, child } => {
                o.push_str("{\"TuplePut\":{\"key\":");
                string(o, key);
                o.push_str(",\"child\":");
                blueprint(o, child);
                o.push('}');
            }
            WireOp::TupleRemove { key } => {
                o.push_str("{\"TupleRemove\":{\"key\":");
                string(o, key);
                o.push('}');
            }
            WireOp::SetAssoc(a) => {
                o.push_str("{\"SetAssoc\":");
                assoc(o, a);
            }
            WireOp::SetTree(t) => {
                o.push_str("{\"SetTree\":");
                tree(o, t);
            }
        }
        o.push('}');
    }

    fn update(o: &mut String, u: &UpdateItem) {
        o.push_str("{\"addr\":");
        addr(o, &u.addr);
        o.push_str(",\"t_r\":");
        vt(o, &u.t_r);
        o.push_str(",\"t_g\":");
        vt(o, &u.t_g);
        o.push_str(",\"op\":");
        wireop(o, &u.op);
        o.push_str(",\"needs_check\":");
        boolean(o, u.needs_check);
        o.push('}');
    }

    fn read(o: &mut String, r: &ReadItem) {
        o.push_str("{\"addr\":");
        addr(o, &r.addr);
        o.push_str(",\"t_r\":");
        vt(o, &r.t_r);
        o.push_str(",\"t_g\":");
        vt(o, &r.t_g);
        o.push_str(",\"hi\":");
        opt(o, r.hi.as_ref(), vt);
        o.push('}');
    }

    fn graph(o: &mut String, g: &ReplicationGraph) {
        o.push_str("{\"nodes\":");
        seq(o, g.nodes(), noderef);
        o.push_str(",\"edges\":");
        seq(
            o,
            g.edges(),
            |o, (a, b, RelationId(r)): &(NodeRef, NodeRef, RelationId)| {
                o.push('[');
                noderef(o, a);
                o.push(',');
                noderef(o, b);
                o.push(',');
                uint(o, *r);
                o.push(']');
            },
        );
        o.push('}');
    }

    fn outcome(o: &mut String, v: &TxnOutcome) {
        o.push_str(match v {
            TxnOutcome::Committed => "\"Committed\"",
            TxnOutcome::Aborted => "\"Aborted\"",
        });
    }

    fn propagate(o: &mut String, p: &TxnPropagate) {
        o.push_str("{\"txn\":");
        vt(o, &p.txn);
        o.push_str(",\"origin\":");
        uint(o, p.origin.0 as u64);
        o.push_str(",\"updates\":");
        seq(o, &p.updates, update);
        o.push_str(",\"reads\":");
        seq(o, &p.reads, read);
        o.push_str(",\"delegate\":");
        opt(o, p.delegate.as_ref(), |o, d: &Delegate| {
            o.push_str("{\"notify\":");
            seq(o, &d.notify, |o, s: &SiteId| uint(o, s.0 as u64));
            o.push('}');
        });
        o.push('}');
    }

    fn message(o: &mut String, m: &Message) {
        match m {
            Message::Txn(p) => {
                o.push_str("{\"Txn\":");
                propagate(o, p);
                o.push('}');
            }
            Message::SnapshotConfirm {
                subject,
                origin,
                reads,
            } => {
                o.push_str("{\"SnapshotConfirm\":{\"subject\":");
                vt(o, subject);
                o.push_str(",\"origin\":");
                uint(o, origin.0 as u64);
                o.push_str(",\"reads\":");
                seq(o, reads, read);
                o.push_str("}}");
            }
            Message::Confirm { subject, kind } | Message::Deny { subject, kind } => {
                o.push_str(if matches!(m, Message::Confirm { .. }) {
                    "{\"Confirm\":{\"subject\":"
                } else {
                    "{\"Deny\":{\"subject\":"
                });
                vt(o, subject);
                o.push_str(",\"kind\":");
                o.push_str(match kind {
                    SubjectKind::Txn => "\"Txn\"",
                    SubjectKind::Snapshot => "\"Snapshot\"",
                });
                o.push_str("}}");
            }
            Message::Commit { txn } => {
                o.push_str("{\"Commit\":{\"txn\":");
                vt(o, txn);
                o.push_str("}}");
            }
            Message::Abort { txn } => {
                o.push_str("{\"Abort\":{\"txn\":");
                vt(o, txn);
                o.push_str("}}");
            }
            Message::JoinRequest {
                txn,
                origin,
                relation,
                a_node,
                a_graph,
                b_object,
                assoc_object,
            } => {
                o.push_str("{\"JoinRequest\":{\"txn\":");
                vt(o, txn);
                o.push_str(",\"origin\":");
                uint(o, origin.0 as u64);
                o.push_str(",\"relation\":");
                uint(o, relation.0);
                o.push_str(",\"a_node\":");
                noderef(o, a_node);
                o.push_str(",\"a_graph\":");
                graph(o, a_graph);
                o.push_str(",\"b_object\":");
                oname(o, b_object);
                o.push_str(",\"assoc_object\":");
                opt(o, assoc_object.as_ref(), oname);
                o.push_str("}}");
            }
            Message::JoinReply {
                txn,
                ok,
                b_node,
                merged,
                b_value,
                b_value_vt,
                b_value_committed,
                confirms_expected,
                extra_affected,
            } => {
                o.push_str("{\"JoinReply\":{\"txn\":");
                vt(o, txn);
                o.push_str(",\"ok\":");
                boolean(o, *ok);
                o.push_str(",\"b_node\":");
                noderef(o, b_node);
                o.push_str(",\"merged\":");
                graph(o, merged);
                o.push_str(",\"b_value\":");
                opt(o, b_value.as_ref(), tree);
                o.push_str(",\"b_value_vt\":");
                vt(o, b_value_vt);
                o.push_str(",\"b_value_committed\":");
                boolean(o, *b_value_committed);
                o.push_str(",\"confirms_expected\":");
                uint(o, *confirms_expected as u64);
                o.push_str(",\"extra_affected\":");
                seq(o, extra_affected, |o, s: &SiteId| uint(o, s.0 as u64));
                o.push_str("}}");
            }
            Message::GraphUpdate {
                txn,
                origin,
                target,
                graph: g,
                t_g,
                needs_check,
                adopt_value,
                adopt_value_vt,
            } => {
                o.push_str("{\"GraphUpdate\":{\"txn\":");
                vt(o, txn);
                o.push_str(",\"origin\":");
                uint(o, origin.0 as u64);
                o.push_str(",\"target\":");
                oname(o, target);
                o.push_str(",\"graph\":");
                graph(o, g);
                o.push_str(",\"t_g\":");
                vt(o, t_g);
                o.push_str(",\"needs_check\":");
                boolean(o, *needs_check);
                o.push_str(",\"adopt_value\":");
                opt(o, adopt_value.as_ref(), tree);
                o.push_str(",\"adopt_value_vt\":");
                vt(o, adopt_value_vt);
                o.push_str("}}");
            }
            Message::OutcomeQuery { txn, asker } => {
                o.push_str("{\"OutcomeQuery\":{\"txn\":");
                vt(o, txn);
                o.push_str(",\"asker\":");
                uint(o, asker.0 as u64);
                o.push_str("}}");
            }
            Message::OutcomeReport { txn, outcome: out } => {
                o.push_str("{\"OutcomeReport\":{\"txn\":");
                vt(o, txn);
                o.push_str(",\"outcome\":");
                opt(o, out.as_ref(), outcome);
                o.push_str("}}");
            }
            Message::OutcomeDecision { txn, outcome: out } => {
                o.push_str("{\"OutcomeDecision\":{\"txn\":");
                vt(o, txn);
                o.push_str(",\"outcome\":");
                outcome(o, out);
                o.push_str("}}");
            }
            Message::GraphPropose {
                ballot,
                coordinator,
                target,
                coord_target,
                graph: g,
                at,
            } => {
                o.push_str("{\"GraphPropose\":{\"ballot\":");
                uint(o, *ballot);
                o.push_str(",\"coordinator\":");
                uint(o, coordinator.0 as u64);
                o.push_str(",\"target\":");
                oname(o, target);
                o.push_str(",\"coord_target\":");
                oname(o, coord_target);
                o.push_str(",\"graph\":");
                graph(o, g);
                o.push_str(",\"at\":");
                vt(o, at);
                o.push_str("}}");
            }
            Message::GraphAck {
                ballot,
                coord_target,
            } => {
                o.push_str("{\"GraphAck\":{\"ballot\":");
                uint(o, *ballot);
                o.push_str(",\"coord_target\":");
                oname(o, coord_target);
                o.push_str("}}");
            }
            Message::Heartbeat => o.push_str("\"Heartbeat\""),
            Message::GraphApply {
                ballot,
                target,
                graph: g,
                at,
            } => {
                o.push_str("{\"GraphApply\":{\"ballot\":");
                uint(o, *ballot);
                o.push_str(",\"target\":");
                oname(o, target);
                o.push_str(",\"graph\":");
                graph(o, g);
                o.push_str(",\"at\":");
                vt(o, at);
                o.push_str("}}");
            }
            Message::RejoinRequest {
                frontier,
                have,
                serve,
            } => {
                o.push_str("{\"RejoinRequest\":{\"frontier\":");
                vt(o, frontier);
                o.push_str(",\"have\":");
                seq(o, have, vt);
                o.push_str(",\"serve\":");
                boolean(o, *serve);
                o.push_str("}}");
            }
            Message::RejoinAck { frontier, have } => {
                o.push_str("{\"RejoinAck\":{\"frontier\":");
                vt(o, frontier);
                o.push_str(",\"have\":");
                seq(o, have, vt);
                o.push_str("}}");
            }
            Message::CatchUp { commits, rejoined } => {
                o.push_str("{\"CatchUp\":{\"commits\":");
                seq(o, commits, propagate);
                o.push_str(",\"rejoined\":");
                boolean(o, *rejoined);
                o.push_str("}}");
            }
        }
    }

    // ---- decoder ----------------------------------------------------------

    pub(super) fn decode(bytes: &[u8]) -> Result<Envelope, String> {
        let mut p = P { b: bytes, i: 0 };
        let env = d_envelope(&mut p)?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(env)
    }

    /// Cursor over the input bytes. Field loops live in free functions
    /// ([`obj`], [`arr`], [`variant`]) because a closure that both reads
    /// fields and fills locals needs the cursor passed back in.
    struct P<'a> {
        b: &'a [u8],
        i: usize,
    }

    impl<'a> P<'a> {
        fn ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.i += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.b.get(self.i).copied()
        }

        fn eat(&mut self, c: u8) -> bool {
            if self.peek() == Some(c) {
                self.i += 1;
                true
            } else {
                false
            }
        }

        fn expect(&mut self, c: u8) -> Result<(), String> {
            if self.eat(c) {
                Ok(())
            } else {
                Err(format!("expected {:?} at offset {}", c as char, self.i))
            }
        }

        fn lit(&mut self, s: &str) -> bool {
            if self.b[self.i..].starts_with(s.as_bytes()) {
                self.i += s.len();
                true
            } else {
                false
            }
        }

        fn try_null(&mut self) -> bool {
            self.ws();
            self.lit("null")
        }

        fn hex4(&mut self) -> Result<u32, String> {
            let s = self
                .b
                .get(self.i..self.i + 4)
                .ok_or("truncated \\u escape")?;
            self.i += 4;
            let s = std::str::from_utf8(s).map_err(|_| "bad \\u escape")?;
            u32::from_str_radix(s, 16).map_err(|e| format!("bad \\u escape: {e}"))
        }

        fn string(&mut self) -> Result<String, String> {
            self.ws();
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                let c = *self.b.get(self.i).ok_or("unterminated string")?;
                self.i += 1;
                match c {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let e = *self.b.get(self.i).ok_or("unterminated escape")?;
                        self.i += 1;
                        match e {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'b' => out.push('\u{08}'),
                            b'f' => out.push('\u{0c}'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'u' => {
                                let hi = self.hex4()?;
                                let cp = if (0xD800..0xDC00).contains(&hi) {
                                    if !(self.eat(b'\\') && self.eat(b'u')) {
                                        return Err("lone high surrogate".into());
                                    }
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err("invalid low surrogate".into());
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    hi
                                };
                                out.push(char::from_u32(cp).ok_or("invalid \\u escape")?);
                            }
                            e => return Err(format!("bad escape \\{}", e as char)),
                        }
                    }
                    c if c < 0x20 => return Err("raw control character in string".into()),
                    c if c < 0x80 => out.push(c as char),
                    c => {
                        let start = self.i - 1;
                        let len = match c {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            0xF0..=0xF7 => 4,
                            _ => return Err("invalid UTF-8 in string".into()),
                        };
                        let s = self.b.get(start..start + len).ok_or("truncated UTF-8")?;
                        out.push_str(
                            std::str::from_utf8(s).map_err(|_| "invalid UTF-8 in string")?,
                        );
                        self.i = start + len;
                    }
                }
            }
        }

        fn number(&mut self) -> Result<&'a str, String> {
            self.ws();
            let start = self.i;
            self.eat(b'-');
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.i += 1;
            }
            if self.eat(b'.') {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.i += 1;
                }
            }
            if matches!(self.peek(), Some(b'e' | b'E')) {
                self.i += 1;
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.i += 1;
                }
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.i += 1;
                }
            }
            if self.i == start {
                return Err(format!("expected number at offset {start}"));
            }
            std::str::from_utf8(&self.b[start..self.i]).map_err(|_| "bad number".to_string())
        }

        fn u64v(&mut self) -> Result<u64, String> {
            let s = self.number()?;
            s.parse().map_err(|e| format!("bad integer {s:?}: {e}"))
        }

        fn u32v(&mut self) -> Result<u32, String> {
            let s = self.number()?;
            s.parse().map_err(|e| format!("bad integer {s:?}: {e}"))
        }

        fn usizev(&mut self) -> Result<usize, String> {
            let s = self.number()?;
            s.parse().map_err(|e| format!("bad integer {s:?}: {e}"))
        }

        fn i64v(&mut self) -> Result<i64, String> {
            let s = self.number()?;
            s.parse().map_err(|e| format!("bad integer {s:?}: {e}"))
        }

        fn f64v(&mut self) -> Result<f64, String> {
            let s = self.number()?;
            s.parse().map_err(|e| format!("bad real {s:?}: {e}"))
        }

        fn boolv(&mut self) -> Result<bool, String> {
            self.ws();
            if self.lit("true") {
                Ok(true)
            } else if self.lit("false") {
                Ok(false)
            } else {
                Err(format!("expected bool at offset {}", self.i))
            }
        }

        /// Skips one complete JSON value (for unknown fields, matching the
        /// serde decoder's ignore-unknown-fields tolerance).
        fn skip(&mut self) -> Result<(), String> {
            self.ws();
            match self.peek().ok_or("unexpected end of input")? {
                b'"' => {
                    self.string()?;
                }
                b'{' => {
                    self.i += 1;
                    self.ws();
                    if self.eat(b'}') {
                        return Ok(());
                    }
                    loop {
                        self.string()?;
                        self.ws();
                        self.expect(b':')?;
                        self.skip()?;
                        self.ws();
                        if self.eat(b',') {
                            self.ws();
                            continue;
                        }
                        self.expect(b'}')?;
                        break;
                    }
                }
                b'[' => {
                    self.i += 1;
                    self.ws();
                    if self.eat(b']') {
                        return Ok(());
                    }
                    loop {
                        self.skip()?;
                        self.ws();
                        if self.eat(b',') {
                            self.ws();
                            continue;
                        }
                        self.expect(b']')?;
                        break;
                    }
                }
                b't' | b'f' | b'n' => {
                    if !(self.lit("true") || self.lit("false") || self.lit("null")) {
                        return Err(format!("bad literal at offset {}", self.i));
                    }
                }
                _ => {
                    self.number()?;
                }
            }
            Ok(())
        }
    }

    fn obj(
        p: &mut P,
        mut field: impl FnMut(&mut P, &str) -> Result<(), String>,
    ) -> Result<(), String> {
        p.ws();
        p.expect(b'{')?;
        p.ws();
        if p.eat(b'}') {
            return Ok(());
        }
        loop {
            let key = p.string()?;
            p.ws();
            p.expect(b':')?;
            field(p, &key)?;
            p.ws();
            if p.eat(b',') {
                p.ws();
                continue;
            }
            p.expect(b'}')?;
            return Ok(());
        }
    }

    fn arr(p: &mut P, mut item: impl FnMut(&mut P) -> Result<(), String>) -> Result<(), String> {
        p.ws();
        p.expect(b'[')?;
        p.ws();
        if p.eat(b']') {
            return Ok(());
        }
        loop {
            item(p)?;
            p.ws();
            if p.eat(b',') {
                p.ws();
                continue;
            }
            p.expect(b']')?;
            return Ok(());
        }
    }

    /// Decodes an externally tagged enum object `{"Variant": payload}`.
    fn variant<T>(
        p: &mut P,
        f: impl FnOnce(&mut P, &str) -> Result<T, String>,
    ) -> Result<T, String> {
        p.ws();
        p.expect(b'{')?;
        let tag = p.string()?;
        p.ws();
        p.expect(b':')?;
        let v = f(p, &tag)?;
        p.ws();
        p.expect(b'}')?;
        Ok(v)
    }

    fn miss<T>(v: Option<T>, what: &str) -> Result<T, String> {
        v.ok_or_else(|| format!("missing field {what}"))
    }

    fn d_site(p: &mut P) -> Result<SiteId, String> {
        Ok(SiteId(p.u32v()?))
    }

    fn d_vt(p: &mut P) -> Result<VirtualTime, String> {
        let (mut lamport, mut site) = (None, None);
        obj(p, |p, k| {
            match k {
                "lamport" => lamport = Some(p.u64v()?),
                "site" => site = Some(d_site(p)?),
                _ => p.skip()?,
            }
            Ok(())
        })?;
        Ok(VirtualTime {
            lamport: miss(lamport, "lamport")?,
            site: miss(site, "site")?,
        })
    }

    fn d_oname(p: &mut P) -> Result<ObjectName, String> {
        let (mut site, mut seq) = (None, None);
        obj(p, |p, k| {
            match k {
                "site" => site = Some(d_site(p)?),
                "seq" => seq = Some(p.u64v()?),
                _ => p.skip()?,
            }
            Ok(())
        })?;
        Ok(ObjectName {
            site: miss(site, "site")?,
            seq: miss(seq, "seq")?,
        })
    }

    fn d_noderef(p: &mut P) -> Result<NodeRef, String> {
        let (mut site, mut object) = (None, None);
        obj(p, |p, k| {
            match k {
                "site" => site = Some(d_site(p)?),
                "object" => object = Some(d_oname(p)?),
                _ => p.skip()?,
            }
            Ok(())
        })?;
        Ok(NodeRef {
            site: miss(site, "site")?,
            object: miss(object, "object")?,
        })
    }

    fn d_scalar(p: &mut P) -> Result<ScalarValue, String> {
        variant(p, |p, tag| match tag {
            "Int" => Ok(ScalarValue::Int(p.i64v()?)),
            "Real" => Ok(ScalarValue::Real(p.f64v()?)),
            "Str" => Ok(ScalarValue::Str(p.string()?)),
            t => Err(format!("unknown ScalarValue variant {t:?}")),
        })
    }

    fn d_blueprint(p: &mut P) -> Result<Blueprint, String> {
        variant(p, |p, tag| match tag {
            "Int" => Ok(Blueprint::Int(p.i64v()?)),
            "Real" => Ok(Blueprint::Real(p.f64v()?)),
            "Str" => Ok(Blueprint::Str(p.string()?)),
            "List" => {
                let mut children = Vec::new();
                arr(p, |p| {
                    children.push(d_blueprint(p)?);
                    Ok(())
                })?;
                Ok(Blueprint::List(children))
            }
            "Tuple" => {
                let mut children = Vec::new();
                arr(p, |p| {
                    p.ws();
                    p.expect(b'[')?;
                    let k = p.string()?;
                    p.ws();
                    p.expect(b',')?;
                    let c = d_blueprint(p)?;
                    p.ws();
                    p.expect(b']')?;
                    children.push((k, c));
                    Ok(())
                })?;
                Ok(Blueprint::Tuple(children))
            }
            t => Err(format!("unknown Blueprint variant {t:?}")),
        })
    }

    fn d_path(p: &mut P) -> Result<Path, String> {
        let mut elems = Vec::new();
        arr(p, |p| {
            elems.push(variant(p, |p, tag| match tag {
                "Index" => {
                    let (mut index, mut vtag) = (None, None);
                    obj(p, |p, k| {
                        match k {
                            "index" => index = Some(p.usizev()?),
                            "tag" => vtag = Some(d_vt(p)?),
                            _ => p.skip()?,
                        }
                        Ok(())
                    })?;
                    Ok(PathElem::Index {
                        index: miss(index, "index")?,
                        tag: miss(vtag, "tag")?,
                    })
                }
                "Key" => Ok(PathElem::Key(p.string()?)),
                t => Err(format!("unknown PathElem variant {t:?}")),
            })?);
            Ok(())
        })?;
        Ok(Path(elems))
    }

    fn d_addr(p: &mut P) -> Result<ObjectAddr, String> {
        variant(p, |p, tag| match tag {
            "Direct" => Ok(ObjectAddr::Direct(d_oname(p)?)),
            "Indirect" => {
                let (mut root, mut path) = (None, None);
                obj(p, |p, k| {
                    match k {
                        "root" => root = Some(d_oname(p)?),
                        "path" => path = Some(d_path(p)?),
                        _ => p.skip()?,
                    }
                    Ok(())
                })?;
                Ok(ObjectAddr::Indirect {
                    root: miss(root, "root")?,
                    path: miss(path, "path")?,
                })
            }
            t => Err(format!("unknown ObjectAddr variant {t:?}")),
        })
    }

    fn d_assoc(p: &mut P) -> Result<AssocSnapshot, String> {
        let mut rows = Vec::new();
        obj(p, |p, key| {
            let id: u64 = key
                .parse()
                .map_err(|e| format!("bad relation key {key:?}: {e}"))?;
            let (mut members, mut description) = (None, None);
            obj(p, |p, k| {
                match k {
                    "members" => {
                        let mut ms = Vec::new();
                        arr(p, |p| {
                            ms.push(d_noderef(p)?);
                            Ok(())
                        })?;
                        members = Some(ms);
                    }
                    "description" => description = Some(p.string()?),
                    _ => p.skip()?,
                }
                Ok(())
            })?;
            rows.push((
                RelationId(id),
                miss(members, "members")?,
                miss(description, "description")?,
            ));
            Ok(())
        })?;
        Ok(AssocSnapshot::from_wire_parts(rows))
    }

    fn d_tree(p: &mut P) -> Result<TreeSnapshot, String> {
        variant(p, |p, tag| match tag {
            "Scalar" => Ok(TreeSnapshot::Scalar(d_scalar(p)?)),
            "List" => {
                let mut entries = Vec::new();
                arr(p, |p| {
                    p.ws();
                    p.expect(b'[')?;
                    let t = d_vt(p)?;
                    p.ws();
                    p.expect(b',')?;
                    let c = d_tree(p)?;
                    p.ws();
                    p.expect(b']')?;
                    entries.push((t, c));
                    Ok(())
                })?;
                Ok(TreeSnapshot::List(entries))
            }
            "Tuple" => {
                let mut entries = Vec::new();
                arr(p, |p| {
                    p.ws();
                    p.expect(b'[')?;
                    let k = p.string()?;
                    p.ws();
                    p.expect(b',')?;
                    let c = d_tree(p)?;
                    p.ws();
                    p.expect(b']')?;
                    entries.push((k, c));
                    Ok(())
                })?;
                Ok(TreeSnapshot::Tuple(entries))
            }
            "Assoc" => Ok(TreeSnapshot::Assoc(d_assoc(p)?)),
            t => Err(format!("unknown TreeSnapshot variant {t:?}")),
        })
    }

    fn d_wireop(p: &mut P) -> Result<WireOp, String> {
        variant(p, |p, tag| match tag {
            "SetScalar" => Ok(WireOp::SetScalar(d_scalar(p)?)),
            "ListInsert" => {
                let (mut index, mut child) = (None, None);
                obj(p, |p, k| {
                    match k {
                        "index" => index = Some(p.usizev()?),
                        "child" => child = Some(d_blueprint(p)?),
                        _ => p.skip()?,
                    }
                    Ok(())
                })?;
                Ok(WireOp::ListInsert {
                    index: miss(index, "index")?,
                    child: miss(child, "child")?,
                })
            }
            "ListRemove" => {
                let mut tag_vt = None;
                obj(p, |p, k| {
                    match k {
                        "tag" => tag_vt = Some(d_vt(p)?),
                        _ => p.skip()?,
                    }
                    Ok(())
                })?;
                Ok(WireOp::ListRemove {
                    tag: miss(tag_vt, "tag")?,
                })
            }
            "TuplePut" => {
                let (mut key, mut child) = (None, None);
                obj(p, |p, k| {
                    match k {
                        "key" => key = Some(p.string()?),
                        "child" => child = Some(d_blueprint(p)?),
                        _ => p.skip()?,
                    }
                    Ok(())
                })?;
                Ok(WireOp::TuplePut {
                    key: miss(key, "key")?,
                    child: miss(child, "child")?,
                })
            }
            "TupleRemove" => {
                let mut key = None;
                obj(p, |p, k| {
                    match k {
                        "key" => key = Some(p.string()?),
                        _ => p.skip()?,
                    }
                    Ok(())
                })?;
                Ok(WireOp::TupleRemove {
                    key: miss(key, "key")?,
                })
            }
            "SetAssoc" => Ok(WireOp::SetAssoc(d_assoc(p)?)),
            "SetTree" => Ok(WireOp::SetTree(d_tree(p)?)),
            t => Err(format!("unknown WireOp variant {t:?}")),
        })
    }

    fn d_update(p: &mut P) -> Result<UpdateItem, String> {
        let (mut addr, mut t_r, mut t_g, mut op, mut needs_check) = (None, None, None, None, None);
        obj(p, |p, k| {
            match k {
                "addr" => addr = Some(d_addr(p)?),
                "t_r" => t_r = Some(d_vt(p)?),
                "t_g" => t_g = Some(d_vt(p)?),
                "op" => op = Some(d_wireop(p)?),
                "needs_check" => needs_check = Some(p.boolv()?),
                _ => p.skip()?,
            }
            Ok(())
        })?;
        Ok(UpdateItem {
            addr: miss(addr, "addr")?,
            t_r: miss(t_r, "t_r")?,
            t_g: miss(t_g, "t_g")?,
            op: miss(op, "op")?,
            needs_check: miss(needs_check, "needs_check")?,
        })
    }

    fn d_read(p: &mut P) -> Result<ReadItem, String> {
        let (mut addr, mut t_r, mut t_g, mut hi) = (None, None, None, None);
        obj(p, |p, k| {
            match k {
                "addr" => addr = Some(d_addr(p)?),
                "t_r" => t_r = Some(d_vt(p)?),
                "t_g" => t_g = Some(d_vt(p)?),
                "hi" => {
                    hi = if p.try_null() {
                        Some(None)
                    } else {
                        Some(Some(d_vt(p)?))
                    }
                }
                _ => p.skip()?,
            }
            Ok(())
        })?;
        Ok(ReadItem {
            addr: miss(addr, "addr")?,
            t_r: miss(t_r, "t_r")?,
            t_g: miss(t_g, "t_g")?,
            // `#[serde(default)]`: absent means None.
            hi: hi.unwrap_or(None),
        })
    }

    fn d_sites(p: &mut P) -> Result<Vec<SiteId>, String> {
        let mut out = Vec::new();
        arr(p, |p| {
            out.push(d_site(p)?);
            Ok(())
        })?;
        Ok(out)
    }

    fn d_vts(p: &mut P) -> Result<Vec<VirtualTime>, String> {
        let mut out = Vec::new();
        arr(p, |p| {
            out.push(d_vt(p)?);
            Ok(())
        })?;
        Ok(out)
    }

    fn d_delegate(p: &mut P) -> Result<Delegate, String> {
        let mut notify = None;
        obj(p, |p, k| {
            match k {
                "notify" => notify = Some(d_sites(p)?),
                _ => p.skip()?,
            }
            Ok(())
        })?;
        Ok(Delegate {
            notify: miss(notify, "notify")?,
        })
    }

    fn d_graph(p: &mut P) -> Result<ReplicationGraph, String> {
        let mut nodes = Vec::new();
        let mut edges = Vec::new();
        obj(p, |p, k| {
            match k {
                "nodes" => arr(p, |p| {
                    nodes.push(d_noderef(p)?);
                    Ok(())
                })?,
                "edges" => arr(p, |p| {
                    p.ws();
                    p.expect(b'[')?;
                    let a = d_noderef(p)?;
                    p.ws();
                    p.expect(b',')?;
                    let b = d_noderef(p)?;
                    p.ws();
                    p.expect(b',')?;
                    let r = RelationId(p.u64v()?);
                    p.ws();
                    p.expect(b']')?;
                    edges.push((a, b, r));
                    Ok(())
                })?,
                _ => p.skip()?,
            }
            Ok(())
        })?;
        Ok(ReplicationGraph::from_parts(nodes, edges))
    }

    fn d_outcome(p: &mut P) -> Result<TxnOutcome, String> {
        match p.string()?.as_str() {
            "Committed" => Ok(TxnOutcome::Committed),
            "Aborted" => Ok(TxnOutcome::Aborted),
            t => Err(format!("unknown TxnOutcome variant {t:?}")),
        }
    }

    fn d_subject_kind(p: &mut P) -> Result<SubjectKind, String> {
        match p.string()?.as_str() {
            "Txn" => Ok(SubjectKind::Txn),
            "Snapshot" => Ok(SubjectKind::Snapshot),
            t => Err(format!("unknown SubjectKind variant {t:?}")),
        }
    }

    fn d_propagate(p: &mut P) -> Result<TxnPropagate, String> {
        let (mut txn, mut origin, mut updates, mut reads, mut delegate) =
            (None, None, None, None, None);
        obj(p, |p, k| {
            match k {
                "txn" => txn = Some(d_vt(p)?),
                "origin" => origin = Some(d_site(p)?),
                "updates" => {
                    let mut us = Vec::new();
                    arr(p, |p| {
                        us.push(d_update(p)?);
                        Ok(())
                    })?;
                    updates = Some(us);
                }
                "reads" => {
                    let mut rs = Vec::new();
                    arr(p, |p| {
                        rs.push(d_read(p)?);
                        Ok(())
                    })?;
                    reads = Some(rs);
                }
                "delegate" => {
                    delegate = if p.try_null() {
                        Some(None)
                    } else {
                        Some(Some(d_delegate(p)?))
                    }
                }
                _ => p.skip()?,
            }
            Ok(())
        })?;
        Ok(TxnPropagate {
            txn: miss(txn, "txn")?,
            origin: miss(origin, "origin")?,
            updates: miss(updates, "updates")?,
            reads: miss(reads, "reads")?,
            delegate: miss(delegate, "delegate")?,
        })
    }

    #[allow(clippy::too_many_lines)] // one arm per protocol message
    fn d_message(p: &mut P) -> Result<Message, String> {
        p.ws();
        if p.peek() == Some(b'"') {
            return match p.string()?.as_str() {
                "Heartbeat" => Ok(Message::Heartbeat),
                t => Err(format!("unknown unit Message variant {t:?}")),
            };
        }
        variant(p, |p, tag| match tag {
            "Txn" => Ok(Message::Txn(d_propagate(p)?)),
            "SnapshotConfirm" => {
                let (mut subject, mut origin, mut reads) = (None, None, None);
                obj(p, |p, k| {
                    match k {
                        "subject" => subject = Some(d_vt(p)?),
                        "origin" => origin = Some(d_site(p)?),
                        "reads" => {
                            let mut rs = Vec::new();
                            arr(p, |p| {
                                rs.push(d_read(p)?);
                                Ok(())
                            })?;
                            reads = Some(rs);
                        }
                        _ => p.skip()?,
                    }
                    Ok(())
                })?;
                Ok(Message::SnapshotConfirm {
                    subject: miss(subject, "subject")?,
                    origin: miss(origin, "origin")?,
                    reads: miss(reads, "reads")?,
                })
            }
            "Confirm" | "Deny" => {
                let confirm = tag == "Confirm";
                let (mut subject, mut kind) = (None, None);
                obj(p, |p, k| {
                    match k {
                        "subject" => subject = Some(d_vt(p)?),
                        "kind" => kind = Some(d_subject_kind(p)?),
                        _ => p.skip()?,
                    }
                    Ok(())
                })?;
                let subject = miss(subject, "subject")?;
                let kind = miss(kind, "kind")?;
                Ok(if confirm {
                    Message::Confirm { subject, kind }
                } else {
                    Message::Deny { subject, kind }
                })
            }
            "Commit" | "Abort" => {
                let commit = tag == "Commit";
                let mut txn = None;
                obj(p, |p, k| {
                    match k {
                        "txn" => txn = Some(d_vt(p)?),
                        _ => p.skip()?,
                    }
                    Ok(())
                })?;
                let txn = miss(txn, "txn")?;
                Ok(if commit {
                    Message::Commit { txn }
                } else {
                    Message::Abort { txn }
                })
            }
            "JoinRequest" => {
                let (mut txn, mut origin, mut relation, mut a_node) = (None, None, None, None);
                let (mut a_graph, mut b_object, mut assoc_object) = (None, None, None);
                obj(p, |p, k| {
                    match k {
                        "txn" => txn = Some(d_vt(p)?),
                        "origin" => origin = Some(d_site(p)?),
                        "relation" => relation = Some(RelationId(p.u64v()?)),
                        "a_node" => a_node = Some(d_noderef(p)?),
                        "a_graph" => a_graph = Some(d_graph(p)?),
                        "b_object" => b_object = Some(d_oname(p)?),
                        "assoc_object" => {
                            assoc_object = if p.try_null() {
                                Some(None)
                            } else {
                                Some(Some(d_oname(p)?))
                            }
                        }
                        _ => p.skip()?,
                    }
                    Ok(())
                })?;
                Ok(Message::JoinRequest {
                    txn: miss(txn, "txn")?,
                    origin: miss(origin, "origin")?,
                    relation: miss(relation, "relation")?,
                    a_node: miss(a_node, "a_node")?,
                    a_graph: miss(a_graph, "a_graph")?,
                    b_object: miss(b_object, "b_object")?,
                    assoc_object: miss(assoc_object, "assoc_object")?,
                })
            }
            "JoinReply" => {
                let (mut txn, mut ok, mut b_node, mut merged, mut b_value) =
                    (None, None, None, None, None);
                let (mut b_value_vt, mut b_value_committed, mut confirms_expected) =
                    (None, None, None);
                let mut extra_affected = None;
                obj(p, |p, k| {
                    match k {
                        "txn" => txn = Some(d_vt(p)?),
                        "ok" => ok = Some(p.boolv()?),
                        "b_node" => b_node = Some(d_noderef(p)?),
                        "merged" => merged = Some(d_graph(p)?),
                        "b_value" => {
                            b_value = if p.try_null() {
                                Some(None)
                            } else {
                                Some(Some(d_tree(p)?))
                            }
                        }
                        "b_value_vt" => b_value_vt = Some(d_vt(p)?),
                        "b_value_committed" => b_value_committed = Some(p.boolv()?),
                        "confirms_expected" => confirms_expected = Some(p.u32v()?),
                        "extra_affected" => extra_affected = Some(d_sites(p)?),
                        _ => p.skip()?,
                    }
                    Ok(())
                })?;
                Ok(Message::JoinReply {
                    txn: miss(txn, "txn")?,
                    ok: miss(ok, "ok")?,
                    b_node: miss(b_node, "b_node")?,
                    merged: miss(merged, "merged")?,
                    b_value: miss(b_value, "b_value")?,
                    b_value_vt: miss(b_value_vt, "b_value_vt")?,
                    b_value_committed: miss(b_value_committed, "b_value_committed")?,
                    confirms_expected: miss(confirms_expected, "confirms_expected")?,
                    extra_affected: miss(extra_affected, "extra_affected")?,
                })
            }
            "GraphUpdate" => {
                let (mut txn, mut origin, mut target, mut graph) = (None, None, None, None);
                let (mut t_g, mut needs_check, mut adopt_value, mut adopt_value_vt) =
                    (None, None, None, None);
                obj(p, |p, k| {
                    match k {
                        "txn" => txn = Some(d_vt(p)?),
                        "origin" => origin = Some(d_site(p)?),
                        "target" => target = Some(d_oname(p)?),
                        "graph" => graph = Some(d_graph(p)?),
                        "t_g" => t_g = Some(d_vt(p)?),
                        "needs_check" => needs_check = Some(p.boolv()?),
                        "adopt_value" => {
                            adopt_value = if p.try_null() {
                                Some(None)
                            } else {
                                Some(Some(d_tree(p)?))
                            }
                        }
                        "adopt_value_vt" => adopt_value_vt = Some(d_vt(p)?),
                        _ => p.skip()?,
                    }
                    Ok(())
                })?;
                Ok(Message::GraphUpdate {
                    txn: miss(txn, "txn")?,
                    origin: miss(origin, "origin")?,
                    target: miss(target, "target")?,
                    graph: miss(graph, "graph")?,
                    t_g: miss(t_g, "t_g")?,
                    needs_check: miss(needs_check, "needs_check")?,
                    adopt_value: miss(adopt_value, "adopt_value")?,
                    // `#[serde(default)]`: absent means ZERO.
                    adopt_value_vt: adopt_value_vt.unwrap_or(VirtualTime::ZERO),
                })
            }
            "OutcomeQuery" => {
                let (mut txn, mut asker) = (None, None);
                obj(p, |p, k| {
                    match k {
                        "txn" => txn = Some(d_vt(p)?),
                        "asker" => asker = Some(d_site(p)?),
                        _ => p.skip()?,
                    }
                    Ok(())
                })?;
                Ok(Message::OutcomeQuery {
                    txn: miss(txn, "txn")?,
                    asker: miss(asker, "asker")?,
                })
            }
            "OutcomeReport" => {
                let (mut txn, mut outcome) = (None, None);
                obj(p, |p, k| {
                    match k {
                        "txn" => txn = Some(d_vt(p)?),
                        "outcome" => {
                            outcome = if p.try_null() {
                                Some(None)
                            } else {
                                Some(Some(d_outcome(p)?))
                            }
                        }
                        _ => p.skip()?,
                    }
                    Ok(())
                })?;
                Ok(Message::OutcomeReport {
                    txn: miss(txn, "txn")?,
                    outcome: miss(outcome, "outcome")?,
                })
            }
            "OutcomeDecision" => {
                let (mut txn, mut outcome) = (None, None);
                obj(p, |p, k| {
                    match k {
                        "txn" => txn = Some(d_vt(p)?),
                        "outcome" => outcome = Some(d_outcome(p)?),
                        _ => p.skip()?,
                    }
                    Ok(())
                })?;
                Ok(Message::OutcomeDecision {
                    txn: miss(txn, "txn")?,
                    outcome: miss(outcome, "outcome")?,
                })
            }
            "GraphPropose" => {
                let (mut ballot, mut coordinator, mut target) = (None, None, None);
                let (mut coord_target, mut graph, mut at) = (None, None, None);
                obj(p, |p, k| {
                    match k {
                        "ballot" => ballot = Some(p.u64v()?),
                        "coordinator" => coordinator = Some(d_site(p)?),
                        "target" => target = Some(d_oname(p)?),
                        "coord_target" => coord_target = Some(d_oname(p)?),
                        "graph" => graph = Some(d_graph(p)?),
                        "at" => at = Some(d_vt(p)?),
                        _ => p.skip()?,
                    }
                    Ok(())
                })?;
                Ok(Message::GraphPropose {
                    ballot: miss(ballot, "ballot")?,
                    coordinator: miss(coordinator, "coordinator")?,
                    target: miss(target, "target")?,
                    coord_target: miss(coord_target, "coord_target")?,
                    graph: miss(graph, "graph")?,
                    at: miss(at, "at")?,
                })
            }
            "GraphAck" => {
                let (mut ballot, mut coord_target) = (None, None);
                obj(p, |p, k| {
                    match k {
                        "ballot" => ballot = Some(p.u64v()?),
                        "coord_target" => coord_target = Some(d_oname(p)?),
                        _ => p.skip()?,
                    }
                    Ok(())
                })?;
                Ok(Message::GraphAck {
                    ballot: miss(ballot, "ballot")?,
                    coord_target: miss(coord_target, "coord_target")?,
                })
            }
            "GraphApply" => {
                let (mut ballot, mut target, mut graph, mut at) = (None, None, None, None);
                obj(p, |p, k| {
                    match k {
                        "ballot" => ballot = Some(p.u64v()?),
                        "target" => target = Some(d_oname(p)?),
                        "graph" => graph = Some(d_graph(p)?),
                        "at" => at = Some(d_vt(p)?),
                        _ => p.skip()?,
                    }
                    Ok(())
                })?;
                Ok(Message::GraphApply {
                    ballot: miss(ballot, "ballot")?,
                    target: miss(target, "target")?,
                    graph: miss(graph, "graph")?,
                    at: miss(at, "at")?,
                })
            }
            "RejoinRequest" => {
                let (mut frontier, mut have, mut serve) = (None, None, None);
                obj(p, |p, k| {
                    match k {
                        "frontier" => frontier = Some(d_vt(p)?),
                        "have" => have = Some(d_vts(p)?),
                        "serve" => serve = Some(p.boolv()?),
                        _ => p.skip()?,
                    }
                    Ok(())
                })?;
                Ok(Message::RejoinRequest {
                    frontier: miss(frontier, "frontier")?,
                    have: miss(have, "have")?,
                    serve: miss(serve, "serve")?,
                })
            }
            "RejoinAck" => {
                let (mut frontier, mut have) = (None, None);
                obj(p, |p, k| {
                    match k {
                        "frontier" => frontier = Some(d_vt(p)?),
                        "have" => have = Some(d_vts(p)?),
                        _ => p.skip()?,
                    }
                    Ok(())
                })?;
                Ok(Message::RejoinAck {
                    frontier: miss(frontier, "frontier")?,
                    have: miss(have, "have")?,
                })
            }
            "CatchUp" => {
                let (mut commits, mut rejoined) = (None, None);
                obj(p, |p, k| {
                    match k {
                        "commits" => {
                            let mut cs = Vec::new();
                            arr(p, |p| {
                                cs.push(d_propagate(p)?);
                                Ok(())
                            })?;
                            commits = Some(cs);
                        }
                        "rejoined" => rejoined = Some(p.boolv()?),
                        _ => p.skip()?,
                    }
                    Ok(())
                })?;
                Ok(Message::CatchUp {
                    commits: miss(commits, "commits")?,
                    rejoined: miss(rejoined, "rejoined")?,
                })
            }
            t => Err(format!("unknown Message variant {t:?}")),
        })
    }

    fn d_envelope(p: &mut P) -> Result<Envelope, String> {
        let (mut from, mut to, mut clock, mut msg, mut span) = (None, None, None, None, None);
        obj(p, |p, k| {
            match k {
                "from" => from = Some(d_site(p)?),
                "to" => to = Some(d_site(p)?),
                "clock" => clock = Some(d_vt(p)?),
                "msg" => msg = Some(d_message(p)?),
                "span" => span = Some(d_span(p)?),
                _ => p.skip()?,
            }
            Ok(())
        })?;
        Ok(Envelope {
            from: miss(from, "from")?,
            to: miss(to, "to")?,
            clock: miss(clock, "clock")?,
            msg: miss(msg, "msg")?,
            span,
        })
    }

    fn d_span(p: &mut P) -> Result<SpanCtx, String> {
        let (mut origin, mut seq, mut hop) = (None, None, None);
        obj(p, |p, k| {
            match k {
                "origin" => origin = Some(d_site(p)?),
                "seq" => seq = Some(p.u64v()?),
                "hop" => hop = Some(p.u32v()?),
                _ => p.skip()?,
            }
            Ok(())
        })?;
        Ok(SpanCtx {
            origin: miss(origin, "origin")?,
            seq: miss(seq, "seq")?,
            hop: miss(hop, "hop")?,
        })
    }
}

// ---------------------------------------------------------------------------
// v2 binary codec
// ---------------------------------------------------------------------------

/// Compact binary codec for [`Envelope`]s: one tag byte per enum variant,
/// LEB128 varints for unsigned integers, zigzag varints for signed ones,
/// length-prefixed UTF-8 strings, and 8-byte little-endian IEEE bit
/// patterns for reals (so non-finite values round-trip, unlike JSON).
///
/// The layout is strict and self-delimiting — decoding rejects unknown
/// tags, truncation, and trailing bytes — and is pinned by golden byte
/// snapshots in `tests/wire_codec_v2.rs`.
mod bin {
    use decaf_core::{
        AssocSnapshot, Blueprint, Delegate, Envelope, Message, NodeRef, ObjectAddr, ObjectName,
        Path, PathElem, ReadItem, RelationId, ReplicationGraph, ScalarValue, SpanCtx, SubjectKind,
        TreeSnapshot, TxnOutcome, TxnPropagate, UpdateItem, WireOp,
    };
    use decaf_vt::{SiteId, VirtualTime};

    // ---- primitives -------------------------------------------------------

    pub(super) fn put_varint(o: &mut Vec<u8>, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                o.push(byte);
                return;
            }
            o.push(byte | 0x80);
        }
    }

    fn put_str(o: &mut Vec<u8>, s: &str) {
        put_varint(o, s.len() as u64);
        o.extend_from_slice(s.as_bytes());
    }

    fn put_i64(o: &mut Vec<u8>, v: i64) {
        // Zigzag: small magnitudes of either sign stay short.
        put_varint(o, ((v << 1) ^ (v >> 63)) as u64);
    }

    fn put_f64(o: &mut Vec<u8>, v: f64) {
        o.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn put_bool(o: &mut Vec<u8>, v: bool) {
        o.push(u8::from(v));
    }

    fn put_opt<T>(o: &mut Vec<u8>, v: Option<T>, f: impl FnOnce(&mut Vec<u8>, T)) {
        match v {
            None => o.push(0),
            Some(v) => {
                o.push(1);
                f(o, v);
            }
        }
    }

    // ---- encoder ----------------------------------------------------------

    pub(super) fn envelope(o: &mut Vec<u8>, e: &Envelope) {
        put_varint(o, e.from.0 as u64);
        put_varint(o, e.to.0 as u64);
        vt(o, &e.clock);
        message(o, &e.msg);
        // Trailing optional span section. Span-less envelopes keep the
        // pre-span byte layout exactly (pinned by golden snapshots); the
        // decoder parses a span iff bytes remain after the message, which
        // is sound because every envelope is decoded from an exactly
        // delimited slice (whole frame payload, or the batch's per-entry
        // length prefix).
        if let Some(s) = &e.span {
            put_varint(o, s.origin.0 as u64);
            put_varint(o, s.seq);
            put_varint(o, s.hop as u64);
        }
    }

    fn vt(o: &mut Vec<u8>, t: &VirtualTime) {
        put_varint(o, t.lamport);
        put_varint(o, t.site.0 as u64);
    }

    fn oname(o: &mut Vec<u8>, n: &ObjectName) {
        put_varint(o, n.site.0 as u64);
        put_varint(o, n.seq);
    }

    fn noderef(o: &mut Vec<u8>, n: &NodeRef) {
        put_varint(o, n.site.0 as u64);
        oname(o, &n.object);
    }

    fn scalar(o: &mut Vec<u8>, s: &ScalarValue) {
        match s {
            ScalarValue::Int(v) => {
                o.push(0);
                put_i64(o, *v);
            }
            ScalarValue::Real(v) => {
                o.push(1);
                put_f64(o, *v);
            }
            ScalarValue::Str(v) => {
                o.push(2);
                put_str(o, v);
            }
        }
    }

    fn blueprint(o: &mut Vec<u8>, b: &Blueprint) {
        match b {
            Blueprint::Int(v) => {
                o.push(0);
                put_i64(o, *v);
            }
            Blueprint::Real(v) => {
                o.push(1);
                put_f64(o, *v);
            }
            Blueprint::Str(v) => {
                o.push(2);
                put_str(o, v);
            }
            Blueprint::List(children) => {
                o.push(3);
                put_varint(o, children.len() as u64);
                for c in children {
                    blueprint(o, c);
                }
            }
            Blueprint::Tuple(children) => {
                o.push(4);
                put_varint(o, children.len() as u64);
                for (k, c) in children {
                    put_str(o, k);
                    blueprint(o, c);
                }
            }
        }
    }

    fn path(o: &mut Vec<u8>, p: &Path) {
        put_varint(o, p.0.len() as u64);
        for e in &p.0 {
            match e {
                PathElem::Index { index, tag } => {
                    o.push(0);
                    put_varint(o, *index as u64);
                    vt(o, tag);
                }
                PathElem::Key(k) => {
                    o.push(1);
                    put_str(o, k);
                }
            }
        }
    }

    fn addr(o: &mut Vec<u8>, a: &ObjectAddr) {
        match a {
            ObjectAddr::Direct(n) => {
                o.push(0);
                oname(o, n);
            }
            ObjectAddr::Indirect { root, path: p } => {
                o.push(1);
                oname(o, root);
                path(o, p);
            }
        }
    }

    fn assoc(o: &mut Vec<u8>, a: &AssocSnapshot) {
        let rows = a.wire_parts();
        put_varint(o, rows.len() as u64);
        for (RelationId(id), members, description) in &rows {
            put_varint(o, *id);
            put_varint(o, members.len() as u64);
            for m in members {
                noderef(o, m);
            }
            put_str(o, description);
        }
    }

    fn tree(o: &mut Vec<u8>, t: &TreeSnapshot) {
        match t {
            TreeSnapshot::Scalar(s) => {
                o.push(0);
                scalar(o, s);
            }
            TreeSnapshot::List(entries) => {
                o.push(1);
                put_varint(o, entries.len() as u64);
                for (tag, child) in entries {
                    vt(o, tag);
                    tree(o, child);
                }
            }
            TreeSnapshot::Tuple(entries) => {
                o.push(2);
                put_varint(o, entries.len() as u64);
                for (k, child) in entries {
                    put_str(o, k);
                    tree(o, child);
                }
            }
            TreeSnapshot::Assoc(a) => {
                o.push(3);
                assoc(o, a);
            }
        }
    }

    fn wireop(o: &mut Vec<u8>, w: &WireOp) {
        match w {
            WireOp::SetScalar(s) => {
                o.push(0);
                scalar(o, s);
            }
            WireOp::ListInsert { index, child } => {
                o.push(1);
                put_varint(o, *index as u64);
                blueprint(o, child);
            }
            WireOp::ListRemove { tag } => {
                o.push(2);
                vt(o, tag);
            }
            WireOp::TuplePut { key, child } => {
                o.push(3);
                put_str(o, key);
                blueprint(o, child);
            }
            WireOp::TupleRemove { key } => {
                o.push(4);
                put_str(o, key);
            }
            WireOp::SetAssoc(a) => {
                o.push(5);
                assoc(o, a);
            }
            WireOp::SetTree(t) => {
                o.push(6);
                tree(o, t);
            }
        }
    }

    fn update(o: &mut Vec<u8>, u: &UpdateItem) {
        addr(o, &u.addr);
        vt(o, &u.t_r);
        vt(o, &u.t_g);
        wireop(o, &u.op);
        put_bool(o, u.needs_check);
    }

    fn read(o: &mut Vec<u8>, r: &ReadItem) {
        addr(o, &r.addr);
        vt(o, &r.t_r);
        vt(o, &r.t_g);
        put_opt(o, r.hi.as_ref(), vt);
    }

    fn sites(o: &mut Vec<u8>, xs: &[SiteId]) {
        put_varint(o, xs.len() as u64);
        for s in xs {
            put_varint(o, s.0 as u64);
        }
    }

    fn vts(o: &mut Vec<u8>, xs: &[VirtualTime]) {
        put_varint(o, xs.len() as u64);
        for t in xs {
            vt(o, t);
        }
    }

    fn graph(o: &mut Vec<u8>, g: &ReplicationGraph) {
        let nodes: Vec<&NodeRef> = g.nodes().collect();
        put_varint(o, nodes.len() as u64);
        for n in nodes {
            noderef(o, n);
        }
        let edges: Vec<_> = g.edges().collect();
        put_varint(o, edges.len() as u64);
        for (a, b, RelationId(r)) in edges {
            noderef(o, a);
            noderef(o, b);
            put_varint(o, *r);
        }
    }

    fn outcome(o: &mut Vec<u8>, v: &TxnOutcome) {
        o.push(match v {
            TxnOutcome::Committed => 0,
            TxnOutcome::Aborted => 1,
        });
    }

    fn propagate(o: &mut Vec<u8>, p: &TxnPropagate) {
        vt(o, &p.txn);
        put_varint(o, p.origin.0 as u64);
        put_varint(o, p.updates.len() as u64);
        for u in &p.updates {
            update(o, u);
        }
        put_varint(o, p.reads.len() as u64);
        for r in &p.reads {
            read(o, r);
        }
        put_opt(o, p.delegate.as_ref(), |o, d: &Delegate| {
            sites(o, &d.notify);
        });
    }

    fn message(o: &mut Vec<u8>, m: &Message) {
        match m {
            Message::Txn(p) => {
                o.push(1);
                propagate(o, p);
            }
            Message::SnapshotConfirm {
                subject,
                origin,
                reads,
            } => {
                o.push(2);
                vt(o, subject);
                put_varint(o, origin.0 as u64);
                put_varint(o, reads.len() as u64);
                for r in reads {
                    read(o, r);
                }
            }
            Message::Confirm { subject, kind } | Message::Deny { subject, kind } => {
                o.push(if matches!(m, Message::Confirm { .. }) {
                    3
                } else {
                    4
                });
                vt(o, subject);
                o.push(match kind {
                    SubjectKind::Txn => 0,
                    SubjectKind::Snapshot => 1,
                });
            }
            Message::Commit { txn } => {
                o.push(5);
                vt(o, txn);
            }
            Message::Abort { txn } => {
                o.push(6);
                vt(o, txn);
            }
            Message::JoinRequest {
                txn,
                origin,
                relation,
                a_node,
                a_graph,
                b_object,
                assoc_object,
            } => {
                o.push(7);
                vt(o, txn);
                put_varint(o, origin.0 as u64);
                put_varint(o, relation.0);
                noderef(o, a_node);
                graph(o, a_graph);
                oname(o, b_object);
                put_opt(o, assoc_object.as_ref(), oname);
            }
            Message::JoinReply {
                txn,
                ok,
                b_node,
                merged,
                b_value,
                b_value_vt,
                b_value_committed,
                confirms_expected,
                extra_affected,
            } => {
                o.push(8);
                vt(o, txn);
                put_bool(o, *ok);
                noderef(o, b_node);
                graph(o, merged);
                put_opt(o, b_value.as_ref(), tree);
                vt(o, b_value_vt);
                put_bool(o, *b_value_committed);
                put_varint(o, *confirms_expected as u64);
                sites(o, extra_affected);
            }
            Message::GraphUpdate {
                txn,
                origin,
                target,
                graph: g,
                t_g,
                needs_check,
                adopt_value,
                adopt_value_vt,
            } => {
                o.push(9);
                vt(o, txn);
                put_varint(o, origin.0 as u64);
                oname(o, target);
                graph(o, g);
                vt(o, t_g);
                put_bool(o, *needs_check);
                put_opt(o, adopt_value.as_ref(), tree);
                vt(o, adopt_value_vt);
            }
            Message::OutcomeQuery { txn, asker } => {
                o.push(10);
                vt(o, txn);
                put_varint(o, asker.0 as u64);
            }
            Message::OutcomeReport { txn, outcome: out } => {
                o.push(11);
                vt(o, txn);
                put_opt(o, out.as_ref(), outcome);
            }
            Message::OutcomeDecision { txn, outcome: out } => {
                o.push(12);
                vt(o, txn);
                outcome(o, out);
            }
            Message::GraphPropose {
                ballot,
                coordinator,
                target,
                coord_target,
                graph: g,
                at,
            } => {
                o.push(13);
                put_varint(o, *ballot);
                put_varint(o, coordinator.0 as u64);
                oname(o, target);
                oname(o, coord_target);
                graph(o, g);
                vt(o, at);
            }
            Message::GraphAck {
                ballot,
                coord_target,
            } => {
                o.push(14);
                put_varint(o, *ballot);
                oname(o, coord_target);
            }
            Message::Heartbeat => o.push(15),
            Message::GraphApply {
                ballot,
                target,
                graph: g,
                at,
            } => {
                o.push(16);
                put_varint(o, *ballot);
                oname(o, target);
                graph(o, g);
                vt(o, at);
            }
            Message::RejoinRequest {
                frontier,
                have,
                serve,
            } => {
                o.push(17);
                vt(o, frontier);
                vts(o, have);
                put_bool(o, *serve);
            }
            Message::RejoinAck { frontier, have } => {
                o.push(18);
                vt(o, frontier);
                vts(o, have);
            }
            Message::CatchUp { commits, rejoined } => {
                o.push(19);
                put_varint(o, commits.len() as u64);
                for c in commits {
                    propagate(o, c);
                }
                put_bool(o, *rejoined);
            }
        }
    }

    // ---- decoder ----------------------------------------------------------

    pub(super) fn decode_envelope(bytes: &[u8]) -> Result<Envelope, String> {
        let mut r = R { b: bytes, i: 0 };
        let env = d_envelope(&mut r)?;
        if r.i != r.b.len() {
            return Err(format!("trailing bytes: consumed {} of {}", r.i, r.b.len()));
        }
        Ok(env)
    }

    pub(super) fn decode_batch(bytes: &[u8]) -> Result<Vec<Envelope>, String> {
        let mut r = R { b: bytes, i: 0 };
        let count = r.varint()?;
        if count > bytes.len() as u64 {
            // Each envelope costs at least one byte, so a count beyond the
            // payload length is corrupt; reject before reserving memory.
            return Err(format!("batch count {count} exceeds payload size"));
        }
        let mut out = Vec::with_capacity(count as usize);
        for n in 0..count {
            let len = r.varint()? as usize;
            let body = r.slice(len)?;
            out.push(decode_envelope(body).map_err(|e| format!("batch envelope {n}: {e}"))?);
        }
        if r.i != r.b.len() {
            return Err(format!(
                "trailing bytes after batch: consumed {} of {}",
                r.i,
                r.b.len()
            ));
        }
        Ok(out)
    }

    struct R<'a> {
        b: &'a [u8],
        i: usize,
    }

    impl<'a> R<'a> {
        fn u8(&mut self) -> Result<u8, String> {
            let v = *self.b.get(self.i).ok_or("unexpected end of input")?;
            self.i += 1;
            Ok(v)
        }

        fn slice(&mut self, n: usize) -> Result<&'a [u8], String> {
            let s = self
                .b
                .get(self.i..self.i + n)
                .ok_or("unexpected end of input")?;
            self.i += n;
            Ok(s)
        }

        fn varint(&mut self) -> Result<u64, String> {
            let mut v = 0u64;
            for shift in (0..64).step_by(7) {
                let byte = self.u8()?;
                let part = (byte & 0x7F) as u64;
                if shift == 63 && part > 1 {
                    return Err("varint overflows u64".into());
                }
                v |= part << shift;
                if byte & 0x80 == 0 {
                    return Ok(v);
                }
            }
            Err("varint longer than 10 bytes".into())
        }

        fn varint_u32(&mut self) -> Result<u32, String> {
            u32::try_from(self.varint()?).map_err(|_| "varint overflows u32".to_string())
        }

        fn varint_usize(&mut self) -> Result<usize, String> {
            usize::try_from(self.varint()?).map_err(|_| "varint overflows usize".to_string())
        }

        fn i64v(&mut self) -> Result<i64, String> {
            let z = self.varint()?;
            Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
        }

        fn f64v(&mut self) -> Result<f64, String> {
            let s = self.slice(8)?;
            let bits = u64::from_le_bytes(s.try_into().expect("slice has 8 bytes"));
            Ok(f64::from_bits(bits))
        }

        fn boolv(&mut self) -> Result<bool, String> {
            match self.u8()? {
                0 => Ok(false),
                1 => Ok(true),
                b => Err(format!("bad bool byte {b}")),
            }
        }

        fn string(&mut self) -> Result<String, String> {
            let len = self.varint_usize()?;
            let s = self.slice(len)?;
            String::from_utf8(s.to_vec()).map_err(|_| "invalid UTF-8 in string".to_string())
        }

        /// Bounds a declared element count by the bytes actually remaining
        /// (each element costs ≥ 1 byte), so a corrupt count cannot trigger
        /// an absurd `Vec::with_capacity`.
        fn count(&mut self) -> Result<usize, String> {
            let n = self.varint_usize()?;
            if n > self.b.len() - self.i {
                return Err(format!("element count {n} exceeds remaining payload"));
            }
            Ok(n)
        }

        fn opt<T>(
            &mut self,
            f: impl FnOnce(&mut Self) -> Result<T, String>,
        ) -> Result<Option<T>, String> {
            match self.u8()? {
                0 => Ok(None),
                1 => Ok(Some(f(self)?)),
                b => Err(format!("bad option byte {b}")),
            }
        }
    }

    fn d_site(r: &mut R) -> Result<SiteId, String> {
        Ok(SiteId(r.varint_u32()?))
    }

    fn d_vt(r: &mut R) -> Result<VirtualTime, String> {
        Ok(VirtualTime {
            lamport: r.varint()?,
            site: d_site(r)?,
        })
    }

    fn d_oname(r: &mut R) -> Result<ObjectName, String> {
        Ok(ObjectName {
            site: d_site(r)?,
            seq: r.varint()?,
        })
    }

    fn d_noderef(r: &mut R) -> Result<NodeRef, String> {
        Ok(NodeRef {
            site: d_site(r)?,
            object: d_oname(r)?,
        })
    }

    fn d_scalar(r: &mut R) -> Result<ScalarValue, String> {
        match r.u8()? {
            0 => Ok(ScalarValue::Int(r.i64v()?)),
            1 => Ok(ScalarValue::Real(r.f64v()?)),
            2 => Ok(ScalarValue::Str(r.string()?)),
            t => Err(format!("unknown ScalarValue tag {t}")),
        }
    }

    fn d_blueprint(r: &mut R) -> Result<Blueprint, String> {
        match r.u8()? {
            0 => Ok(Blueprint::Int(r.i64v()?)),
            1 => Ok(Blueprint::Real(r.f64v()?)),
            2 => Ok(Blueprint::Str(r.string()?)),
            3 => {
                let n = r.count()?;
                let mut children = Vec::with_capacity(n);
                for _ in 0..n {
                    children.push(d_blueprint(r)?);
                }
                Ok(Blueprint::List(children))
            }
            4 => {
                let n = r.count()?;
                let mut children = Vec::with_capacity(n);
                for _ in 0..n {
                    children.push((r.string()?, d_blueprint(r)?));
                }
                Ok(Blueprint::Tuple(children))
            }
            t => Err(format!("unknown Blueprint tag {t}")),
        }
    }

    fn d_path(r: &mut R) -> Result<Path, String> {
        let n = r.count()?;
        let mut elems = Vec::with_capacity(n);
        for _ in 0..n {
            elems.push(match r.u8()? {
                0 => PathElem::Index {
                    index: r.varint_usize()?,
                    tag: d_vt(r)?,
                },
                1 => PathElem::Key(r.string()?),
                t => return Err(format!("unknown PathElem tag {t}")),
            });
        }
        Ok(Path(elems))
    }

    fn d_addr(r: &mut R) -> Result<ObjectAddr, String> {
        match r.u8()? {
            0 => Ok(ObjectAddr::Direct(d_oname(r)?)),
            1 => Ok(ObjectAddr::Indirect {
                root: d_oname(r)?,
                path: d_path(r)?,
            }),
            t => Err(format!("unknown ObjectAddr tag {t}")),
        }
    }

    fn d_assoc(r: &mut R) -> Result<AssocSnapshot, String> {
        let n = r.count()?;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let id = RelationId(r.varint()?);
            let m = r.count()?;
            let mut members = Vec::with_capacity(m);
            for _ in 0..m {
                members.push(d_noderef(r)?);
            }
            rows.push((id, members, r.string()?));
        }
        Ok(AssocSnapshot::from_wire_parts(rows))
    }

    fn d_tree(r: &mut R) -> Result<TreeSnapshot, String> {
        match r.u8()? {
            0 => Ok(TreeSnapshot::Scalar(d_scalar(r)?)),
            1 => {
                let n = r.count()?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push((d_vt(r)?, d_tree(r)?));
                }
                Ok(TreeSnapshot::List(entries))
            }
            2 => {
                let n = r.count()?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push((r.string()?, d_tree(r)?));
                }
                Ok(TreeSnapshot::Tuple(entries))
            }
            3 => Ok(TreeSnapshot::Assoc(d_assoc(r)?)),
            t => Err(format!("unknown TreeSnapshot tag {t}")),
        }
    }

    fn d_wireop(r: &mut R) -> Result<WireOp, String> {
        match r.u8()? {
            0 => Ok(WireOp::SetScalar(d_scalar(r)?)),
            1 => Ok(WireOp::ListInsert {
                index: r.varint_usize()?,
                child: d_blueprint(r)?,
            }),
            2 => Ok(WireOp::ListRemove { tag: d_vt(r)? }),
            3 => Ok(WireOp::TuplePut {
                key: r.string()?,
                child: d_blueprint(r)?,
            }),
            4 => Ok(WireOp::TupleRemove { key: r.string()? }),
            5 => Ok(WireOp::SetAssoc(d_assoc(r)?)),
            6 => Ok(WireOp::SetTree(d_tree(r)?)),
            t => Err(format!("unknown WireOp tag {t}")),
        }
    }

    fn d_update(r: &mut R) -> Result<UpdateItem, String> {
        Ok(UpdateItem {
            addr: d_addr(r)?,
            t_r: d_vt(r)?,
            t_g: d_vt(r)?,
            op: d_wireop(r)?,
            needs_check: r.boolv()?,
        })
    }

    fn d_read(r: &mut R) -> Result<ReadItem, String> {
        Ok(ReadItem {
            addr: d_addr(r)?,
            t_r: d_vt(r)?,
            t_g: d_vt(r)?,
            hi: r.opt(d_vt)?,
        })
    }

    fn d_vts(r: &mut R) -> Result<Vec<VirtualTime>, String> {
        let n = r.count()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(d_vt(r)?);
        }
        Ok(out)
    }

    fn d_sites(r: &mut R) -> Result<Vec<SiteId>, String> {
        let n = r.count()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(d_site(r)?);
        }
        Ok(out)
    }

    fn d_graph(r: &mut R) -> Result<ReplicationGraph, String> {
        let n = r.count()?;
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            nodes.push(d_noderef(r)?);
        }
        let m = r.count()?;
        let mut edges = Vec::with_capacity(m);
        for _ in 0..m {
            edges.push((d_noderef(r)?, d_noderef(r)?, RelationId(r.varint()?)));
        }
        Ok(ReplicationGraph::from_parts(nodes, edges))
    }

    fn d_outcome(r: &mut R) -> Result<TxnOutcome, String> {
        match r.u8()? {
            0 => Ok(TxnOutcome::Committed),
            1 => Ok(TxnOutcome::Aborted),
            t => Err(format!("unknown TxnOutcome tag {t}")),
        }
    }

    fn d_subject_kind(r: &mut R) -> Result<SubjectKind, String> {
        match r.u8()? {
            0 => Ok(SubjectKind::Txn),
            1 => Ok(SubjectKind::Snapshot),
            t => Err(format!("unknown SubjectKind tag {t}")),
        }
    }

    fn d_propagate(r: &mut R) -> Result<TxnPropagate, String> {
        let txn = d_vt(r)?;
        let origin = d_site(r)?;
        let n = r.count()?;
        let mut updates = Vec::with_capacity(n);
        for _ in 0..n {
            updates.push(d_update(r)?);
        }
        let m = r.count()?;
        let mut reads = Vec::with_capacity(m);
        for _ in 0..m {
            reads.push(d_read(r)?);
        }
        let delegate = r.opt(|r| {
            Ok(Delegate {
                notify: d_sites(r)?,
            })
        })?;
        Ok(TxnPropagate {
            txn,
            origin,
            updates,
            reads,
            delegate,
        })
    }

    fn d_message(r: &mut R) -> Result<Message, String> {
        match r.u8()? {
            1 => Ok(Message::Txn(d_propagate(r)?)),
            2 => {
                let subject = d_vt(r)?;
                let origin = d_site(r)?;
                let n = r.count()?;
                let mut reads = Vec::with_capacity(n);
                for _ in 0..n {
                    reads.push(d_read(r)?);
                }
                Ok(Message::SnapshotConfirm {
                    subject,
                    origin,
                    reads,
                })
            }
            3 => Ok(Message::Confirm {
                subject: d_vt(r)?,
                kind: d_subject_kind(r)?,
            }),
            4 => Ok(Message::Deny {
                subject: d_vt(r)?,
                kind: d_subject_kind(r)?,
            }),
            5 => Ok(Message::Commit { txn: d_vt(r)? }),
            6 => Ok(Message::Abort { txn: d_vt(r)? }),
            7 => Ok(Message::JoinRequest {
                txn: d_vt(r)?,
                origin: d_site(r)?,
                relation: RelationId(r.varint()?),
                a_node: d_noderef(r)?,
                a_graph: d_graph(r)?,
                b_object: d_oname(r)?,
                assoc_object: r.opt(d_oname)?,
            }),
            8 => Ok(Message::JoinReply {
                txn: d_vt(r)?,
                ok: r.boolv()?,
                b_node: d_noderef(r)?,
                merged: d_graph(r)?,
                b_value: r.opt(d_tree)?,
                b_value_vt: d_vt(r)?,
                b_value_committed: r.boolv()?,
                confirms_expected: r.varint_u32()?,
                extra_affected: d_sites(r)?,
            }),
            9 => Ok(Message::GraphUpdate {
                txn: d_vt(r)?,
                origin: d_site(r)?,
                target: d_oname(r)?,
                graph: d_graph(r)?,
                t_g: d_vt(r)?,
                needs_check: r.boolv()?,
                adopt_value: r.opt(d_tree)?,
                adopt_value_vt: d_vt(r)?,
            }),
            10 => Ok(Message::OutcomeQuery {
                txn: d_vt(r)?,
                asker: d_site(r)?,
            }),
            11 => Ok(Message::OutcomeReport {
                txn: d_vt(r)?,
                outcome: r.opt(d_outcome)?,
            }),
            12 => Ok(Message::OutcomeDecision {
                txn: d_vt(r)?,
                outcome: d_outcome(r)?,
            }),
            13 => Ok(Message::GraphPropose {
                ballot: r.varint()?,
                coordinator: d_site(r)?,
                target: d_oname(r)?,
                coord_target: d_oname(r)?,
                graph: d_graph(r)?,
                at: d_vt(r)?,
            }),
            14 => Ok(Message::GraphAck {
                ballot: r.varint()?,
                coord_target: d_oname(r)?,
            }),
            15 => Ok(Message::Heartbeat),
            16 => Ok(Message::GraphApply {
                ballot: r.varint()?,
                target: d_oname(r)?,
                graph: d_graph(r)?,
                at: d_vt(r)?,
            }),
            17 => Ok(Message::RejoinRequest {
                frontier: d_vt(r)?,
                have: d_vts(r)?,
                serve: r.boolv()?,
            }),
            18 => Ok(Message::RejoinAck {
                frontier: d_vt(r)?,
                have: d_vts(r)?,
            }),
            19 => {
                let n = r.count()?;
                let mut commits = Vec::with_capacity(n);
                for _ in 0..n {
                    commits.push(d_propagate(r)?);
                }
                Ok(Message::CatchUp {
                    commits,
                    rejoined: r.boolv()?,
                })
            }
            t => Err(format!("unknown Message tag {t}")),
        }
    }

    fn d_envelope(r: &mut R) -> Result<Envelope, String> {
        let from = d_site(r)?;
        let to = d_site(r)?;
        let clock = d_vt(r)?;
        let msg = d_message(r)?;
        // Bytes past the message are the optional trailing span section;
        // pre-span encoders never produce them.
        let span = if r.i < r.b.len() {
            Some(SpanCtx {
                origin: d_site(r)?,
                seq: r.varint()?,
                hop: r.varint_u32()?,
            })
        } else {
            None
        };
        Ok(Envelope {
            from,
            to,
            clock,
            msg,
            span,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decaf_core::Message;
    use decaf_vt::VirtualTime;

    fn vt(lamport: u64, site: u32) -> VirtualTime {
        VirtualTime {
            lamport,
            site: SiteId(site),
        }
    }

    fn commit_env() -> Envelope {
        Envelope {
            from: SiteId(3),
            to: SiteId(1),
            clock: vt(42, 3),
            msg: Message::Commit { txn: vt(41, 3) },
            span: None,
        }
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip_via_reader() {
        let bytes = encode_frame(FrameKind::Data, b"hello world");
        let mut r = FrameReader::new();
        r.feed(&bytes);
        let f = r.next_frame().unwrap().unwrap();
        assert_eq!(f.kind, FrameKind::Data);
        assert_eq!(f.payload, b"hello world");
        assert!(r.next_frame().unwrap().is_none());
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn reader_handles_fragmentation_and_back_to_back_frames() {
        let mut stream = encode_frame(FrameKind::Ping, b"");
        stream.extend_from_slice(&encode_frame(FrameKind::Data, b"x"));
        let mut r = FrameReader::new();
        for chunk in stream.chunks(3) {
            r.feed(chunk);
        }
        assert_eq!(r.next_frame().unwrap().unwrap().kind, FrameKind::Ping);
        let f = r.next_frame().unwrap().unwrap();
        assert_eq!((f.kind, f.payload.as_slice()), (FrameKind::Data, &b"x"[..]));
    }

    #[test]
    fn reader_survives_one_byte_chunks_of_a_large_frame() {
        // Regression test for the quadratic-feed fix: a large frame arriving
        // one byte at a time must cost O(n) total, and the payload must come
        // out intact. 256 KiB in 1-byte feeds is visibly instant with the
        // rolling offset and takes minutes with drain-per-frame semantics.
        let payload: Vec<u8> = (0..256 * 1024).map(|i| (i % 251) as u8).collect();
        let bytes = encode_frame(FrameKind::Data, &payload);
        let mut r = FrameReader::new();
        for b in &bytes {
            r.feed(std::slice::from_ref(b));
        }
        let f = r.next_frame().unwrap().unwrap();
        assert_eq!(f.kind, FrameKind::Data);
        assert_eq!(f.payload, payload);
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn reader_reclaims_consumed_prefix() {
        // After many popped frames, the consumed prefix must be reclaimed
        // rather than growing without bound.
        let frame = encode_frame(FrameKind::Data, &[0u8; 8 * 1024]);
        let mut r = FrameReader::new();
        for _ in 0..64 {
            r.feed(&frame);
            assert!(r.next_frame_view().unwrap().is_some());
        }
        assert_eq!(r.buffered(), 0);
        assert!(
            r.buf.len() <= 2 * COMPACT_THRESHOLD,
            "reassembly buffer grew to {} bytes",
            r.buf.len()
        );
    }

    #[test]
    fn frame_view_decodes_in_place() {
        let env = commit_env();
        let bytes = encode_frame(FrameKind::DataV2, &encode_envelope_v2(&env));
        let mut r = FrameReader::new();
        r.feed(&bytes);
        let view = r.next_frame_view().unwrap().unwrap();
        assert_eq!(view.kind, FrameKind::DataV2);
        // Decode straight from the borrowed reassembly buffer: no payload copy.
        assert_eq!(decode_envelope_v2(view.payload).unwrap(), env);
    }

    #[test]
    fn bad_magic_poisons() {
        let mut bytes = encode_frame(FrameKind::Data, b"p");
        bytes[0] = b'X';
        let mut r = FrameReader::new();
        r.feed(&bytes);
        assert!(matches!(r.next_frame(), Err(WireError::BadMagic(_))));
        // Poisoned: same error again, new bytes ignored.
        r.feed(&encode_frame(FrameKind::Ping, b""));
        assert!(matches!(r.next_frame(), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn version_kind_length_crc_rejections() {
        let good = encode_frame(FrameKind::Data, b"payload");

        let mut v = good.clone();
        v[4] = 99;
        let mut r = FrameReader::new();
        r.feed(&v);
        assert!(matches!(
            r.next_frame(),
            Err(WireError::UnsupportedVersion(99))
        ));

        let mut k = good.clone();
        k[5] = 0;
        let mut r = FrameReader::new();
        r.feed(&k);
        assert!(matches!(r.next_frame(), Err(WireError::UnknownKind(0))));

        let mut o = good.clone();
        o[6..10].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        let mut r = FrameReader::new();
        r.feed(&o);
        assert!(matches!(r.next_frame(), Err(WireError::Oversized(_))));

        let mut c = good;
        let last = c.len() - 1;
        c[last] ^= 0xFF;
        let mut r = FrameReader::new();
        r.feed(&c);
        assert!(matches!(r.next_frame(), Err(WireError::BadCrc { .. })));
    }

    #[test]
    fn v2_frame_kinds_carry_version_two() {
        for kind in [FrameKind::DataV2, FrameKind::Batch] {
            let bytes = encode_frame(kind, b"x");
            assert_eq!(bytes[4], PROTOCOL_VERSION_V2);
            let mut r = FrameReader::new();
            r.feed(&bytes);
            assert_eq!(r.next_frame().unwrap().unwrap().kind, kind);
        }
        for kind in [FrameKind::Hello, FrameKind::Data, FrameKind::Ping] {
            assert_eq!(encode_frame(kind, b"")[4], PROTOCOL_VERSION);
        }
    }

    #[test]
    fn blocking_read_write_roundtrip() {
        let mut buf = Vec::new();
        let n = write_frame(&mut buf, FrameKind::Hello, &encode_hello(SiteId(7))).unwrap();
        assert_eq!(n, buf.len());
        let mut cursor = io::Cursor::new(buf);
        let f = read_frame(&mut cursor).unwrap();
        assert_eq!(f.kind, FrameKind::Hello);
        assert_eq!(decode_hello(&f.payload).unwrap(), SiteId(7));
    }

    #[test]
    fn blocking_read_rejects_truncation_and_corruption() {
        let bytes = encode_frame(FrameKind::Data, b"abcdef");
        // Truncated mid-payload.
        let mut cursor = io::Cursor::new(bytes[..bytes.len() - 2].to_vec());
        assert_eq!(
            read_frame(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Flipped payload byte.
        let mut corrupt = bytes;
        let last = corrupt.len() - 1;
        corrupt[last] ^= 1;
        let mut cursor = io::Cursor::new(corrupt);
        assert_eq!(
            read_frame(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn hello_payload_size_checked() {
        assert!(decode_hello(&[1, 2, 3]).is_err());
        assert_eq!(decode_hello(&encode_hello(SiteId(42))).unwrap(), SiteId(42));
    }

    #[test]
    fn hello_negotiation_forms() {
        // Classic 4-byte Hello implies codec 1.
        assert_eq!(
            decode_hello_any(&encode_hello(SiteId(9))).unwrap(),
            (SiteId(9), 1)
        );
        // Long Hello carries the advertised codec.
        assert_eq!(
            decode_hello_any(&encode_hello_v2(SiteId(9), 2)).unwrap(),
            (SiteId(9), 2)
        );
        // Strict v1 decoding still rejects the long form (old peers would).
        assert!(decode_hello(&encode_hello_v2(SiteId(9), 2)).is_err());
        // Nonsense lengths and codec 0 are rejected.
        assert!(decode_hello_any(&[1, 2, 3]).is_err());
        assert!(decode_hello_any(&encode_hello_v2(SiteId(9), 0)).is_err());
    }

    #[test]
    fn json_envelope_matches_historic_serde_bytes() {
        // The pinned byte string serde_json produced for this envelope in
        // earlier releases (also pinned in tests/wire_codec.rs): the
        // hand-rolled encoder must never drift from it.
        let env = commit_env();
        let bytes = encode_envelope(&env).unwrap();
        assert_eq!(
            String::from_utf8(bytes.clone()).unwrap(),
            r#"{"from":3,"to":1,"clock":{"lamport":42,"site":3},"msg":{"Commit":{"txn":{"lamport":41,"site":3}}}}"#
        );
        assert_eq!(decode_envelope(&bytes).unwrap(), env);
    }

    #[test]
    fn json_decoder_tolerates_field_order_whitespace_and_unknown_fields() {
        let reordered = br#" { "msg" : "Heartbeat" , "future_field" : [ 1 , { "x" : null } ] ,
            "clock" : { "site" : 3 , "lamport" : 42 } , "to" : 1 , "from" : 3 } "#;
        let env = decode_envelope(reordered).unwrap();
        assert_eq!(env.from, SiteId(3));
        assert_eq!(env.to, SiteId(1));
        assert_eq!(env.clock, vt(42, 3));
        assert_eq!(env.msg, Message::Heartbeat);
    }

    #[test]
    fn json_decoder_rejects_malformed_input() {
        for bad in [
            &b"{"[..],
            &b"[]"[..],
            &br#"{"from":3}"#[..],
            &br#"{"from":3,"to":1,"clock":{"lamport":42,"site":3},"msg":"Nope"}"#[..],
            &br#"{"from":3,"to":1,"clock":{"lamport":42,"site":3},"msg":"Heartbeat"}x"#[..],
        ] {
            assert!(decode_envelope(bad).is_err(), "accepted {:?}", bad);
        }
    }

    #[test]
    fn v2_envelope_roundtrip_and_compactness() {
        let env = commit_env();
        let v2 = encode_envelope_v2(&env);
        assert_eq!(decode_envelope_v2(&v2).unwrap(), env);
        let v1 = encode_envelope(&env).unwrap();
        assert!(
            v2.len() * 4 < v1.len(),
            "v2 ({} bytes) should be far smaller than v1 JSON ({} bytes)",
            v2.len(),
            v1.len()
        );
    }

    #[test]
    fn v2_rejects_trailing_and_truncated_input() {
        let mut bytes = encode_envelope_v2(&commit_env());
        bytes.push(0);
        assert!(
            decode_envelope_v2(&bytes).is_err(),
            "trailing byte accepted"
        );
        bytes.pop();
        bytes.pop();
        assert!(decode_envelope_v2(&bytes).is_err(), "truncation accepted");
        assert!(decode_envelope_v2(&[99]).is_err(), "unknown tag accepted");
    }

    #[test]
    fn batch_roundtrip() {
        let envs: Vec<Envelope> = (0..5)
            .map(|i| Envelope {
                from: SiteId(i),
                to: SiteId(i + 1),
                clock: vt(u64::from(i) * 10, i),
                msg: Message::Heartbeat,
                // A spanned envelope on every other entry exercises the
                // per-entry trailing-span detection in batch decoding.
                span: (i % 2 == 0).then_some(decaf_core::SpanCtx {
                    origin: SiteId(i),
                    seq: u64::from(i) * 10,
                    hop: 0,
                }),
            })
            .collect();
        let payload = encode_batch(&envs);
        assert_eq!(decode_batch(&payload).unwrap(), envs);
        // Empty batches are legal (a flush can race the queue drain).
        assert_eq!(decode_batch(&encode_batch(&[])).unwrap(), Vec::new());
        // Corrupt count and mismatched length prefixes are rejected.
        assert!(decode_batch(&[0xFF, 0xFF, 0xFF, 0xFF, 0x0F]).is_err());
        // Truncation is caught by the last entry's length prefix. (A
        // flipped final *value* byte is no longer guaranteed to fail now
        // that envelopes end in the trailing span section — a mutated hop
        // varint is still a structurally valid hop.)
        let mut bad = encode_batch(&envs);
        bad.pop();
        assert!(decode_batch(&bad).is_err());
    }

    #[test]
    fn wire_error_display_covers_variants() {
        for e in [
            WireError::BadMagic(*b"XXXX"),
            WireError::UnsupportedVersion(9),
            WireError::UnknownKind(0),
            WireError::Oversized(u32::MAX),
            WireError::BadCrc {
                expected: 1,
                found: 2,
            },
            WireError::Codec("boom".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
