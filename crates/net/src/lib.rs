//! Network substrates for DECAF replicas.
//!
//! The DECAF site engine ([`decaf-core`](https://docs.rs/decaf-core)) is
//! *sans-I/O*: a site is a deterministic state machine that consumes
//! messages and produces messages. This crate provides the three substrates
//! that carry those messages:
//!
//! * [`sim`] — a deterministic discrete-event simulator with configurable
//!   per-link latency, optional jitter, timers (for workload injection),
//!   and ISIS-style fail-stop failure notification. All of the paper's
//!   experiments run on this substrate, because it makes the analytic
//!   latency claims (commit in `2t`/`3t`, §5.1) directly measurable.
//! * [`threaded`] — a real multi-threaded transport (std threads +
//!   crossbeam channels) with injected delays, used by integration tests
//!   and examples to exercise the same engine under true parallelism.
//! * [`tcp`] — a real TCP mesh (std sockets + threads): one process per
//!   site, length-prefixed CRC-checked frames ([`wire`]), heartbeats, and
//!   reconnect with exponential backoff. Persistent peer loss is surfaced
//!   as the §3.4 fail-stop notification, the way the paper's prototype ran
//!   one JVM per user on a real LAN/WAN (§5.2).
//!
//! The three substrates are unified by the [`Transport`] /
//! [`TransportEndpoint`] traits, so tests and examples can drive the same
//! site loop over any of them.
//!
//! # Example
//!
//! ```
//! use decaf_net::sim::{Event, LatencyModel, SimNet, SimTime};
//! use decaf_vt::SiteId;
//!
//! let mut net: SimNet<&'static str> =
//!     SimNet::new(LatencyModel::uniform(SimTime::from_millis(10)));
//! net.send(SiteId(1), SiteId(2), "hello");
//! match net.step() {
//!     Some(Event::Deliver { from, to, msg, .. }) => {
//!         assert_eq!((from, to, msg), (SiteId(1), SiteId(2), "hello"));
//!         assert_eq!(net.now(), SimTime::from_millis(10));
//!     }
//!     _ => unreachable!(),
//! }
//! ```
//!
//! Substrate-generic driving via the trait:
//!
//! ```
//! use decaf_net::{Transport, TransportEndpoint, TransportEvent};
//! use decaf_net::threaded::ThreadedNet;
//! use decaf_vt::SiteId;
//! use std::time::Duration;
//!
//! fn relay<T: Transport>(net: &T, from: SiteId, to: SiteId, msg: T::Msg)
//! where
//!     T::Msg: Clone,
//! {
//!     net.endpoint(from).send(to, msg);
//! }
//!
//! let mut net: ThreadedNet<u8> = ThreadedNet::new(2, Duration::from_millis(1));
//! relay(&net, SiteId(0), SiteId(1), 7u8);
//! match net.endpoint(SiteId(1)).recv().unwrap() {
//!     TransportEvent::Message { from, msg } => assert_eq!((from, msg), (SiteId(0), 7)),
//!     other => panic!("unexpected {other:?}"),
//! }
//! net.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

use decaf_vt::SiteId;

pub mod sim;
pub mod tcp;
pub mod threaded;
pub mod wire;

/// An event surfaced by a [`TransportEndpoint`].
///
/// This is the substrate-independent vocabulary between a network and the
/// sans-I/O engine: either a protocol message arrived, or the communication
/// layer's failure detector has declared a peer fail-stopped — the ISIS
/// model the paper assumes ("the underlying communication infrastructure
/// provides notification of such failures ... as fail-stop failures",
/// §3.4). A `SiteFailed` event is normally handed to
/// [`Site::notify_site_failed`](decaf_core::Site::notify_site_failed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportEvent<M> {
    /// A payload arrived from `from`.
    Message {
        /// The sending site.
        from: SiteId,
        /// The payload.
        msg: M,
    },
    /// The transport has determined that `failed` has fail-stopped.
    SiteFailed {
        /// The site declared failed.
        failed: SiteId,
    },
}

impl<M> TransportEvent<M> {
    /// The message payload, if this is a `Message` event.
    pub fn into_message(self) -> Option<(SiteId, M)> {
        match self {
            TransportEvent::Message { from, msg } => Some((from, msg)),
            TransportEvent::SiteFailed { .. } => None,
        }
    }
}

/// One site's handle onto a network substrate.
///
/// Endpoints are the per-site I/O surface: a site loop repeatedly drains
/// its engine's outbox into [`send`](TransportEndpoint::send) and feeds
/// received [`TransportEvent`]s back into the engine. All methods take
/// `&self` so an endpoint can be cloned/shared into a site's thread.
pub trait TransportEndpoint {
    /// The payload type carried by this transport.
    type Msg;

    /// The site this endpoint belongs to.
    fn site(&self) -> SiteId;

    /// Sends `msg` to `to`. Delivery is asynchronous and may silently fail
    /// (fail-stop peers, bounded queues); the protocol's own
    /// acknowledgements, not the transport, provide reliability semantics.
    fn send(&self, to: SiteId, msg: Self::Msg);

    /// Non-blocking receive.
    fn try_recv(&self) -> Option<TransportEvent<Self::Msg>>;

    /// Receive, waiting up to `timeout`. Virtual-time substrates (the
    /// simulator) treat any timeout as "advance until something happens or
    /// the network quiesces".
    fn recv_timeout(&self, timeout: Duration) -> Option<TransportEvent<Self::Msg>>;
}

/// A network substrate hosting DECAF sites.
///
/// Implemented by all three in-tree substrates:
///
/// * [`sim::SimTransport`] — deterministic virtual-time simulation;
/// * [`threaded::ThreadedNet`] — in-process threads + channels;
/// * [`tcp::TcpMesh`] — real sockets, one process per site (a mesh hosts
///   exactly *one* site; [`endpoint`](Transport::endpoint) must be called
///   with that site's id).
///
/// The trait covers the lifecycle that substrate-generic tests and
/// examples need — obtaining per-site endpoints and tearing the network
/// down. Substrate-specific controls (failure injection, timers, latency
/// shaping, counters) stay on the concrete types.
pub trait Transport {
    /// The payload type carried by this transport.
    type Msg;
    /// The per-site handle type.
    type Endpoint: TransportEndpoint<Msg = Self::Msg>;

    /// The endpoint for `site`.
    ///
    /// # Panics
    ///
    /// May panic if `site` is not hosted by this transport instance (out of
    /// range for [`threaded::ThreadedNet`], not the local site for
    /// [`tcp::TcpMesh`]).
    fn endpoint(&self, site: SiteId) -> Self::Endpoint;

    /// Flushes what can be flushed and releases the substrate's resources
    /// (threads, sockets). Idempotent.
    fn shutdown(&mut self);
}
