//! Network substrates for DECAF replicas.
//!
//! The DECAF site engine ([`decaf-core`](https://docs.rs/decaf-core)) is
//! *sans-I/O*: a site is a deterministic state machine that consumes
//! messages and produces messages. This crate provides the two substrates
//! that carry those messages:
//!
//! * [`sim`] — a deterministic discrete-event simulator with configurable
//!   per-link latency, optional jitter, timers (for workload injection),
//!   and ISIS-style fail-stop failure notification. All of the paper's
//!   experiments run on this substrate, because it makes the analytic
//!   latency claims (commit in `2t`/`3t`, §5.1) directly measurable.
//! * [`threaded`] — a real multi-threaded transport (std threads +
//!   crossbeam channels) with injected delays, used by integration tests
//!   and examples to exercise the same engine under true parallelism.
//!
//! The paper evaluated a Java prototype "under a range of artificially
//! induced network delays" (§5.2.2); the simulator reproduces exactly that
//! methodology, deterministically.
//!
//! # Example
//!
//! ```
//! use decaf_net::sim::{Event, LatencyModel, SimNet, SimTime};
//! use decaf_vt::SiteId;
//!
//! let mut net: SimNet<&'static str> =
//!     SimNet::new(LatencyModel::uniform(SimTime::from_millis(10)));
//! net.send(SiteId(1), SiteId(2), "hello");
//! match net.step() {
//!     Some(Event::Deliver { from, to, msg, .. }) => {
//!         assert_eq!((from, to, msg), (SiteId(1), SiteId(2), "hello"));
//!         assert_eq!(net.now(), SimTime::from_millis(10));
//!     }
//!     _ => unreachable!(),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sim;
pub mod threaded;
