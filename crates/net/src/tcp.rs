//! Real TCP mesh transport: one OS process per site, std sockets, threads.
//!
//! This is the substrate that takes the sans-I/O engine across actual
//! process boundaries, the way the paper's prototype ran one JVM per user
//! over a real LAN/WAN (§5.2). A [`TcpMesh`] hosts exactly **one** site and
//! maintains links to every configured peer:
//!
//! * **Framing** — every message travels as a [`crate::wire`] frame
//!   (magic, version, length, CRC); malformed input drops the connection
//!   instead of panicking.
//! * **Connection direction** — each site *dials* every peer and uses its
//!   own outgoing connection exclusively for writes; accepted connections
//!   are read-only (the dialer identifies itself with a `Hello` frame).
//!   With both directions dialing, `A → B` traffic always flows on the
//!   connection `A` initiated, which preserves per-link FIFO — the ordering
//!   assumption the engine's straggler handling relies on.
//! * **Liveness** — per-peer writer threads send heartbeat `Ping` frames
//!   when idle; readers track the last time each peer was heard from.
//! * **Failure mapping** — a broken or silent link triggers reconnection
//!   with exponential backoff and jitter. When reconnection is exhausted
//!   (or a never-seen peer misses its connect deadline), the peer is
//!   declared fail-stopped and a single [`TransportEvent::SiteFailed`] is
//!   delivered locally — the ISIS-style notification the paper assumes the
//!   communication layer provides (§3.4). The site loop hands it to
//!   [`Site::notify_site_failed`](decaf_core::Site::notify_site_failed).
//! * **Counters** — byte/frame/reconnect/heartbeat accounting is exposed
//!   as [`decaf_core::TransportStats`] via [`TcpMesh::stats`].
//!
//! The payload type is fixed to [`decaf_core::Envelope`]: a wire format
//! needs one concrete schema, and the protocol version in the frame header
//! covers it.
//!
//! # Example
//!
//! Two meshes over loopback (in one process here; normally one per
//! process — see the `decaf-site` daemon and `examples/tcp_mesh.rs`):
//!
//! ```no_run
//! use decaf_net::tcp::{TcpConfig, TcpMesh};
//! use decaf_vt::SiteId;
//!
//! let a_cfg = TcpConfig::new(SiteId(1), "127.0.0.1:7101".parse().unwrap())
//!     .peer(SiteId(2), "127.0.0.1:7102".parse().unwrap());
//! let mesh = TcpMesh::start(a_cfg).expect("bind");
//! println!("site 1 listening on {}", mesh.local_addr());
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use decaf_core::{Envelope, TransportStats};
use decaf_trace::{Histogram, TraceKind, TraceSink};
use decaf_vt::SiteId;

use crate::wire::{
    decode_batch, decode_envelope, decode_envelope_v2, decode_hello_any, encode_batch_parts,
    encode_envelope, encode_envelope_v2, encode_hello, encode_hello_v2, write_frame, FrameKind,
    FrameReader, HEADER_LEN,
};
use crate::{Transport, TransportEndpoint, TransportEvent};

/// Configuration of one site's TCP mesh endpoint.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// This site's id (must be unique across the mesh).
    pub site: SiteId,
    /// Address to listen on. Port `0` picks an ephemeral port; read it
    /// back with [`TcpMesh::local_addr`].
    pub listen: SocketAddr,
    /// Peer address table: every other site in the mesh.
    pub peers: BTreeMap<SiteId, SocketAddr>,
    /// Idle interval after which a heartbeat `Ping` is sent (default
    /// 200 ms).
    pub heartbeat_interval: Duration,
    /// Silence from a previously heard peer after which the link is torn
    /// down and re-dialed (default 3 s).
    pub heartbeat_timeout: Duration,
    /// First reconnect backoff step (default 50 ms); doubles per attempt.
    pub reconnect_base: Duration,
    /// Backoff ceiling (default 1 s).
    pub reconnect_cap: Duration,
    /// Consecutive failed reconnect attempts to a previously connected
    /// peer before it is declared fail-stopped (default 6).
    pub max_reconnect_attempts: u32,
    /// Grace period for a peer that has *never* been reached — start-up
    /// races are not failures (default 20 s).
    pub connect_deadline: Duration,
    /// Bound of each per-peer outbound queue; overflow drops the message
    /// and counts `sends_dropped` (default 4096).
    pub outbound_queue: usize,
    /// Seed for backoff jitter (default: derived from the site id).
    pub jitter_seed: u64,
    /// Highest envelope codec this site speaks (default 2). Each link uses
    /// `min(ours, theirs)` as negotiated via the Hello exchange; set to 1
    /// to emit only classic v1 JSON frames (and the classic 4-byte Hello)
    /// for strict interop with pre-v2 peers.
    pub codec_version: u8,
    /// Most envelopes coalesced into one `Batch` frame (default 64). Takes
    /// effect only on links negotiated to codec ≥ 2; `1` disables
    /// batching.
    pub batch_max: usize,
    /// How long a writer lingers draining its queue for ride-along
    /// envelopes after the first one of a flush (default 200 µs) — a
    /// Nagle-style delay with a microsecond budget, bounding the latency
    /// cost of coalescing.
    pub batch_delay: Duration,
    /// Trace sink for frame-level events (send/recv, heartbeats,
    /// reconnects, fail-stop declarations) and outbound queue depth. The
    /// default disabled sink makes every emit point one branch.
    pub trace: TraceSink,
}

impl TcpConfig {
    /// A config with the documented defaults and an empty peer table.
    pub fn new(site: SiteId, listen: SocketAddr) -> Self {
        TcpConfig {
            site,
            listen,
            peers: BTreeMap::new(),
            heartbeat_interval: Duration::from_millis(200),
            heartbeat_timeout: Duration::from_secs(3),
            reconnect_base: Duration::from_millis(50),
            reconnect_cap: Duration::from_secs(1),
            max_reconnect_attempts: 6,
            connect_deadline: Duration::from_secs(20),
            outbound_queue: 4096,
            jitter_seed: 0xDECAF ^ site.0 as u64,
            codec_version: 2,
            batch_max: 64,
            batch_delay: Duration::from_micros(200),
            trace: TraceSink::disabled(),
        }
    }

    /// Adds a peer to the address table (builder style).
    pub fn peer(mut self, site: SiteId, addr: SocketAddr) -> Self {
        self.peers.insert(site, addr);
        self
    }

    /// Caps the envelope codec version (builder style); `1` forces classic
    /// v1 JSON frames on every link.
    pub fn codec(mut self, version: u8) -> Self {
        self.codec_version = version;
        self
    }

    /// Tunes envelope batching (builder style): at most `max` envelopes per
    /// `Batch` frame, lingering up to `delay` for ride-alongs. `max = 1`
    /// disables batching.
    pub fn batching(mut self, max: usize, delay: Duration) -> Self {
        self.batch_max = max.max(1);
        self.batch_delay = delay;
        self
    }

    /// Installs a trace sink (builder style).
    pub fn trace(mut self, sink: TraceSink) -> Self {
        self.trace = sink;
        self
    }
}

/// Atomic counter block shared by all mesh threads; snapshots into
/// [`TransportStats`].
#[derive(Default)]
struct Counters {
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    frames_rejected: AtomicU64,
    reconnects: AtomicU64,
    heartbeats_sent: AtomicU64,
    heartbeat_misses: AtomicU64,
    peers_failed: AtomicU64,
    sends_dropped: AtomicU64,
    queue_depth_hwm: AtomicU64,
    frames_coalesced: AtomicU64,
    bytes_saved: AtomicU64,
    codec_v2_frames: AtomicU64,
}

impl Counters {
    // `TransportStats` is `#[non_exhaustive]` upstream, so struct-literal
    // construction is impossible here; default-then-assign is the API.
    #[allow(clippy::field_reassign_with_default)]
    fn snapshot(&self) -> TransportStats {
        let mut s = TransportStats::default();
        s.bytes_in = self.bytes_in.load(Ordering::Relaxed);
        s.bytes_out = self.bytes_out.load(Ordering::Relaxed);
        s.frames_in = self.frames_in.load(Ordering::Relaxed);
        s.frames_out = self.frames_out.load(Ordering::Relaxed);
        s.frames_rejected = self.frames_rejected.load(Ordering::Relaxed);
        s.reconnects = self.reconnects.load(Ordering::Relaxed);
        s.heartbeats_sent = self.heartbeats_sent.load(Ordering::Relaxed);
        s.heartbeat_misses = self.heartbeat_misses.load(Ordering::Relaxed);
        s.peers_failed = self.peers_failed.load(Ordering::Relaxed);
        s.sends_dropped = self.sends_dropped.load(Ordering::Relaxed);
        s.queue_depth_hwm = self.queue_depth_hwm.load(Ordering::Relaxed);
        s.frames_coalesced = self.frames_coalesced.load(Ordering::Relaxed);
        s.bytes_saved = self.bytes_saved.load(Ordering::Relaxed);
        s.codec_v2_frames = self.codec_v2_frames.load(Ordering::Relaxed);
        s
    }
}

fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

fn add(c: &AtomicU64, n: u64) {
    c.fetch_add(n, Ordering::Relaxed);
}

/// Sender half of a bounded outbound queue.
///
/// Implemented as an unbounded channel plus an atomic depth counter with
/// drop-on-overflow semantics: a full queue rejects the message instead of
/// blocking the engine loop behind a slow peer (the counter shows up as
/// `sends_dropped`).
struct BoundedTx {
    tx: Sender<Envelope>,
    depth: Arc<AtomicU64>,
    cap: u64,
}

impl BoundedTx {
    /// Enqueues unless the queue is full or closed; reports success.
    fn try_send(&self, env: Envelope) -> bool {
        if self.depth.load(Ordering::Relaxed) >= self.cap {
            return false;
        }
        if self.tx.send(env).is_ok() {
            self.depth.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Current queue depth (racy, monitoring only).
    fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }
}

/// Receiver half of a bounded outbound queue (see [`BoundedTx`]).
struct BoundedRx {
    rx: Receiver<Envelope>,
    depth: Arc<AtomicU64>,
}

impl BoundedRx {
    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, RecvTimeoutError> {
        let got = self.rx.recv_timeout(timeout);
        if got.is_ok() {
            self.depth.fetch_sub(1, Ordering::Relaxed);
        }
        got
    }

    /// Non-blocking pop, for draining ride-along envelopes into a batch.
    fn try_recv(&self) -> Option<Envelope> {
        let got = self.rx.try_recv().ok();
        if got.is_some() {
            self.depth.fetch_sub(1, Ordering::Relaxed);
        }
        got
    }
}

fn bounded_outbox(cap: usize) -> (BoundedTx, BoundedRx) {
    let (tx, rx) = unbounded::<Envelope>();
    let depth = Arc::new(AtomicU64::new(0));
    (
        BoundedTx {
            tx,
            depth: Arc::clone(&depth),
            cap: cap as u64,
        },
        BoundedRx { rx, depth },
    )
}

/// Per-peer link state shared between the writer thread, the readers, and
/// the endpoint.
struct PeerShared {
    /// Last instant any frame from this peer was read.
    last_seen: Mutex<Instant>,
    /// Whether an outbound connection has ever been established.
    ever_connected: AtomicBool,
    /// One-shot fail-stop latch.
    failed: AtomicBool,
    /// Highest envelope codec the peer advertised in its Hello (1 until
    /// heard from; a classic 4-byte Hello also means 1). The writer thread
    /// consults this each flush, so a link upgrades to v2 mid-stream as
    /// soon as the peer's Hello arrives — safe because every frame names
    /// its own codec.
    peer_codec: AtomicU8,
}

impl PeerShared {
    fn new() -> Self {
        PeerShared {
            last_seen: Mutex::new(Instant::now()),
            ever_connected: AtomicBool::new(false),
            failed: AtomicBool::new(false),
            peer_codec: AtomicU8::new(1),
        }
    }
}

/// One site's handle onto a [`TcpMesh`] (cloneable; give it to the site
/// loop).
pub struct TcpEndpoint {
    site: SiteId,
    inbox: Receiver<TransportEvent<Envelope>>,
    loopback: Sender<TransportEvent<Envelope>>,
    outboxes: Arc<BTreeMap<SiteId, BoundedTx>>,
    peers: Arc<BTreeMap<SiteId, Arc<PeerShared>>>,
    counters: Arc<Counters>,
    trace: TraceSink,
}

impl fmt::Debug for TcpEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpEndpoint")
            .field("site", &self.site)
            .finish()
    }
}

impl Clone for TcpEndpoint {
    fn clone(&self) -> Self {
        TcpEndpoint {
            site: self.site,
            inbox: self.inbox.clone(),
            loopback: self.loopback.clone(),
            outboxes: Arc::clone(&self.outboxes),
            peers: Arc::clone(&self.peers),
            counters: Arc::clone(&self.counters),
            trace: self.trace.clone(),
        }
    }
}

impl TcpEndpoint {
    /// Blocks until an event arrives.
    ///
    /// # Errors
    ///
    /// Returns `Err` once the mesh has shut down and the inbox drained.
    pub fn recv(&self) -> Result<TransportEvent<Envelope>, crossbeam_channel::RecvError> {
        self.inbox.recv()
    }
}

impl TransportEndpoint for TcpEndpoint {
    type Msg = Envelope;

    fn site(&self) -> SiteId {
        self.site
    }

    fn send(&self, to: SiteId, msg: Envelope) {
        if to == self.site {
            // Local delivery needs no socket.
            let _ = self.loopback.send(TransportEvent::Message {
                from: self.site,
                msg,
            });
            return;
        }
        let (Some(tx), Some(shared)) = (self.outboxes.get(&to), self.peers.get(&to)) else {
            bump(&self.counters.sends_dropped);
            return;
        };
        if shared.failed.load(Ordering::Relaxed) || !tx.try_send(msg) {
            bump(&self.counters.sends_dropped);
        } else {
            let depth = tx.depth();
            self.counters
                .queue_depth_hwm
                .fetch_max(depth, Ordering::Relaxed);
            self.trace.record_queue_depth(depth);
        }
    }

    fn try_recv(&self) -> Option<TransportEvent<Envelope>> {
        self.inbox.try_recv().ok()
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<TransportEvent<Envelope>> {
        self.inbox.recv_timeout(timeout).ok()
    }
}

/// A running TCP mesh node: listener + per-peer link threads for one site.
///
/// See the [module docs](crate::tcp) for the protocol; see
/// [`TcpConfig`] for tuning.
pub struct TcpMesh {
    site: SiteId,
    local_addr: SocketAddr,
    endpoint: TcpEndpoint,
    counters: Arc<Counters>,
    batch_sizes: Arc<Mutex<Histogram>>,
    trace: TraceSink,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl fmt::Debug for TcpMesh {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpMesh")
            .field("site", &self.site)
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

impl TcpMesh {
    /// Binds the listener and spawns the mesh threads.
    ///
    /// # Errors
    ///
    /// Fails if the listen address cannot be bound.
    pub fn start(config: TcpConfig) -> std::io::Result<TcpMesh> {
        let listener = TcpListener::bind(config.listen)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let counters = Arc::new(Counters::default());
        let batch_sizes = Arc::new(Mutex::new(Histogram::new()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let (events_tx, events_rx) = unbounded::<TransportEvent<Envelope>>();

        let mut outboxes = BTreeMap::new();
        let mut peers = BTreeMap::new();
        for &peer in config.peers.keys() {
            let (tx, rx) = bounded_outbox(config.outbound_queue);
            outboxes.insert(peer, tx);
            peers.insert(peer, (rx, Arc::new(PeerShared::new())));
        }
        let peer_shared: Arc<BTreeMap<SiteId, Arc<PeerShared>>> = Arc::new(
            peers
                .iter()
                .map(|(&id, (_, shared))| (id, Arc::clone(shared)))
                .collect(),
        );
        let outboxes = Arc::new(outboxes);

        let mut threads = Vec::new();

        // Accept thread: read-only inbound connections.
        {
            let events = events_tx.clone();
            let shared = Arc::clone(&peer_shared);
            let counters = Arc::clone(&counters);
            let stop = Arc::clone(&shutdown);
            let trace = config.trace.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("decaf-tcp-accept-{}", config.site.0))
                    .spawn(move || accept_loop(listener, events, shared, counters, trace, stop))
                    .expect("spawn accept thread"),
            );
        }

        // Per-peer writer threads: dial, frame, heartbeat, reconnect.
        for (peer, (rx, shared)) in peers {
            let cfg = config.clone();
            let events = events_tx.clone();
            let counters = Arc::clone(&counters);
            let sizes = Arc::clone(&batch_sizes);
            let stop = Arc::clone(&shutdown);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("decaf-tcp-link-{}-{}", config.site.0, peer.0))
                    .spawn(move || {
                        writer_loop(cfg, peer, rx, shared, events, counters, sizes, stop)
                    })
                    .expect("spawn link thread"),
            );
        }

        let endpoint = TcpEndpoint {
            site: config.site,
            inbox: events_rx,
            loopback: events_tx,
            outboxes,
            peers: peer_shared,
            counters: Arc::clone(&counters),
            trace: config.trace.clone(),
        };
        Ok(TcpMesh {
            site: config.site,
            local_addr,
            endpoint,
            counters,
            batch_sizes,
            trace: config.trace,
            shutdown,
            threads,
        })
    }

    /// This mesh node's site id.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// The actually bound listen address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the transport counters. Trace-sink loss is folded in
    /// so end-of-run reports expose it alongside the frame counters.
    pub fn stats(&self) -> TransportStats {
        let mut s = self.counters.snapshot();
        s.trace_events_dropped = self.trace.dropped();
        s
    }

    /// The mesh's trace sink (disabled unless one was installed via
    /// [`TcpConfig::trace`]).
    pub fn trace_sink(&self) -> &TraceSink {
        &self.trace
    }

    /// A snapshot of the batch-size distribution: how many envelopes each
    /// flushed data frame carried (log2 buckets; use
    /// [`Histogram::quantile`]/[`Histogram::summary`] on the result).
    /// Unbatched links record `1` per frame.
    pub fn batch_histogram(&self) -> Histogram {
        self.batch_sizes.lock().clone()
    }

    /// The endpoint for this mesh's (single) site.
    pub fn endpoint(&self) -> TcpEndpoint {
        self.endpoint.clone()
    }

    /// Stops every mesh thread and closes the sockets. Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

impl Transport for TcpMesh {
    type Msg = Envelope;
    type Endpoint = TcpEndpoint;

    /// The endpoint for `site`.
    ///
    /// # Panics
    ///
    /// A mesh hosts exactly one site; panics if `site` is not it.
    fn endpoint(&self, site: SiteId) -> TcpEndpoint {
        assert_eq!(
            site, self.site,
            "a TcpMesh hosts exactly one site ({}); asked for {site}",
            self.site
        );
        self.endpoint.clone()
    }

    fn shutdown(&mut self) {
        TcpMesh::shutdown(self)
    }
}

impl Drop for TcpMesh {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accepts inbound connections and spawns a reader per connection.
/// Readers are detached: they exit on EOF, error, or the shutdown flag.
fn accept_loop(
    listener: TcpListener,
    events: Sender<TransportEvent<Envelope>>,
    peers: Arc<BTreeMap<SiteId, Arc<PeerShared>>>,
    counters: Arc<Counters>,
    trace: TraceSink,
    shutdown: Arc<AtomicBool>,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let events = events.clone();
                let peers = Arc::clone(&peers);
                let counters = Arc::clone(&counters);
                let trace = trace.clone();
                let stop = Arc::clone(&shutdown);
                let _ = std::thread::Builder::new()
                    .name("decaf-tcp-reader".into())
                    .spawn(move || reader_loop(stream, events, peers, counters, trace, stop));
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Reads frames off one accepted connection. The first frame must be a
/// `Hello` identifying the dialing peer; afterwards `Data` frames become
/// inbox messages and `Ping`s only refresh liveness.
fn reader_loop(
    stream: TcpStream,
    events: Sender<TransportEvent<Envelope>>,
    peers: Arc<BTreeMap<SiteId, Arc<PeerShared>>>,
    counters: Arc<Counters>,
    trace: TraceSink,
    shutdown: Arc<AtomicBool>,
) {
    let mut stream = stream;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(300)));
    let mut reader = FrameReader::new();
    let mut peer: Option<SiteId> = None;
    let mut buf = [0u8; 64 * 1024];
    let touch = |site: SiteId| {
        if let Some(shared) = peers.get(&site) {
            *shared.last_seen.lock() = Instant::now();
        }
    };
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Drain complete frames before reading more bytes.
        loop {
            match reader.next_frame() {
                Ok(Some(frame)) => {
                    bump(&counters.frames_in);
                    // Transport-level receive trace: `peer` is the dialing
                    // site, `n` the frame payload size in bytes.
                    if let Some(from) = peer.or_else(|| {
                        matches!(frame.kind, FrameKind::Hello)
                            .then(|| decode_hello_any(&frame.payload).ok())
                            .flatten()
                            .map(|(site, _)| site)
                    }) {
                        trace.emit(
                            TraceKind::MsgRecv,
                            None,
                            Some(from.0),
                            Some(frame.payload.len() as u64),
                        );
                    }
                    match frame.kind {
                        FrameKind::Hello => match decode_hello_any(&frame.payload) {
                            Ok((site, codec)) => {
                                peer = Some(site);
                                touch(site);
                                // The Hello names the dialer's highest codec;
                                // our writer to that peer reads it per flush
                                // and upgrades the link mid-stream.
                                if let Some(shared) = peers.get(&site) {
                                    shared.peer_codec.store(codec, Ordering::Relaxed);
                                }
                            }
                            Err(_) => {
                                bump(&counters.frames_rejected);
                                return;
                            }
                        },
                        FrameKind::Data | FrameKind::DataV2 => {
                            let Some(from) = peer else {
                                // Data before Hello: protocol violation.
                                bump(&counters.frames_rejected);
                                return;
                            };
                            touch(from);
                            let decoded = if matches!(frame.kind, FrameKind::Data) {
                                decode_envelope(&frame.payload)
                            } else {
                                decode_envelope_v2(&frame.payload)
                            };
                            match decoded {
                                Ok(env) => {
                                    emit_env_recv(&trace, &env);
                                    let _ = events.send(TransportEvent::Message { from, msg: env });
                                }
                                // Framing is intact, only this payload is
                                // bad: count it and keep the connection.
                                Err(_) => bump(&counters.frames_rejected),
                            }
                        }
                        FrameKind::Batch => {
                            let Some(from) = peer else {
                                bump(&counters.frames_rejected);
                                return;
                            };
                            touch(from);
                            match decode_batch(&frame.payload) {
                                Ok(envs) => {
                                    for env in envs {
                                        emit_env_recv(&trace, &env);
                                        let _ =
                                            events.send(TransportEvent::Message { from, msg: env });
                                    }
                                }
                                Err(_) => bump(&counters.frames_rejected),
                            }
                        }
                        FrameKind::Ping => {
                            if let Some(from) = peer {
                                touch(from);
                            }
                        }
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // Unrecoverable framing error: there is no
                    // resynchronization point in a TCP byte stream.
                    bump(&counters.frames_rejected);
                    return;
                }
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => return, // EOF
            Ok(n) => {
                add(&counters.bytes_in, n as u64);
                reader.feed(&buf[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

/// Declares `peer` fail-stopped exactly once.
fn declare_failed(
    peer: SiteId,
    shared: &PeerShared,
    events: &Sender<TransportEvent<Envelope>>,
    counters: &Counters,
    trace: &TraceSink,
) {
    if !shared.failed.swap(true, Ordering::SeqCst) {
        bump(&counters.peers_failed);
        trace.emit(TraceKind::SiteFailed, None, Some(peer.0), None);
        let _ = events.send(TransportEvent::SiteFailed { failed: peer });
    }
}

/// Sleeps in small slices so shutdown stays responsive.
fn interruptible_sleep(total: Duration, shutdown: &AtomicBool) {
    let slice = Duration::from_millis(25);
    let deadline = Instant::now() + total;
    while Instant::now() < deadline && !shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(slice.min(deadline.saturating_duration_since(Instant::now())));
    }
}

/// Writes the buffered envelopes out — one `DataV2` (single) or `Batch`
/// (several) frame when the link speaks codec 2, one classic JSON `Data`
/// frame per envelope otherwise. Written envelopes leave `batch`; on an
/// I/O error the unwritten tail stays put (for the reconnect carry-over)
/// and `false` is returned.
/// Per-envelope causal send trace: one `MsgSend` carrying the envelope's
/// span context and subject VT, emitted alongside the frame-level event
/// (whose `n` is the wire byte count). Span-less envelopes (heartbeats,
/// graph acks) stay frame-level only — the stitcher pairs by span key, so
/// an event without one could never be matched anyway.
fn emit_env_send(trace: &TraceSink, peer: SiteId, env: &Envelope) {
    if let Some(s) = &env.span {
        trace.emit_span(
            TraceKind::MsgSend,
            Some((s.seq, s.origin.0)),
            Some(peer.0),
            None,
            Some(s.as_trace()),
        );
    }
}

/// Receive-side twin of [`emit_env_send`], keyed by the same span so the
/// stitcher can pair the two across site clocks.
fn emit_env_recv(trace: &TraceSink, env: &Envelope) {
    if let Some(s) = &env.span {
        trace.emit_span(
            TraceKind::MsgRecv,
            Some((s.seq, s.origin.0)),
            Some(env.from.0),
            None,
            Some(s.as_trace()),
        );
    }
}

fn flush_envelopes(
    stream: &mut TcpStream,
    batch: &mut Vec<Envelope>,
    use_v2: bool,
    peer: SiteId,
    counters: &Counters,
    trace: &TraceSink,
    batch_sizes: &Mutex<Histogram>,
) -> bool {
    if batch.is_empty() {
        return true;
    }
    if use_v2 {
        let parts: Vec<Vec<u8>> = batch.iter().map(encode_envelope_v2).collect();
        let unbatched: usize = parts.iter().map(|p| HEADER_LEN + p.len()).sum();
        let n_envs = parts.len();
        let (kind, payload) = if n_envs == 1 {
            (
                FrameKind::DataV2,
                parts.into_iter().next().expect("one part"),
            )
        } else {
            (FrameKind::Batch, encode_batch_parts(&parts))
        };
        match write_frame(stream, kind, &payload) {
            Ok(n) => {
                bump(&counters.frames_out);
                bump(&counters.codec_v2_frames);
                if n_envs > 1 {
                    add(&counters.frames_coalesced, (n_envs - 1) as u64);
                    // Headers elided minus the batch's own length prefixes.
                    add(&counters.bytes_saved, unbatched.saturating_sub(n) as u64);
                }
                add(&counters.bytes_out, n as u64);
                trace.emit(TraceKind::MsgSend, None, Some(peer.0), Some(n as u64));
                for env in batch.iter() {
                    emit_env_send(trace, peer, env);
                }
                batch_sizes.lock().record(n_envs as u64);
                batch.clear();
                true
            }
            Err(_) => false,
        }
    } else {
        while !batch.is_empty() {
            let payload = match encode_envelope(&batch[0]) {
                Ok(p) => p,
                // An unencodable envelope can never succeed: count it out.
                Err(_) => {
                    bump(&counters.sends_dropped);
                    batch.remove(0);
                    continue;
                }
            };
            match write_frame(stream, FrameKind::Data, &payload) {
                Ok(n) => {
                    bump(&counters.frames_out);
                    add(&counters.bytes_out, n as u64);
                    trace.emit(TraceKind::MsgSend, None, Some(peer.0), Some(n as u64));
                    emit_env_send(trace, peer, &batch[0]);
                    batch_sizes.lock().record(1);
                    batch.remove(0);
                }
                Err(_) => return false,
            }
        }
        true
    }
}

/// The per-peer link thread: dials the peer, writes `Hello` + data +
/// heartbeat `Ping` frames, and reconnects with exponential backoff and
/// jitter. Exhausted reconnection (or a missed initial-connect deadline)
/// declares the peer fail-stopped.
#[allow(clippy::too_many_arguments)] // one thread entry point, never composed
fn writer_loop(
    cfg: TcpConfig,
    peer: SiteId,
    outbox: BoundedRx,
    shared: Arc<PeerShared>,
    events: Sender<TransportEvent<Envelope>>,
    counters: Arc<Counters>,
    batch_sizes: Arc<Mutex<Histogram>>,
    shutdown: Arc<AtomicBool>,
) {
    let addr = cfg.peers[&peer];
    let mut rng = SmallRng::seed_from_u64(cfg.jitter_seed ^ (peer.0 as u64).wrapping_mul(0x9E37));
    let born = Instant::now();
    let mut had_conn = false;
    // Envelopes popped from the outbox whose socket write failed. The
    // engine has no retransmission of its own — once the endpoint accepts
    // a send, the mesh owns delivery — so they are carried across the
    // reconnect instead of being dropped with the broken connection.
    let mut pending: Vec<Envelope> = Vec::new();
    'link: loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        // --- connect phase, with backoff + jitter ---
        let mut attempts: u32 = 0;
        let mut stream = loop {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            match TcpStream::connect_timeout(&addr, Duration::from_secs(1)) {
                Ok(s) => break s,
                Err(_) => {
                    attempts += 1;
                    let exhausted = if had_conn || shared.ever_connected.load(Ordering::Relaxed) {
                        attempts > cfg.max_reconnect_attempts
                    } else {
                        born.elapsed() > cfg.connect_deadline
                    };
                    if exhausted {
                        declare_failed(peer, &shared, &events, &counters, &cfg.trace);
                        return;
                    }
                    let exp = cfg
                        .reconnect_base
                        .saturating_mul(1u32 << attempts.saturating_sub(1).min(16))
                        .min(cfg.reconnect_cap);
                    // ±25% jitter so a rebooted mesh doesn't thunder.
                    let jitter: f64 = rng.gen_range(0.75..=1.25);
                    let wait = Duration::from_secs_f64(exp.as_secs_f64() * jitter);
                    interruptible_sleep(wait, &shutdown);
                }
            }
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        // A codec-1 site announces itself with the classic 4-byte Hello so
        // strict pre-v2 peers accept it; v2-capable sites use the 5-byte
        // form carrying their highest codec.
        let hello: Vec<u8> = if cfg.codec_version >= 2 {
            encode_hello_v2(cfg.site, cfg.codec_version).to_vec()
        } else {
            encode_hello(cfg.site).to_vec()
        };
        match write_frame(&mut stream, FrameKind::Hello, &hello) {
            Ok(n) => {
                bump(&counters.frames_out);
                add(&counters.bytes_out, n as u64);
                cfg.trace
                    .emit(TraceKind::MsgSend, None, Some(peer.0), Some(n as u64));
            }
            Err(_) => continue 'link,
        }
        if had_conn {
            bump(&counters.reconnects);
            cfg.trace
                .emit(TraceKind::Reconnect, None, Some(peer.0), None);
        }
        had_conn = true;
        shared.ever_connected.store(true, Ordering::Relaxed);
        let conn_start = Instant::now();

        // Flush envelopes the previous connection stranded, if any.
        {
            let use_v2 = cfg.codec_version >= 2 && shared.peer_codec.load(Ordering::Relaxed) >= 2;
            if !flush_envelopes(
                &mut stream,
                &mut pending,
                use_v2,
                peer,
                &counters,
                &cfg.trace,
                &batch_sizes,
            ) {
                continue 'link;
            }
        }

        // --- pump phase: outbox drains + heartbeats + silence watchdog ---
        loop {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            match outbox.recv_timeout(cfg.heartbeat_interval) {
                Ok(env) => {
                    pending.push(env);
                    let use_v2 =
                        cfg.codec_version >= 2 && shared.peer_codec.load(Ordering::Relaxed) >= 2;
                    if use_v2 && cfg.batch_max > 1 {
                        // Nagle-style linger: pick up ride-alongs already in
                        // (or just arriving on) the queue, bounded by count
                        // and a microsecond budget.
                        let deadline = Instant::now() + cfg.batch_delay;
                        while pending.len() < cfg.batch_max {
                            match outbox.try_recv() {
                                Some(more) => pending.push(more),
                                None if Instant::now() < deadline => std::thread::yield_now(),
                                None => break,
                            }
                        }
                    }
                    if !flush_envelopes(
                        &mut stream,
                        &mut pending,
                        use_v2,
                        peer,
                        &counters,
                        &cfg.trace,
                        &batch_sizes,
                    ) {
                        // Unwritten envelopes stay for the next connection.
                        continue 'link;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    // Watchdog: if the peer has been silent too long on the
                    // inbound side, tear the link down and re-dial; the
                    // reconnect policy then decides whether it is dead.
                    let heard = (*shared.last_seen.lock()).max(conn_start);
                    if heard.elapsed() > cfg.heartbeat_timeout {
                        bump(&counters.heartbeat_misses);
                        continue 'link;
                    }
                    match write_frame(&mut stream, FrameKind::Ping, &[]) {
                        Ok(n) => {
                            bump(&counters.heartbeats_sent);
                            bump(&counters.frames_out);
                            add(&counters.bytes_out, n as u64);
                            cfg.trace
                                .emit(TraceKind::MsgSend, None, Some(peer.0), Some(n as u64));
                        }
                        Err(_) => continue 'link,
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decaf_core::Message;
    use decaf_vt::VirtualTime;

    fn env(from: SiteId, to: SiteId) -> Envelope {
        Envelope {
            from,
            to,
            clock: VirtualTime::default(),
            msg: Message::Heartbeat,
            span: None,
        }
    }

    fn mesh_pair() -> (TcpMesh, TcpMesh) {
        // Bind both listeners first (port 0), then cross-wire the peer
        // tables by restarting with known addresses is impossible — so
        // bind explicit ephemeral listeners by starting A without peers,
        // reading its port, and giving it to B (and vice versa via a
        // second start). Instead: reserve ports by binding + dropping.
        let a_port = reserve_port();
        let b_port = reserve_port();
        let a_addr: SocketAddr = format!("127.0.0.1:{a_port}").parse().unwrap();
        let b_addr: SocketAddr = format!("127.0.0.1:{b_port}").parse().unwrap();
        let a = TcpMesh::start(TcpConfig::new(SiteId(1), a_addr).peer(SiteId(2), b_addr))
            .expect("bind a");
        let b = TcpMesh::start(TcpConfig::new(SiteId(2), b_addr).peer(SiteId(1), a_addr))
            .expect("bind b");
        (a, b)
    }

    fn reserve_port() -> u16 {
        TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap()
            .port()
    }

    #[test]
    fn two_meshes_exchange_envelopes() {
        let (mut a, mut b) = mesh_pair();
        let ea = a.endpoint();
        let eb = b.endpoint();
        ea.send(SiteId(2), env(SiteId(1), SiteId(2)));
        let got = eb
            .recv_timeout(Duration::from_secs(10))
            .and_then(TransportEvent::into_message)
            .expect("delivery");
        assert_eq!(got.0, SiteId(1));
        assert_eq!(got.1.from, SiteId(1));
        // Reply the other way.
        eb.send(SiteId(1), env(SiteId(2), SiteId(1)));
        let back = ea
            .recv_timeout(Duration::from_secs(10))
            .and_then(TransportEvent::into_message)
            .expect("reply");
        assert_eq!(back.0, SiteId(2));
        let stats = a.stats();
        assert!(stats.frames_out >= 2, "hello + data, got {stats}");
        assert!(stats.bytes_out > 0 && stats.bytes_in > 0);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn loopback_send_to_self() {
        let port = reserve_port();
        let addr: SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();
        let mut m = TcpMesh::start(TcpConfig::new(SiteId(7), addr)).unwrap();
        let ep = m.endpoint();
        ep.send(SiteId(7), env(SiteId(7), SiteId(7)));
        assert!(matches!(
            ep.try_recv(),
            Some(TransportEvent::Message {
                from: SiteId(7),
                ..
            })
        ));
        m.shutdown();
    }

    #[test]
    fn killed_peer_is_declared_failed() {
        let (mut a, mut b) = mesh_pair();
        let ea = a.endpoint();
        let eb = b.endpoint();
        // Make sure the link is live first.
        ea.send(SiteId(2), env(SiteId(1), SiteId(2)));
        eb.recv_timeout(Duration::from_secs(10)).expect("warm-up");
        // Kill B abruptly.
        b.shutdown();
        drop(b);
        // A keeps (re)trying; eventually declares SiteFailed(2). Writes
        // provoke the broken link.
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut failed = false;
        while Instant::now() < deadline {
            ea.send(SiteId(2), env(SiteId(1), SiteId(2)));
            if let Some(TransportEvent::SiteFailed { failed: f }) =
                ea.recv_timeout(Duration::from_millis(200))
            {
                assert_eq!(f, SiteId(2));
                failed = true;
                break;
            }
        }
        assert!(failed, "peer loss must map to SiteFailed: {}", a.stats());
        assert_eq!(a.stats().peers_failed, 1);
        // Sends to a failed peer are dropped, not queued forever.
        let before = a.stats().sends_dropped;
        ea.send(SiteId(2), env(SiteId(1), SiteId(2)));
        assert!(a.stats().sends_dropped > 0 || before > 0);
        a.shutdown();
    }

    #[test]
    fn endpoint_trait_panics_on_foreign_site() {
        let port = reserve_port();
        let addr: SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();
        let m = TcpMesh::start(TcpConfig::new(SiteId(1), addr)).unwrap();
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = Transport::endpoint(&m, SiteId(9));
        }));
        assert!(res.is_err());
    }
}
