//! This crate hosts the workspace-level runnable examples (`/examples`) and
//! cross-crate integration tests (`/tests`) of the DECAF reproduction; it
//! has no library API of its own. See the repository README for the map.
