//! `decaf-trace-summarize`: offline analyzer for DECAF trace dumps.
//!
//! Feeds every line of every JSONL file produced by `decaf-site
//! --trace-out` (or any other [`decaf_trace::TraceSink`] dump) through
//! [`decaf_trace::Replay`] and prints per-site protocol digests — commit
//! latency, view staleness, rollback rate, transport traffic — the §5
//! metrics of the paper, reconstructed after the fact.
//!
//! ```text
//! decaf-trace-summarize site1.jsonl site2.jsonl site3.jsonl
//! decaf-site ... --trace-out /dev/stdout | decaf-trace-summarize -
//! ```
//!
//! Exit codes: 0 ok, 1 a file failed to read or parse, 2 usage.

use std::io::Read;

use decaf_trace::Replay;

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() || paths.iter().any(|p| p == "--help" || p == "-h") {
        eprintln!("usage: decaf-trace-summarize <trace.jsonl>... (or '-' for stdin)");
        std::process::exit(2);
    }

    let mut replay = Replay::new();
    let mut failed = false;
    for path in &paths {
        let text = if path == "-" {
            let mut s = String::new();
            std::io::stdin().read_to_string(&mut s).map(|_| s)
        } else {
            std::fs::read_to_string(path)
        };
        let text = match text {
            Ok(t) => t,
            Err(e) => {
                eprintln!("decaf-trace-summarize: {path}: {e}");
                failed = true;
                continue;
            }
        };
        match replay.observe_jsonl(&text) {
            Ok(n) => println!("{path}: {n} events"),
            Err((line, e)) => {
                eprintln!("decaf-trace-summarize: {path}:{line}: {e}");
                failed = true;
            }
        }
    }

    println!(
        "\n{} events from {} site(s)",
        replay.events(),
        replay.sites().len()
    );
    for (site, digest) in replay.sites() {
        println!("site {site}:");
        println!("{digest}");
    }
    std::process::exit(if failed { 1 } else { 0 });
}
