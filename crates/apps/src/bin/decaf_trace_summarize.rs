//! `decaf-trace-summarize`: offline analyzer for DECAF trace dumps.
//!
//! Feeds every line of every JSONL file produced by `decaf-site
//! --trace-out` (or any other [`decaf_trace::TraceSink`] dump) through
//! [`decaf_trace::Replay`] and prints per-site protocol digests — commit
//! latency, view staleness, rollback rate, transport traffic — the §5
//! metrics of the paper, reconstructed after the fact.
//!
//! ```text
//! decaf-trace-summarize site1.jsonl site2.jsonl site3.jsonl
//! decaf-site ... --trace-out /dev/stdout | decaf-trace-summarize -
//! ```
//!
//! A bad line does not discard the rest of its file: every parseable
//! event is still folded into the digests, each failure is reported as
//! `file:line: error`, and the exit code is non-zero — so a truncated
//! dump yields a loud partial report instead of a silently half-empty one.
//!
//! Exit codes: 0 ok, 1 a file failed to read or parse, 2 usage.

use std::io::Read;

use decaf_trace::Replay;

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() || paths.iter().any(|p| p == "--help" || p == "-h") {
        eprintln!("usage: decaf-trace-summarize <trace.jsonl>... (or '-' for stdin)");
        std::process::exit(2);
    }

    let mut replay = Replay::new();
    let mut failed = false;
    for path in &paths {
        let text = if path == "-" {
            let mut s = String::new();
            std::io::stdin().read_to_string(&mut s).map(|_| s)
        } else {
            std::fs::read_to_string(path)
        };
        let text = match text {
            Ok(t) => t,
            Err(e) => {
                eprintln!("decaf-trace-summarize: {path}: {e}");
                failed = true;
                continue;
            }
        };
        let (n, bad) = replay.observe_jsonl_lossy(&text);
        if bad.is_empty() {
            println!("{path}: {n} events");
        } else {
            for (line, e) in &bad {
                eprintln!("decaf-trace-summarize: {path}:{line}: {e}");
            }
            eprintln!(
                "decaf-trace-summarize: {path}: {} bad line(s); {n} good events still folded",
                bad.len()
            );
            failed = true;
        }
    }

    println!(
        "\n{} events from {} site(s)",
        replay.events(),
        replay.sites().len()
    );
    for (site, digest) in replay.sites() {
        println!("site {site}:");
        println!("{digest}");
    }
    std::process::exit(if failed { 1 } else { 0 });
}
