//! `decaf-check`: the DECAF deterministic-simulation model checker CLI.
//!
//! Explores fault schedules (message delay/reorder, link partitions with
//! heal, fail-stop kills) against the invariant oracles of
//! [`decaf_check`], shrinks any failing schedule to a minimal fault plan,
//! and emits/replays counterexample artifacts.
//!
//! ```text
//! decaf-check --smoke --json                # bounded CI gate
//! decaf-check --seeds 2000 --faults all     # random sweep, kills included
//! decaf-check --sites 4 --depth 3           # + bounded exhaustive faults
//! decaf-check --mutate drop_pess_commit_notice --seeds 8 --shrink \
//!             --out bug.json                # seeded-bug self-test
//! decaf-check --replay bug.json             # re-run a frozen artifact
//! ```
//!
//! Exit codes: 0 clean (or artifact reproduced), 1 violations found (or
//! artifact failed to reproduce), 2 usage error.

use decaf_check::{
    exhaustive, mutation_from_name, smoke, sweep, CheckOptions, Counterexample, FaultClasses,
    ScenarioConfig,
};

struct Cli {
    smoke: bool,
    json: bool,
    shrink: bool,
    seeds: u64,
    seed_start: u64,
    depth: u32,
    faults: FaultClasses,
    config: ScenarioConfig,
    mutation: Option<String>,
    replay: Option<String>,
    out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: decaf-check [options]\n\
         \n\
         exploration:\n\
         \x20 --seeds N        random schedules to sweep (default 256)\n\
         \x20 --seed-start N   first seed (default 1)\n\
         \x20 --depth N        also enumerate all fault sequences of length N (0 = off)\n\
         \x20 --faults KIND    partitions | kills | crashes | all | none (default partitions)\n\
         \x20 --shrink         delta-debug failing plans to minimal schedules\n\
         \n\
         scenario:\n\
         \x20 --sites N        collaborating sites (default 3)\n\
         \x20 --objects N      shared counters (default 2)\n\
         \x20 --txns N         gestures per site (default 4)\n\
         \x20 --jitter F       latency jitter fraction in [0,1) (default 0.4)\n\
         \x20 --retries N      engine retry budget (default 64)\n\
         \n\
         modes:\n\
         \x20 --smoke          bounded CI gate: 512 random + 128 crash-restart\n\
         \x20                  + 125 exhaustive schedules\n\
         \x20 --mutate NAME    inject a seeded engine bug (drop_pess_commit_notice |\n\
         \x20                  skip_rollback_renotify) — the checker must catch it\n\
         \x20 --replay FILE    re-run a counterexample artifact, verify it reproduces\n\
         \x20 --out FILE       write the first counterexample artifact as JSON\n\
         \x20 --json           machine-readable output"
    );
    std::process::exit(2)
}

fn parse() -> Cli {
    let mut cli = Cli {
        smoke: false,
        json: false,
        shrink: false,
        seeds: 256,
        seed_start: 1,
        depth: 0,
        faults: FaultClasses::partitions_only(),
        config: ScenarioConfig::default(),
        mutation: None,
        replay: None,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("decaf-check: {name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--smoke" => cli.smoke = true,
            "--json" => cli.json = true,
            "--shrink" => cli.shrink = true,
            "--seeds" => cli.seeds = parse_num(&value("--seeds")),
            "--seed-start" => cli.seed_start = parse_num(&value("--seed-start")),
            "--depth" => cli.depth = parse_num(&value("--depth")) as u32,
            "--sites" => cli.config.sites = parse_num(&value("--sites")) as u32,
            "--objects" => cli.config.objects = parse_num(&value("--objects")) as u32,
            "--txns" => cli.config.txns_per_site = parse_num(&value("--txns")) as u32,
            "--retries" => cli.config.retry_budget = parse_num(&value("--retries")) as u32,
            "--jitter" => cli.config.jitter = value("--jitter").parse().unwrap_or_else(|_| usage()),
            "--faults" => {
                cli.faults = match value("--faults").as_str() {
                    "partitions" => FaultClasses::partitions_only(),
                    "kills" => FaultClasses {
                        partitions: false,
                        kills: true,
                        crashes: false,
                    },
                    "crashes" => FaultClasses::crashes_only(),
                    "all" => FaultClasses::all(),
                    "none" => FaultClasses::none(),
                    other => {
                        eprintln!("decaf-check: unknown fault class {other:?}");
                        usage()
                    }
                }
            }
            "--mutate" => cli.mutation = Some(value("--mutate")),
            "--replay" => cli.replay = Some(value("--replay")),
            "--out" => cli.out = Some(value("--out")),
            "-h" | "--help" => usage(),
            other => {
                eprintln!("decaf-check: unknown option {other:?}");
                usage()
            }
        }
    }
    cli
}

fn parse_num(s: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("decaf-check: invalid number {s:?}");
        usage()
    })
}

fn main() {
    let cli = parse();

    if let Some(path) = &cli.replay {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("decaf-check: {path}: {e}");
            std::process::exit(2);
        });
        let artifact = Counterexample::from_json(&text).unwrap_or_else(|e| {
            eprintln!("decaf-check: {path}: bad artifact: {e}");
            std::process::exit(2);
        });
        let ok = artifact.reproduces();
        if cli.json {
            println!(
                "{{\"reproduced\": {ok}, \"violations\": {}, \"plan_actions\": {}}}",
                artifact.violations.len(),
                artifact.plan.actions.len()
            );
        } else {
            println!(
                "replay of {path}: {} violation(s), plan of {} action(s), reproduced: {ok}",
                artifact.violations.len(),
                artifact.plan.actions.len()
            );
            for v in &artifact.violations {
                println!("  {v}");
            }
        }
        std::process::exit(if ok { 0 } else { 1 });
    }

    if cli.smoke {
        let report = smoke();
        if cli.json {
            println!(
                "{}",
                serde_json::to_string(&report).expect("smoke report serializes")
            );
        } else {
            println!(
                "smoke: {} schedules ({} random + {} exhaustive), {} gestures, \
                 {} committed, {} violation(s)",
                report.schedules,
                report.random_schedules,
                report.exhaustive_schedules,
                report.gestures,
                report.committed,
                report.violations
            );
        }
        std::process::exit(if report.ok { 0 } else { 1 });
    }

    let mutation = match &cli.mutation {
        Some(name) => match mutation_from_name(name) {
            Some(m) => Some(m),
            None => {
                eprintln!("decaf-check: unknown mutation {name:?}");
                usage()
            }
        },
        None => None,
    };
    let opts = CheckOptions {
        config: cli.config.clone(),
        classes: cli.faults,
        seeds: cli.seeds,
        seed_start: cli.seed_start,
        shrink: cli.shrink,
        stop_at_first: false,
        mutation,
    };
    let mut report = sweep(&opts);
    if cli.depth > 0 {
        report.merge(exhaustive(&cli.config, cli.depth, cli.seed_start));
    }

    if let (Some(path), Some(ce)) = (&cli.out, report.counterexamples.first()) {
        if let Err(e) = std::fs::write(path, ce.to_json()) {
            eprintln!("decaf-check: {path}: {e}");
            std::process::exit(2);
        }
        if !cli.json {
            println!("wrote counterexample artifact to {path}");
        }
    }

    if cli.json {
        println!(
            "{}",
            serde_json::to_string(&report).expect("check report serializes")
        );
    } else {
        println!(
            "explored {} random + {} exhaustive schedule(s): {} gestures, {} committed, \
             {} violation(s)",
            report.random_schedules,
            report.exhaustive_schedules,
            report.gestures,
            report.committed,
            report.violations
        );
        for ce in &report.counterexamples {
            println!(
                "counterexample: seed {}, {} action(s) (shrunk from {}):",
                ce.seed,
                ce.plan.actions.len(),
                ce.shrunk_from
            );
            for v in &ce.violations {
                println!("  {v}");
            }
        }
    }
    std::process::exit(if report.violations == 0 { 0 } else { 1 });
}
