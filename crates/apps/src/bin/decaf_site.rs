//! `decaf-site`: one DECAF replica as a standalone OS process on the TCP
//! mesh — the deployment shape of the paper's prototype (one JVM per user,
//! §5.2), reproduced over [`decaf_net::tcp`].
//!
//! Every process hosts one [`Site`], one shared replicated integer counter
//! (pre-wired across the mesh from the peer table, exactly the state a
//! committed join would have produced), and a driver loop that pumps the
//! sans-I/O engine against the socket mesh.
//!
//! ```text
//! decaf-site --site 1 --listen 127.0.0.1:7101 \
//!            --peer 2=127.0.0.1:7102 --peer 3=127.0.0.1:7103 \
//!            --txns 5 [--on-fail-txns 2] [--linger-ms 1500]
//! ```
//!
//! Phases:
//!
//! 1. Submit `--txns` increment transactions, paced on the previous
//!    outcome, and wait until the committed counter reaches
//!    `txns × sites` (override: `--phase1-target`). Prints
//!    `phase1-done value=V`.
//! 2. If `--on-fail-txns K` is set: on a transport `SiteFailed`
//!    notification the failure is handed to the engine (§3.4 recovery),
//!    `site-failed S` is printed, K more increments are submitted, and the
//!    process waits for `phase1 + K × survivors` (override:
//!    `--final-target`). Prints `final value=V`.
//!
//! After finishing it keeps pumping for `--linger-ms` so slower peers can
//! still converge, then exits 0. Exit codes: 0 done, 1 timeout, 2 usage.
//!
//! Observability: `--trace-out PATH` enables structured tracing (engine and
//! transport share one sink), dumps the retained events as JSONL to `PATH`
//! on exit, and — together with `--summary-every-ms MS` — prints a periodic
//! one-line `trace-summary` histogram digest. Analyze the dump with
//! `decaf-trace-summarize`.
//!
//! Durability: `--data-dir DIR` makes the site crash-durable. On a fresh
//! directory it writes a baseline checkpoint to `DIR/wal.log` and then
//! appends (fsyncs) every committed transaction before its commit
//! broadcast leaves the process. On a directory holding an existing log
//! it *recovers*: newest checkpoint + committed suffix (any torn tail is
//! truncated to the longest valid record prefix), prints
//! `recovered wal-records=N value=V`, and runs the §3.4 rejoin/catch-up
//! protocol against its peers (`rejoin peers=N`). The end-of-run
//! `run-summary` gains WAL append counts and an fsync-latency histogram,
//! and the final `exit value=V` line reports the committed counter at
//! process exit — after lingering, so converged peers print identical
//! values.
//!
//! Live telemetry: `--metrics-listen ADDR` starts a zero-dependency HTTP
//! responder thread serving `GET /metrics` (Prometheus text exposition
//! 0.0.4: every engine/transport counter plus the live latency histograms
//! as cumulative buckets, all labelled `site="N"`) and `GET /healthz`
//! (200 `ok` when serving, 503 `rejoining` while the §3.4 rejoin/catch-up
//! protocol is still in flight after a recovery). Prints
//! `metrics listening on ADDR` once bound; scrape with
//! `curl http://ADDR/metrics`.
//!
//! Wire tuning: `--codec <1|2>` caps the link codec this site offers
//! (2 = compact binary + batching, the default; 1 = the v1 JSON format,
//! for interop with old peers — each link independently negotiates
//! `min(local, peer)` via the Hello exchange). `--batch-max N` and
//! `--batch-delay-us US` bound how many envelopes a writer may coalesce
//! into one Batch frame and how long it may linger collecting them;
//! `--batch-max 1` disables batching.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use decaf_core::{
    wiring, CommitLog, NodeRef, ObjectName, Site, SiteConfig, SiteStats, TraceKind, TraceSink,
    Transaction, TransportStats, TxnCtx, TxnError, TxnHandle,
};
use decaf_net::tcp::{TcpConfig, TcpMesh};
use decaf_net::{TransportEndpoint, TransportEvent};
use decaf_trace::{metrics::PromText, Histogram};
use decaf_vt::SiteId;

/// The daemon's workload: increment the shared counter by one.
struct Incr(ObjectName);

impl Transaction for Incr {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        let v = ctx.read_int(self.0)?;
        ctx.write_int(self.0, v + 1)
    }
}

/// Creates the shared counter and pre-wires its replica graph from the
/// shared peer table: replica i is the first object created at site i,
/// so every process derives the identical graph.
fn init_counter(site: &mut Site, obj: ObjectName, ids: &[u32]) {
    let created = site.create_int(0);
    assert_eq!(created, obj, "first object at each site is (site, seq 0)");
    if ids.len() >= 2 {
        let nodes: Vec<NodeRef> = ids
            .iter()
            .map(|&i| NodeRef::new(SiteId(i), ObjectName::new(SiteId(i), 0)))
            .collect();
        site.install_replica_graph(obj, wiring::replica_graph_over(&nodes));
    }
}

// ---------------------------------------------------------------------------
// Live telemetry: the `/metrics` + `/healthz` plane
// ---------------------------------------------------------------------------

/// Everything the scrape plane exposes, refreshed by the driver loop each
/// iteration. One mutex, copied wholesale: the structs are plain counters
/// and fixed-size histograms, so a refresh is a few hundred bytes.
#[derive(Default)]
struct Telemetry {
    engine: SiteStats,
    transport: TransportStats,
    committed: i64,
    rejoining: bool,
    recovered: bool,
    /// (commit latency ns, view staleness ns, queue depth) from the sink.
    commit_lat: Histogram,
    view_lat: Histogram,
    queue_depth: Histogram,
    fsync_us: Histogram,
    wal_appends: u64,
    wal_bytes: u64,
    durable: bool,
}

/// Renders the Prometheus text exposition from one telemetry snapshot.
/// Every sample carries a `site` label so fleet scrapes aggregate cleanly.
fn render_metrics(site: u32, t: &Telemetry) -> String {
    let site_label = site.to_string();
    let l: &[(&str, &str)] = &[("site", &site_label)];
    let mut p = PromText::new();
    let e = &t.engine;
    p.counter(
        "decaf_txns_started_total",
        "Transactions submitted at this site.",
        l,
        e.txns_started,
    );
    p.counter(
        "decaf_commits_total",
        "Transactions committed (originated here).",
        l,
        e.txns_committed,
    );
    p.counter(
        "decaf_txns_aborted_conflict_total",
        "Conflict aborts of local transactions.",
        l,
        e.txns_aborted_conflict,
    );
    p.counter(
        "decaf_txns_aborted_user_total",
        "Application aborts (no retry).",
        l,
        e.txns_aborted_user,
    );
    p.counter(
        "decaf_retries_total",
        "Automatic re-executions performed.",
        l,
        e.retries,
    );
    p.counter(
        "decaf_opt_notifications_total",
        "Update notifications to optimistic views.",
        l,
        e.opt_notifications,
    );
    p.counter(
        "decaf_opt_commits_total",
        "Commit notifications to optimistic views.",
        l,
        e.opt_commits,
    );
    p.counter(
        "decaf_pess_notifications_total",
        "Update notifications to pessimistic views.",
        l,
        e.pess_notifications,
    );
    p.counter(
        "decaf_lost_updates_total",
        "Lost updates on optimistic views (paper 5.1.2).",
        l,
        e.lost_updates,
    );
    p.counter(
        "decaf_update_inconsistencies_total",
        "Optimistic updates whose transaction later aborted.",
        l,
        e.update_inconsistencies,
    );
    p.counter(
        "decaf_read_inconsistencies_total",
        "Straggler-after-notification events on optimistic views.",
        l,
        e.read_inconsistencies,
    );
    p.counter(
        "decaf_msgs_sent_total",
        "Protocol messages sent.",
        l,
        e.msgs_sent,
    );
    p.counter(
        "decaf_msgs_received_total",
        "Protocol messages received.",
        l,
        e.msgs_received,
    );
    p.counter(
        "decaf_gc_discarded_total",
        "History entries discarded by GC.",
        l,
        e.gc_discarded,
    );
    p.counter(
        "decaf_snapshot_reruns_total",
        "Snapshot re-runs after denied or invalidated guesses.",
        l,
        e.snapshot_reruns,
    );
    p.counter(
        "decaf_trace_events_dropped_total",
        "Trace events lost to ring overflow or sink contention.",
        l,
        e.trace_events_dropped + t.transport.trace_events_dropped,
    );
    let n = &t.transport;
    p.counter(
        "decaf_transport_bytes_in_total",
        "Payload + header bytes received.",
        l,
        n.bytes_in,
    );
    p.counter(
        "decaf_transport_bytes_out_total",
        "Payload + header bytes sent.",
        l,
        n.bytes_out,
    );
    p.counter(
        "decaf_transport_frames_in_total",
        "Well-formed frames received.",
        l,
        n.frames_in,
    );
    p.counter(
        "decaf_transport_frames_out_total",
        "Frames sent.",
        l,
        n.frames_out,
    );
    p.counter(
        "decaf_transport_frames_rejected_total",
        "Malformed frames rejected.",
        l,
        n.frames_rejected,
    );
    p.counter(
        "decaf_transport_reconnects_total",
        "Successful reconnections after a broken link.",
        l,
        n.reconnects,
    );
    p.counter(
        "decaf_transport_heartbeats_sent_total",
        "Keepalive frames sent.",
        l,
        n.heartbeats_sent,
    );
    p.counter(
        "decaf_transport_heartbeat_misses_total",
        "Heartbeat-silence expiries observed.",
        l,
        n.heartbeat_misses,
    );
    p.counter(
        "decaf_transport_peers_failed_total",
        "Peers declared fail-stopped (paper 3.4).",
        l,
        n.peers_failed,
    );
    p.counter(
        "decaf_transport_sends_dropped_total",
        "Outbound messages dropped (queue full or peer failed).",
        l,
        n.sends_dropped,
    );
    p.counter(
        "decaf_transport_frames_coalesced_total",
        "Envelopes that rode along in a Batch frame.",
        l,
        n.frames_coalesced,
    );
    p.counter(
        "decaf_transport_bytes_saved_total",
        "Frame-header bytes saved by coalescing.",
        l,
        n.bytes_saved,
    );
    p.counter(
        "decaf_transport_codec_v2_frames_total",
        "Frames sent with the compact binary codec v2.",
        l,
        n.codec_v2_frames,
    );
    p.gauge(
        "decaf_transport_queue_depth_hwm",
        "High-water mark of any per-peer outbound queue.",
        l,
        n.queue_depth_hwm,
    );
    p.gauge(
        "decaf_committed_value",
        "Committed shared-counter value.",
        l,
        t.committed.max(0) as u64,
    );
    p.gauge(
        "decaf_rejoining",
        "1 while the 3.4 rejoin/catch-up protocol is in flight.",
        l,
        u64::from(t.rejoining),
    );
    p.gauge(
        "decaf_recovered",
        "1 if this process recovered from a WAL at startup.",
        l,
        u64::from(t.recovered),
    );
    p.histogram(
        "decaf_commit_latency_ns",
        "TxnBegin to Commit latency at the origin.",
        l,
        &t.commit_lat,
    );
    p.histogram(
        "decaf_view_staleness_ns",
        "ViewOptimistic to ViewCommitted staleness.",
        l,
        &t.view_lat,
    );
    p.histogram(
        "decaf_queue_depth",
        "Sampled transport queue depths.",
        l,
        &t.queue_depth,
    );
    if t.durable {
        p.counter(
            "decaf_wal_appends_total",
            "Commit records fsynced to the WAL.",
            l,
            t.wal_appends,
        );
        p.gauge(
            "decaf_wal_bytes",
            "Current WAL length in bytes.",
            l,
            t.wal_bytes,
        );
        p.histogram(
            "decaf_wal_fsync_us",
            "Per-append WAL fsync latency.",
            l,
            &t.fsync_us,
        );
    }
    p.finish()
}

/// One scrape connection: read the request head, answer `/metrics`,
/// `/healthz`, or 404, close. HTTP/1.0-style one-shot responses keep the
/// responder free of keep-alive state.
fn serve_scrape(mut conn: std::net::TcpStream, site: u32, shared: &Mutex<Telemetry>) {
    let _ = conn.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = conn.set_write_timeout(Some(Duration::from_secs(2)));
    let mut buf = [0u8; 4096];
    let mut head = Vec::new();
    // Read until the blank line ending the request head (or give up).
    loop {
        match conn.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let line = head.split(|&b| b == b'\r').next().unwrap_or(&[]);
    let line = String::from_utf8_lossy(line);
    let mut parts = line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let path = path.split('?').next().unwrap_or("");

    let (status, ctype, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => {
                let t = shared.lock().expect("telemetry lock");
                (
                    "200 OK",
                    decaf_trace::metrics::CONTENT_TYPE,
                    render_metrics(site, &t),
                )
            }
            "/healthz" => {
                let t = shared.lock().expect("telemetry lock");
                let body = format!(
                    "{}\nsite {site}\ncommitted {}\nrecovered {}\n",
                    if t.rejoining { "rejoining" } else { "ok" },
                    t.committed,
                    t.recovered,
                );
                // A rejoining site is alive but not yet caught up: 503 so
                // load balancers hold traffic until catch-up completes.
                let status = if t.rejoining {
                    "503 Service Unavailable"
                } else {
                    "200 OK"
                };
                (status, "text/plain; charset=utf-8", body)
            }
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found\n".to_string(),
            ),
        }
    };
    let _ = write!(
        conn,
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = conn.write_all(body.as_bytes());
    let _ = conn.shutdown(std::net::Shutdown::Both);
}

/// Binds the scrape listener and serves it from one detached thread; the
/// thread dies with the process. Returns the bound address.
fn start_metrics_plane(
    addr: SocketAddr,
    site: u32,
    shared: Arc<Mutex<Telemetry>>,
) -> std::io::Result<SocketAddr> {
    let listener = std::net::TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    std::thread::Builder::new()
        .name(format!("metrics-{site}"))
        .spawn(move || {
            for conn in listener.incoming() {
                match conn {
                    Ok(conn) => serve_scrape(conn, site, &shared),
                    Err(_) => continue,
                }
            }
        })
        .map(|_| bound)
}

#[derive(Debug)]
struct Args {
    site: u32,
    listen: SocketAddr,
    peers: BTreeMap<u32, SocketAddr>,
    txns: u64,
    on_fail_txns: u64,
    phase1_target: Option<i64>,
    final_target: Option<i64>,
    linger_ms: u64,
    max_runtime_ms: u64,
    trace_out: Option<PathBuf>,
    trace_buf: usize,
    summary_every_ms: u64,
    codec: u8,
    batch_max: usize,
    batch_delay_us: u64,
    data_dir: Option<PathBuf>,
    metrics_listen: Option<SocketAddr>,
}

fn usage() -> ! {
    eprintln!(
        "usage: decaf-site --site <id> --listen <addr> [--peer <id>=<addr>]... \\\n\
         \x20                [--txns N] [--on-fail-txns K] [--phase1-target V] \\\n\
         \x20                [--final-target V] [--linger-ms MS] [--max-runtime-ms MS] \\\n\
         \x20                [--trace-out PATH] [--trace-buf N] [--summary-every-ms MS] \\\n\
         \x20                [--codec 1|2] [--batch-max N] [--batch-delay-us US] \\\n\
         \x20                [--data-dir DIR] [--metrics-listen ADDR]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut site = None;
    let mut listen = None;
    let mut peers = BTreeMap::new();
    let mut txns = 0u64;
    let mut on_fail_txns = 0u64;
    let mut phase1_target = None;
    let mut final_target = None;
    let mut linger_ms = 1500u64;
    let mut max_runtime_ms = 120_000u64;
    let mut trace_out = None;
    let mut trace_buf = 65_536usize;
    let mut summary_every_ms = 0u64;
    let mut codec = 2u8;
    let mut batch_max = 64usize;
    let mut batch_delay_us = 200u64;
    let mut data_dir = None;
    let mut metrics_listen = None;

    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--site" => site = value().parse().ok(),
            "--listen" => listen = value().parse().ok(),
            "--peer" => {
                let v = value();
                let Some((id, addr)) = v.split_once('=') else {
                    usage();
                };
                let (Ok(id), Ok(addr)) = (id.parse::<u32>(), addr.parse::<SocketAddr>()) else {
                    usage();
                };
                peers.insert(id, addr);
            }
            "--txns" => txns = value().parse().unwrap_or_else(|_| usage()),
            "--on-fail-txns" => on_fail_txns = value().parse().unwrap_or_else(|_| usage()),
            "--phase1-target" => phase1_target = value().parse().ok(),
            "--final-target" => final_target = value().parse().ok(),
            "--linger-ms" => linger_ms = value().parse().unwrap_or_else(|_| usage()),
            "--max-runtime-ms" => max_runtime_ms = value().parse().unwrap_or_else(|_| usage()),
            "--trace-out" => trace_out = Some(PathBuf::from(value())),
            "--trace-buf" => trace_buf = value().parse().unwrap_or_else(|_| usage()),
            "--summary-every-ms" => summary_every_ms = value().parse().unwrap_or_else(|_| usage()),
            "--codec" => {
                codec = value().parse().unwrap_or_else(|_| usage());
                if !(1..=2).contains(&codec) {
                    usage();
                }
            }
            "--batch-max" => batch_max = value().parse().unwrap_or_else(|_| usage()),
            "--batch-delay-us" => batch_delay_us = value().parse().unwrap_or_else(|_| usage()),
            "--data-dir" => data_dir = Some(PathBuf::from(value())),
            "--metrics-listen" => metrics_listen = value().parse().ok(),
            _ => usage(),
        }
    }
    let (Some(site), Some(listen)) = (site, listen) else {
        usage();
    };
    Args {
        site,
        listen,
        peers,
        txns,
        on_fail_txns,
        phase1_target,
        final_target,
        linger_ms,
        max_runtime_ms,
        trace_out,
        trace_buf,
        summary_every_ms,
        codec,
        batch_max,
        batch_delay_us,
        data_dir,
        metrics_listen,
    }
}

fn main() {
    let args = parse_args();
    let site_id = SiteId(args.site);

    // --- tracing: one sink shared by the engine and the transport ---
    let trace = if args.trace_out.is_some() || args.summary_every_ms > 0 {
        TraceSink::enabled(args.site, args.trace_buf)
    } else {
        TraceSink::disabled()
    };

    // --- engine: one site, one shared counter, pre-wired replicas ---
    // With --data-dir the site is durable: recover from an existing WAL
    // (restart), or initialize a fresh log with a baseline checkpoint.
    let obj = ObjectName::new(site_id, 0); // first object at each site
    let mut ids: Vec<u32> = args.peers.keys().copied().collect();
    ids.push(args.site);
    ids.sort_unstable();
    ids.dedup();
    let n_sites = ids.len() as i64;
    let site_cfg = SiteConfig {
        durable: args.data_dir.is_some(),
        ..SiteConfig::default()
    };
    let mut wal: Option<CommitLog> = None;
    let mut recovered = false;
    let mut site = if let Some(dir) = &args.data_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("decaf-site {}: creating {}: {e}", args.site, dir.display());
            std::process::exit(2);
        }
        if dir.join(CommitLog::FILE_NAME).exists() {
            let (rec, log) = match Site::recover(dir, site_cfg) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!(
                        "decaf-site {}: recovering from {}: {e}",
                        args.site,
                        dir.display()
                    );
                    std::process::exit(2);
                }
            };
            if rec.site.id() != site_id {
                eprintln!(
                    "decaf-site {}: {} belongs to site {}",
                    args.site,
                    dir.display(),
                    rec.site.id().0
                );
                std::process::exit(2);
            }
            wal = Some(log);
            recovered = true;
            let site = rec.site;
            // Contract line for the crash-restart integration test.
            println!(
                "recovered wal-records={} value={}",
                rec.replayed,
                site.read_int_committed(obj).unwrap_or(0)
            );
            site
        } else {
            let mut site = Site::with_config(site_id, site_cfg);
            init_counter(&mut site, obj, &ids);
            let cp = match site.drain_and_checkpoint(16) {
                Ok(cp) => cp,
                Err(e) => {
                    eprintln!("decaf-site {}: baseline checkpoint: {e:?}", args.site);
                    std::process::exit(2);
                }
            };
            let mut log = match CommitLog::open(dir) {
                Ok((log, _scan)) => log,
                Err(e) => {
                    eprintln!("decaf-site {}: opening {}: {e}", args.site, dir.display());
                    std::process::exit(2);
                }
            };
            if let Err(e) = log.append_checkpoint(&cp) {
                eprintln!("decaf-site {}: writing baseline checkpoint: {e}", args.site);
                std::process::exit(2);
            }
            wal = Some(log);
            site
        }
    } else {
        let mut site = Site::new(site_id);
        init_counter(&mut site, obj, &ids);
        site
    };
    site.set_trace_sink(trace.clone());

    // --- transport: TCP mesh over the peer table ---
    let mut cfg = TcpConfig::new(site_id, args.listen)
        .trace(trace.clone())
        .codec(args.codec)
        .batching(args.batch_max, Duration::from_micros(args.batch_delay_us));
    for (&id, &addr) in &args.peers {
        cfg = cfg.peer(SiteId(id), addr);
    }
    let mut mesh = match TcpMesh::start(cfg) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("decaf-site {}: cannot bind {}: {e}", args.site, args.listen);
            std::process::exit(2);
        }
    };
    println!(
        "decaf-site {} listening on {}",
        args.site,
        mesh.local_addr()
    );
    let endpoint = mesh.endpoint();

    // A recovered site announces itself and catches up before (well,
    // while) doing new work: gestures submitted mid-rejoin are deferred
    // by the engine until every peer has acknowledged.
    if recovered {
        let peers = site.begin_rejoin();
        println!("rejoin peers={peers}");
    }

    // --- telemetry plane: live /metrics + /healthz scrape endpoint ---
    let telemetry = Arc::new(Mutex::new(Telemetry {
        recovered,
        rejoining: site.is_rejoining(),
        durable: args.data_dir.is_some(),
        ..Telemetry::default()
    }));
    if let Some(addr) = args.metrics_listen {
        match start_metrics_plane(addr, args.site, Arc::clone(&telemetry)) {
            Ok(bound) => println!("metrics listening on {bound}"),
            Err(e) => {
                eprintln!("decaf-site {}: cannot bind metrics {addr}: {e}", args.site);
                std::process::exit(2);
            }
        }
    }

    let phase1_target = args.phase1_target.unwrap_or(args.txns as i64 * n_sites);
    let start = Instant::now();
    let max_runtime = Duration::from_millis(args.max_runtime_ms);

    let mut last: Option<TxnHandle> = None;
    let mut phase1_submitted = 0u64;
    let mut phase2_submitted = 0u64;
    let mut failed_sites: Vec<SiteId> = Vec::new();
    let mut phase1_done = args.txns == 0 && phase1_target == 0;
    let mut finished_at: Option<Instant> = None;
    let summary_every = Duration::from_millis(args.summary_every_ms);
    let mut next_summary = start + summary_every;
    // WAL bookkeeping (durable sites): fsync latency histogram in µs.
    let mut fsync_hist = Histogram::new();
    let mut wal_appends = 0u64;

    loop {
        if start.elapsed() > max_runtime {
            eprintln!(
                "decaf-site {}: timeout after {:?}; committed={:?} transport: {}",
                args.site,
                start.elapsed(),
                site.read_int_committed(obj),
                mesh.stats()
            );
            std::process::exit(1);
        }

        // Submit work, paced like a user: next gesture once the previous
        // transaction's outcome is decided.
        let prior_done = last.map(|h| site.txn_outcome(h).is_some()).unwrap_or(true);
        if prior_done && finished_at.is_none() {
            if phase1_submitted < args.txns {
                last = Some(site.execute(Box::new(Incr(obj))));
                phase1_submitted += 1;
            } else if phase1_done
                && !failed_sites.is_empty()
                && phase2_submitted < args.on_fail_txns
            {
                last = Some(site.execute(Box::new(Incr(obj))));
                phase2_submitted += 1;
            }
        }

        // Pump: engine outbox -> sockets, sockets -> engine.
        for env in site.drain_outbox() {
            endpoint.send(env.to, env);
        }
        // Block briefly for the first event (doubles as loop pacing), then
        // drain whatever else arrived.
        let mut events = Vec::new();
        if let Some(first) = endpoint.recv_timeout(Duration::from_millis(1)) {
            events.push(first);
            while let Some(more) = endpoint.try_recv() {
                events.push(more);
            }
        }
        for event in events {
            match event {
                TransportEvent::Message { msg, .. } => site.handle_message(msg),
                TransportEvent::SiteFailed { failed } => {
                    println!("site-failed {}", failed.0);
                    site.notify_site_failed(failed);
                    failed_sites.push(failed);
                }
            }
        }
        // Durable sites persist (fsync) every captured commit before the
        // commit broadcasts below leave the process: a crash after this
        // point can tear the file tail, never lose an acknowledged commit.
        if let Some(log) = wal.as_mut() {
            for rec in site.drain_wal() {
                let before = log.len_bytes();
                match log.append_commit(&rec) {
                    Ok(latency) => {
                        wal_appends += 1;
                        fsync_hist.record(latency.as_micros() as u64);
                        trace.emit(
                            TraceKind::WalAppend,
                            Some((rec.vt.lamport, rec.vt.site.0)),
                            None,
                            Some(log.len_bytes() - before),
                        );
                    }
                    Err(e) => {
                        eprintln!("decaf-site {}: wal append: {e}", args.site);
                        std::process::exit(1);
                    }
                }
            }
        }
        for env in site.drain_outbox() {
            endpoint.send(env.to, env);
        }
        let _ = site.drain_events();

        // Refresh the scrape plane. Skipped entirely when no listener is
        // up — the lock is uncontended then, but why pay the copies.
        if args.metrics_listen.is_some() {
            let (commit_lat, view_lat, queue_depth) = trace.histograms();
            let mut t = telemetry.lock().expect("telemetry lock");
            t.engine = site.stats();
            t.transport = mesh.stats();
            t.committed = site.read_int_committed(obj).unwrap_or(0);
            t.rejoining = site.is_rejoining();
            t.commit_lat = commit_lat;
            t.view_lat = view_lat;
            t.queue_depth = queue_depth;
            t.fsync_us = fsync_hist.clone();
            t.wal_appends = wal_appends;
            t.wal_bytes = wal.as_ref().map(CommitLog::len_bytes).unwrap_or(0);
        }

        // Periodic one-line histogram digest.
        if args.summary_every_ms > 0 && Instant::now() >= next_summary {
            println!("trace-summary {}", trace.summary());
            next_summary += summary_every;
        }

        // Phase transitions.
        let committed = site.read_int_committed(obj).unwrap_or(0);
        if !phase1_done && committed >= phase1_target {
            phase1_done = true;
            println!("phase1-done value={committed}");
        }
        if phase1_done && finished_at.is_none() {
            let survivors = n_sites - failed_sites.len() as i64;
            let final_target = args
                .final_target
                .unwrap_or(phase1_target + args.on_fail_txns as i64 * survivors);
            let phase2_quota_met =
                args.on_fail_txns == 0 || (!failed_sites.is_empty() && committed >= final_target);
            if phase2_quota_met && committed >= final_target {
                finished_at = Some(Instant::now());
                // One structured end-of-run summary. `final value=` (and
                // `phase1-done value=` / `site-failed` above) are a stable
                // contract the integration tests grep for.
                println!("final value={committed}");
                let t = mesh.stats();
                println!(
                    "run-summary site={} committed={committed} elapsed-ms={} failed-peers={} \
                     codec-v2-frames={} coalesced={} bytes-saved={}",
                    args.site,
                    start.elapsed().as_millis(),
                    failed_sites.len(),
                    t.codec_v2_frames,
                    t.frames_coalesced,
                    t.bytes_saved,
                );
                if let Some(log) = wal.as_ref() {
                    println!(
                        "wal-summary appends={wal_appends} bytes={} \
                         fsync-p50-us={} fsync-p99-us={} fsync-max-us={}",
                        log.len_bytes(),
                        fsync_hist.quantile(0.50),
                        fsync_hist.quantile(0.99),
                        fsync_hist.max(),
                    );
                }
                println!("transport: {}", mesh.stats());
                println!("engine: {}", site.stats());
                if trace.is_enabled() {
                    println!("trace-summary {}", trace.summary());
                }
            }
        }

        // Linger after finishing so slower peers can still converge off us.
        if let Some(at) = finished_at {
            if at.elapsed() > Duration::from_millis(args.linger_ms) {
                break;
            }
        }
    }
    // The committed counter at exit, after lingering: peers that stayed
    // up long enough print identical values here — the convergence
    // assertion the crash-restart integration test greps for.
    println!("exit value={}", site.read_int_committed(obj).unwrap_or(0));
    mesh.shutdown();

    // Dump the retained trace after the mesh threads have joined, so the
    // JSONL includes every transport event up to teardown.
    if let Some(path) = &args.trace_out {
        match std::fs::File::create(path) {
            Ok(mut f) => {
                if let Err(e) = trace.write_jsonl(&mut f) {
                    eprintln!("decaf-site {}: writing {}: {e}", args.site, path.display());
                } else {
                    println!(
                        "trace-out {} events={} dropped={}",
                        path.display(),
                        trace.snapshot().len(),
                        trace.dropped(),
                    );
                }
            }
            Err(e) => {
                eprintln!("decaf-site {}: creating {}: {e}", args.site, path.display());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_telemetry() -> Telemetry {
        let mut t = Telemetry::default();
        t.engine.txns_started = 12;
        t.engine.txns_committed = 10;
        t.transport.frames_out = 40;
        t.committed = 10;
        t.durable = true;
        t.wal_appends = 10;
        t.wal_bytes = 2048;
        t.commit_lat.record(1_500_000);
        t.commit_lat.record(9_000_000);
        t
    }

    /// Every line of the exposition is a comment or `name{labels} value`,
    /// histograms end with an `+Inf` bucket matching `_count`, and the
    /// counter the CI gate scrapes is present with the site label.
    #[test]
    fn metrics_exposition_is_well_formed() {
        let body = render_metrics(3, &sample_telemetry());
        assert!(body.contains("# TYPE decaf_commits_total counter"));
        assert!(body.contains("decaf_commits_total{site=\"3\"} 10"));
        assert!(body.contains("decaf_commit_latency_ns_bucket{site=\"3\",le=\"+Inf\"} 2"));
        assert!(body.contains("decaf_commit_latency_ns_count{site=\"3\"} 2"));
        assert!(body.contains("decaf_wal_appends_total{site=\"3\"} 10"));
        assert!(body.ends_with('\n'));
        for line in body.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (name_part, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(value.parse::<f64>().is_ok(), "unparseable value: {line}");
            let name = name_part.split('{').next().unwrap();
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad metric name: {line}"
            );
        }
        // Durability off: the WAL family disappears rather than lying 0.
        let mut t = sample_telemetry();
        t.durable = false;
        assert!(!render_metrics(3, &t).contains("decaf_wal_"));
    }

    /// Boots the responder thread on an ephemeral port and scrapes it the
    /// way the CI gate does: plain HTTP over a TcpStream.
    #[test]
    fn metrics_plane_serves_scrapes() {
        use std::io::{Read as _, Write as _};

        let shared = Arc::new(Mutex::new(sample_telemetry()));
        let bound = start_metrics_plane("127.0.0.1:0".parse().unwrap(), 7, Arc::clone(&shared))
            .expect("ephemeral bind");

        let get = |path: &str| -> String {
            let mut conn = std::net::TcpStream::connect(bound).expect("connect scrape plane");
            write!(conn, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut out = String::new();
            conn.read_to_string(&mut out).expect("read response");
            out
        };

        let metrics = get("/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(metrics.contains(decaf_trace::metrics::CONTENT_TYPE));
        assert!(metrics.contains("decaf_commits_total{site=\"7\"} 10"));

        let health = get("/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(health.contains("ok\nsite 7\n"));
        shared.lock().unwrap().rejoining = true;
        assert!(get("/healthz").starts_with("HTTP/1.1 503 "));

        assert!(get("/nope").starts_with("HTTP/1.1 404 "));
    }
}
