//! `decaf-trace-stitch`: multi-site causal trace stitcher.
//!
//! Feeds the per-site JSONL dumps of one distributed run (`decaf-site
//! --trace-out`, one file per site) through [`decaf_trace::Stitcher`] and
//! prints the cross-site report: per-link clock-skew estimates (minimum
//! one-way delay method), skew-corrected propagation-latency histograms
//! per site pair, per-VT end-to-end spans (gesture → local commit → each
//! remote commit → pessimistic view), a critical-path breakdown
//! (queueing / wire / re-execute / notify), and anomaly flags (stalled
//! pessimistic frontier, rollback storms, WAL-fsync outliers).
//!
//! ```text
//! decaf-trace-stitch site1.jsonl site2.jsonl site3.jsonl
//! ```
//!
//! Like `decaf-trace-summarize`, a bad line is reported as `file:line:
//! error` without discarding the rest of its file, and flips the exit
//! code. Incomplete spans (bounded rings drop, sites get killed) are
//! listed in the report but are not an error: a stitched report over a
//! lossy trace is still a report.
//!
//! Exit codes: 0 stitched, 1 a file failed to read or parse, 2 usage.

use std::io::Read;

use decaf_trace::Stitcher;

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() || paths.iter().any(|p| p == "--help" || p == "-h") {
        eprintln!("usage: decaf-trace-stitch <trace.jsonl>... (or '-' for stdin)");
        std::process::exit(2);
    }

    let mut stitcher = Stitcher::new();
    let mut failed = false;
    for path in &paths {
        let text = if path == "-" {
            let mut s = String::new();
            std::io::stdin().read_to_string(&mut s).map(|_| s)
        } else {
            std::fs::read_to_string(path)
        };
        let text = match text {
            Ok(t) => t,
            Err(e) => {
                eprintln!("decaf-trace-stitch: {path}: {e}");
                failed = true;
                continue;
            }
        };
        let (n, bad) = stitcher.observe_jsonl_lossy(&text);
        if bad.is_empty() {
            eprintln!("{path}: {n} events");
        } else {
            for (line, e) in &bad {
                eprintln!("decaf-trace-stitch: {path}:{line}: {e}");
            }
            eprintln!(
                "decaf-trace-stitch: {path}: {} bad line(s); {n} good events still folded",
                bad.len()
            );
            failed = true;
        }
    }

    print!("{}", stitcher.finish().render());
    std::process::exit(if failed { 1 } else { 0 });
}
