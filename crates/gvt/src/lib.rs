//! A Jefferson-style **Global Virtual Time** (Time Warp) commit baseline.
//!
//! The DECAF paper argues (§5.1.3, §6) that prior groupware systems
//! (COAST, ORESTE) commit via a *global sweep*: a state can only be shown
//! to a (pessimistic) view once it is known that no straggler exists
//! anywhere, which "involves a global sweep analogous to Jefferson's Global
//! Virtual Time algorithm... the sweep to compute a GVT can be very
//! time-consuming, since it is proportional to the size of the network".
//!
//! This crate implements exactly that comparator, so the `e5_scalability`
//! experiment can measure DECAF's primary-copy commit against a GVT sweep
//! on identical workloads:
//!
//! * updates are optimistic blind writes broadcast to the object's replica
//!   set and applied in virtual-time order (stragglers re-sort);
//! * **commit** requires GVT: a token circulates a ring over *all* sites in
//!   the network, accumulating the minimum of every site's uncommitted
//!   virtual times and unacknowledged sends; after a full round the
//!   initiator broadcasts the new GVT and every site commits everything
//!   below it.
//!
//! The token ring spans the whole network even when replica sets are small
//! and disjoint — that is precisely the property the paper criticizes, and
//! the property E5 measures.
//!
//! # Example
//!
//! ```
//! use decaf_gvt::{GvtEvent, GvtMessage, GvtSite};
//! use decaf_vt::SiteId;
//!
//! let ring = vec![SiteId(1), SiteId(2)];
//! let mut a = GvtSite::new(SiteId(1), ring.clone());
//! let mut b = GvtSite::new(SiteId(2), ring);
//! let oa = a.create_int("x", 0);
//! let ob = b.create_int("x", 0);
//! assert_eq!(oa, ob, "logical names are global in the baseline");
//! a.add_replicas(oa.clone(), vec![SiteId(1), SiteId(2)]);
//! b.add_replicas(ob, vec![SiteId(1), SiteId(2)]);
//!
//! let vt = a.write(oa, 7);
//! // Deliver messages, run a sweep... (see the e5 harness)
//! # let _ = (vt, GvtMessage::StartSweep, GvtEvent::Committed { vt, site: SiteId(1) });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use decaf_vt::{History, LamportClock, SiteId, VirtualTime};

/// Global logical object name in the baseline (sites agree on names).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GvtObject(pub String);

/// Messages of the GVT baseline protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GvtMessage {
    /// An optimistic write broadcast to the object's replica set.
    Write {
        /// The written object.
        object: GvtObject,
        /// The writing transaction's VT.
        vt: VirtualTime,
        /// The new value.
        value: i64,
    },
    /// Receiver acknowledgement of a write (needed so in-flight messages
    /// hold GVT back, per Jefferson).
    Ack {
        /// The acknowledged transaction.
        vt: VirtualTime,
    },
    /// The sweep token, accumulating the network-wide minimum.
    Token {
        /// Sweep round identifier.
        round: u64,
        /// Site that started the sweep (receives the token back).
        initiator: SiteId,
        /// Minimum uncommitted VT seen so far.
        min: VirtualTime,
        /// How many sites remain to visit.
        remaining: Vec<SiteId>,
    },
    /// The computed GVT, broadcast after a completed round: everything
    /// strictly below commits.
    Gvt {
        /// Sweep round identifier.
        round: u64,
        /// The new global virtual time.
        gvt: VirtualTime,
    },
    /// Harness-injected trigger for a sweep (normally timer-driven).
    StartSweep,
}

/// An envelope of the baseline protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GvtEnvelope {
    /// Sender.
    pub from: SiteId,
    /// Destination.
    pub to: SiteId,
    /// Payload.
    pub msg: GvtMessage,
}

/// Observable events for harness measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GvtEvent {
    /// A write executed locally at `vt`.
    Executed {
        /// The transaction.
        vt: VirtualTime,
    },
    /// The transaction at `vt` is committed at this site (GVT passed it).
    Committed {
        /// The transaction.
        vt: VirtualTime,
        /// The site observing the commit.
        site: SiteId,
    },
}

/// One site of the GVT baseline.
#[derive(Debug)]
pub struct GvtSite {
    id: SiteId,
    clock: LamportClock,
    /// The token ring: every site in the network, in a fixed order.
    ring: Vec<SiteId>,
    objects: HashMap<GvtObject, ObjectState>,
    /// Uncommitted transaction VTs known at this site.
    uncommitted: BTreeSet<VirtualTime>,
    /// Writes sent but not yet acknowledged (hold GVT back).
    unacked: BTreeMap<VirtualTime, usize>,
    gvt: VirtualTime,
    next_round: u64,
    outbox: Vec<GvtEnvelope>,
    events: Vec<GvtEvent>,
    /// Messages sent (for fairness comparisons with DECAF).
    pub msgs_sent: u64,
}

#[derive(Debug, Default)]
struct ObjectState {
    replicas: Vec<SiteId>,
    history: History<i64>,
}

impl GvtSite {
    /// Creates a site belonging to the network-wide token ring `ring`.
    pub fn new(id: SiteId, ring: Vec<SiteId>) -> Self {
        GvtSite {
            id,
            clock: LamportClock::new(id),
            ring,
            objects: HashMap::new(),
            uncommitted: BTreeSet::new(),
            unacked: BTreeMap::new(),
            gvt: VirtualTime::ZERO,
            next_round: 0,
            outbox: Vec::new(),
            events: Vec::new(),
            msgs_sent: 0,
        }
    }

    /// This site's id.
    pub fn id(&self) -> SiteId {
        self.id
    }

    /// The current known GVT at this site.
    pub fn gvt(&self) -> VirtualTime {
        self.gvt
    }

    /// Creates (or references) the logical integer object `name` with a
    /// committed initial value.
    pub fn create_int(&mut self, name: &str, v: i64) -> GvtObject {
        let obj = GvtObject(name.to_owned());
        let state = self.objects.entry(obj.clone()).or_default();
        state.history.insert_committed(VirtualTime::ZERO, v);
        obj
    }

    /// Declares the replica set of `object` (must be identical at all
    /// members).
    pub fn add_replicas(&mut self, object: GvtObject, replicas: Vec<SiteId>) {
        if let Some(state) = self.objects.get_mut(&object) {
            state.replicas = replicas;
        }
    }

    /// The latest committed value of `object`.
    pub fn read_committed(&self, object: &GvtObject) -> Option<i64> {
        self.objects
            .get(object)?
            .history
            .latest_committed()
            .map(|e| e.value)
    }

    /// The current (possibly uncommitted) value.
    pub fn read_current(&self, object: &GvtObject) -> Option<i64> {
        self.objects.get(object)?.history.current().map(|e| e.value)
    }

    /// Executes a blind write locally and broadcasts it to the replica
    /// set. Returns the transaction's VT.
    ///
    /// # Panics
    ///
    /// Panics if the object is unknown at this site.
    pub fn write(&mut self, object: GvtObject, value: i64) -> VirtualTime {
        let vt = self.clock.next();
        let state = self.objects.get_mut(&object).expect("unknown object");
        state.history.insert(vt, value);
        self.uncommitted.insert(vt);
        self.events.push(GvtEvent::Executed { vt });
        let replicas = state.replicas.clone();
        let mut fanout = 0;
        for site in replicas {
            if site == self.id {
                continue;
            }
            fanout += 1;
            self.push(
                site,
                GvtMessage::Write {
                    object: object.clone(),
                    vt,
                    value,
                },
            );
        }
        if fanout > 0 {
            self.unacked.insert(vt, fanout);
        }
        vt
    }

    /// Starts a GVT sweep (call on the designated initiator, usually on a
    /// timer).
    pub fn start_sweep(&mut self) {
        let round = self.next_round;
        self.next_round += 1;
        let min = self.local_min();
        let mut remaining: Vec<SiteId> = self
            .ring
            .iter()
            .copied()
            .filter(|s| *s != self.id)
            .collect();
        if remaining.is_empty() {
            // Single-site network: GVT = local min immediately.
            self.apply_gvt(min);
            return;
        }
        // The token returns to the initiator at the end of the round.
        remaining.push(self.id);
        let next = remaining.remove(0);
        self.push(
            next,
            GvtMessage::Token {
                round,
                initiator: self.id,
                min,
                remaining,
            },
        );
    }

    /// The minimum virtual time this site can still introduce into the
    /// system: its clock's next tick (any future local event exceeds it)
    /// and its unacknowledged in-flight sends (Jefferson's transit rule).
    /// Already-applied uncommitted writes do not hold GVT back — they are
    /// processed events awaiting fossil collection.
    fn local_min(&self) -> VirtualTime {
        let mut min = VirtualTime::new(self.clock.counter() + 1, self.id);
        if let Some((u, _)) = self.unacked.iter().next() {
            min = min.min(*u);
        }
        min
    }

    /// Handles a delivered message.
    pub fn handle_message(&mut self, env: GvtEnvelope) {
        match env.msg {
            GvtMessage::Write { object, vt, value } => {
                self.clock.witness(vt);
                if let Some(state) = self.objects.get_mut(&object) {
                    state.history.insert(vt, value);
                    if vt < self.gvt {
                        // Write below a published GVT can only happen for
                        // redeliveries; mark it committed directly.
                        state.history.mark_committed(vt);
                    } else {
                        self.uncommitted.insert(vt);
                    }
                }
                self.push(env.from, GvtMessage::Ack { vt });
            }
            GvtMessage::Ack { vt } => {
                if let Some(n) = self.unacked.get_mut(&vt) {
                    *n -= 1;
                    if *n == 0 {
                        self.unacked.remove(&vt);
                    }
                }
            }
            GvtMessage::Token {
                round,
                initiator,
                min,
                mut remaining,
            } => {
                let min = min.min(self.local_min());
                if remaining.is_empty() {
                    // Round complete: the initiator publishes the GVT.
                    debug_assert_eq!(initiator, self.id);
                    for site in self.ring.clone() {
                        if site != self.id {
                            self.push(site, GvtMessage::Gvt { round, gvt: min });
                        }
                    }
                    self.apply_gvt(min);
                } else {
                    let next = remaining.remove(0);
                    self.push(
                        next,
                        GvtMessage::Token {
                            round,
                            initiator,
                            min,
                            remaining,
                        },
                    );
                }
            }
            GvtMessage::Gvt { gvt, .. } => {
                self.apply_gvt(gvt);
            }
            GvtMessage::StartSweep => self.start_sweep(),
        }
    }

    fn apply_gvt(&mut self, gvt: VirtualTime) {
        if gvt <= self.gvt {
            return;
        }
        self.gvt = gvt;
        let newly: Vec<VirtualTime> = self
            .uncommitted
            .iter()
            .copied()
            .take_while(|vt| *vt < gvt)
            .collect();
        for vt in newly {
            self.uncommitted.remove(&vt);
            for state in self.objects.values_mut() {
                state.history.mark_committed(vt);
                // Fossil collection (Jefferson: commits free the logs).
                state.history.gc(vt);
            }
            self.events.push(GvtEvent::Committed { vt, site: self.id });
        }
    }

    /// Drains queued outgoing messages.
    pub fn drain_outbox(&mut self) -> Vec<GvtEnvelope> {
        std::mem::take(&mut self.outbox)
    }

    /// Drains observable events.
    pub fn drain_events(&mut self) -> Vec<GvtEvent> {
        std::mem::take(&mut self.events)
    }

    fn push(&mut self, to: SiteId, msg: GvtMessage) {
        self.msgs_sent += 1;
        self.outbox.push(GvtEnvelope {
            from: self.id,
            to,
            msg,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pump(sites: &mut [&mut GvtSite]) {
        loop {
            let mut envs = Vec::new();
            for s in sites.iter_mut() {
                envs.extend(s.drain_outbox());
            }
            if envs.is_empty() {
                return;
            }
            for e in envs {
                if let Some(s) = sites.iter_mut().find(|s| s.id() == e.to) {
                    s.handle_message(e);
                }
            }
        }
    }

    fn network(n: u32) -> Vec<GvtSite> {
        let ring: Vec<SiteId> = (1..=n).map(SiteId).collect();
        (1..=n)
            .map(|i| GvtSite::new(SiteId(i), ring.clone()))
            .collect()
    }

    #[test]
    fn write_propagates_but_stays_uncommitted_without_sweep() {
        let mut sites = network(2);
        let [a, b] = &mut sites[..] else {
            unreachable!()
        };
        let oa = a.create_int("x", 0);
        let ob = b.create_int("x", 0);
        a.add_replicas(oa.clone(), vec![SiteId(1), SiteId(2)]);
        b.add_replicas(ob.clone(), vec![SiteId(1), SiteId(2)]);
        a.write(oa.clone(), 5);
        pump(&mut [a, b]);
        assert_eq!(b.read_current(&ob), Some(5));
        assert_eq!(b.read_committed(&ob), Some(0), "no sweep, no commit");
    }

    #[test]
    fn sweep_commits_everything_below_gvt() {
        let mut sites = network(2);
        let [a, b] = &mut sites[..] else {
            unreachable!()
        };
        let oa = a.create_int("x", 0);
        let ob = b.create_int("x", 0);
        a.add_replicas(oa.clone(), vec![SiteId(1), SiteId(2)]);
        b.add_replicas(ob.clone(), vec![SiteId(1), SiteId(2)]);
        let vt = a.write(oa.clone(), 5);
        pump(&mut [a, b]);
        a.start_sweep();
        pump(&mut [a, b]);
        assert_eq!(a.read_committed(&oa), Some(5));
        assert_eq!(b.read_committed(&ob), Some(5));
        assert!(a.gvt() > vt);
        assert!(b
            .drain_events()
            .iter()
            .any(|e| matches!(e, GvtEvent::Committed { vt: v, .. } if *v == vt)));
    }

    #[test]
    fn in_flight_write_holds_gvt_back() {
        let mut sites = network(2);
        let [a, b] = &mut sites[..] else {
            unreachable!()
        };
        let oa = a.create_int("x", 0);
        let ob = b.create_int("x", 0);
        a.add_replicas(oa.clone(), vec![SiteId(1), SiteId(2)]);
        b.add_replicas(ob.clone(), vec![SiteId(1), SiteId(2)]);
        let vt = a.write(oa.clone(), 5);
        // Sweep BEFORE delivering the write: the unacked send pins GVT.
        let held: Vec<GvtEnvelope> = a.drain_outbox();
        a.start_sweep();
        pump(&mut [a, b]);
        assert!(a.gvt() <= vt, "in-flight write must hold GVT back");
        assert_eq!(b.read_committed(&ob), Some(0));
        // Deliver and sweep again.
        for e in held {
            b.handle_message(e);
        }
        pump(&mut [a, b]);
        a.start_sweep();
        pump(&mut [a, b]);
        assert_eq!(b.read_committed(&ob), Some(5));
    }

    #[test]
    fn sweep_visits_every_ring_member() {
        // 6 sites, replicas only on {1,2}: the token still travels the
        // whole ring — the cost E5 measures.
        let mut sites = network(6);
        for s in sites.iter_mut() {
            let o = s.create_int("x", 0);
            s.add_replicas(o, vec![SiteId(1), SiteId(2)]);
        }
        let o = GvtObject("x".into());
        sites[0].write(o.clone(), 1);
        {
            let mut refs: Vec<&mut GvtSite> = sites.iter_mut().collect();
            pump(&mut refs);
        }
        sites[0].start_sweep();
        let mut token_hops = 0;
        loop {
            let mut envs = Vec::new();
            for s in sites.iter_mut() {
                envs.extend(s.drain_outbox());
            }
            if envs.is_empty() {
                break;
            }
            for e in envs {
                if matches!(e.msg, GvtMessage::Token { .. }) {
                    token_hops += 1;
                }
                if let Some(s) = sites.iter_mut().find(|s| s.id() == e.to) {
                    s.handle_message(e);
                }
            }
        }
        assert_eq!(token_hops, 6, "token visits all 6 sites (5 fwd + return)");
        assert_eq!(sites[1].read_committed(&o), Some(1));
    }

    #[test]
    fn stragglers_resort_into_history() {
        let mut sites = network(3);
        for s in sites.iter_mut() {
            let o = s.create_int("x", 0);
            s.add_replicas(o, vec![SiteId(1), SiteId(2), SiteId(3)]);
        }
        let o = GvtObject("x".into());
        // Concurrent writes from 1 and 2 (1's VT is smaller).
        sites[0].write(o.clone(), 10);
        sites[1].write(o.clone(), 20);
        // Deliver 2's write first to site 3, then 1's (a straggler).
        let e1: Vec<GvtEnvelope> = sites[0].drain_outbox();
        let e2: Vec<GvtEnvelope> = sites[1].drain_outbox();
        for e in e2.into_iter().chain(e1) {
            let idx = (e.to.0 - 1) as usize;
            sites[idx].handle_message(e);
        }
        {
            let mut refs: Vec<&mut GvtSite> = sites.iter_mut().collect();
            pump(&mut refs);
        }
        assert_eq!(
            sites[2].read_current(&o),
            Some(20),
            "later VT wins regardless of arrival order"
        );
        sites[0].start_sweep();
        {
            let mut refs: Vec<&mut GvtSite> = sites.iter_mut().collect();
            pump(&mut refs);
        }
        for s in &sites {
            assert_eq!(s.read_committed(&o), Some(20));
        }
    }
}
