//! Experiment harnesses reproducing every quantitative claim of the DECAF
//! paper's evaluation (§5). Each `eN_*` function regenerates one
//! experiment's rows; the `src/bin/*` binaries print them as tables, and
//! `EXPERIMENTS.md` records paper-vs-measured.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use decaf_core::{RecordingView, SiteConfig, ViewMode};
use decaf_gvt::{GvtEnvelope, GvtEvent, GvtSite};
use decaf_net::sim::{Event, LatencyModel, SimNet, SimTime};
use decaf_vt::{SiteId, VirtualTime};
use decaf_workload::{
    ArrivalProcess, BlindWrite, LatencyTracker, NotificationTracker, RateWorkload, ReadModifyWrite,
    SimWorld, TxnKind, TxnMix,
};

/// Pretty-prints a table of (header, rows) with aligned columns.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Appends `s` to `out` as a JSON string literal (quotes, backslashes, and
/// control characters escaped). Hand-rolled: the bench crate's machine
/// output must not pull a serializer into the measurement binaries.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Prints the table as one JSON object on stdout:
/// `{"title":"...","headers":[...],"rows":[["..."],...]}`.
pub fn print_table_json(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    let mut out = String::from("{\"title\":");
    push_json_str(&mut out, title);
    out.push_str(",\"headers\":[");
    for (i, h) in headers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, h);
    }
    out.push_str("],\"rows\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, cell) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            push_json_str(&mut out, cell);
        }
        out.push(']');
    }
    out.push_str("]}");
    println!("{out}");
}

/// Prints the human table, or the [`print_table_json`] form when `--json`
/// is among the process arguments. Every bench binary routes its output
/// through this, so `e1-commit-latency --json | jq` works uniformly.
pub fn emit_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    if std::env::args().any(|a| a == "--json") {
        print_table_json(title, headers, rows);
    } else {
        print_table(title, headers, rows);
    }
}

// ===========================================================================
// E1 — commit latency (§5.1.1)
// ===========================================================================

/// One measured commit-latency row.
#[derive(Debug, Clone)]
pub struct E1Row {
    /// Network latency `t` in ms.
    pub t_ms: u64,
    /// Primary placement scenario.
    pub scenario: &'static str,
    /// Measured commit latency at the originating site (ms).
    pub origin_ms: f64,
    /// Measured commit latency at non-originating sites (ms, mean).
    pub remote_ms: f64,
    /// The paper's analytic expectation for the originator.
    pub expect_origin: f64,
    /// The paper's analytic expectation for the remote sites.
    pub expect_remote: f64,
}

/// Runs the E1 commit-latency experiment for one network latency.
pub fn e1_commit_latency(t_ms: u64) -> Vec<E1Row> {
    let t = SimTime::from_millis(t_ms);
    let mut rows = Vec::new();

    // (a) Multiple remote primaries: 4 sites; object A on {1,4}, B on
    // {2,4}; transaction at site 4 updates both → primaries 1 and 2 are
    // remote, no delegation. Commit at origin: 2t; remotes: 3t.
    {
        let mut world = SimWorld::new(4, LatencyModel::uniform(t));
        let a_objs = world.wire_int_subset(&[SiteId(1), SiteId(4)], 0);
        let b_objs = world.wire_int_subset(&[SiteId(2), SiteId(4)], 0);
        let (a4, b4) = (a_objs[&SiteId(4)], b_objs[&SiteId(4)]);
        struct Two(decaf_core::ObjectName, decaf_core::ObjectName);
        impl decaf_core::Transaction for Two {
            fn execute(
                &mut self,
                ctx: &mut decaf_core::TxnCtx<'_>,
            ) -> Result<(), decaf_core::TxnError> {
                let a = ctx.read_int(self.0)?;
                ctx.write_int(self.0, a + 1)?;
                let b = ctx.read_int(self.1)?;
                ctx.write_int(self.1, b + 1)
            }
        }
        world.site(SiteId(4)).execute(Box::new(Two(a4, b4)));
        world.run_to_quiescence();
        let mut lt = LatencyTracker::new();
        lt.ingest(&world.log);
        rows.push(E1Row {
            t_ms,
            scenario: "m remote primaries",
            origin_ms: LatencyTracker::mean_ms(&lt.at_origin),
            remote_ms: LatencyTracker::mean_ms(&lt.at_remote),
            expect_origin: 2.0 * t_ms as f64,
            expect_remote: 3.0 * t_ms as f64,
        });
    }

    // (b) Single primary == originating site: commits immediately at the
    // origin; replicas learn in t.
    {
        let mut world = SimWorld::new(2, LatencyModel::uniform(t));
        let objs = world.wire_int(0);
        let o1 = objs[0];
        world.site(SiteId(1)).execute(Box::new(ReadModifyWrite {
            object: o1,
            delta: 1,
        }));
        world.run_to_quiescence();
        let mut lt = LatencyTracker::new();
        lt.ingest(&world.log);
        rows.push(E1Row {
            t_ms,
            scenario: "primary = origin",
            origin_ms: LatencyTracker::mean_ms(&lt.at_origin),
            remote_ms: LatencyTracker::mean_ms(&lt.at_remote),
            expect_origin: 0.0,
            expect_remote: t_ms as f64,
        });
    }

    // (c) Single remote primary with delegate commit: the primary commits
    // in t, the originator in 2t, other replicas in 2t.
    {
        let mut world = SimWorld::new(3, LatencyModel::uniform(t));
        let objs = world.wire_int(0);
        let o2 = objs[1];
        world.site(SiteId(2)).execute(Box::new(ReadModifyWrite {
            object: o2,
            delta: 1,
        }));
        world.run_to_quiescence();
        let mut lt = LatencyTracker::new();
        lt.ingest(&world.log);
        rows.push(E1Row {
            t_ms,
            scenario: "single remote primary (delegated)",
            origin_ms: LatencyTracker::mean_ms(&lt.at_origin),
            remote_ms: LatencyTracker::mean_ms(&lt.at_remote),
            expect_origin: 2.0 * t_ms as f64,
            // primary commits in t, the third replica in 2t → mean 1.5t
            expect_remote: 1.5 * t_ms as f64,
        });
    }

    rows
}

// ===========================================================================
// E2 — view notification latency (§5.1.2)
// ===========================================================================

/// One view-latency row.
#[derive(Debug, Clone)]
pub struct E2Row {
    /// Network latency `t` in ms.
    pub t_ms: u64,
    /// Where the view lives.
    pub placement: &'static str,
    /// Measured optimistic update-notification latency (ms).
    pub optimistic_ms: f64,
    /// Measured pessimistic update-notification latency (ms).
    pub pessimistic_ms: f64,
    /// Paper expectation for the optimistic view.
    pub expect_opt: f64,
    /// Paper expectation for the pessimistic view.
    pub expect_pess: f64,
}

/// Runs the E2 view-notification experiment for one network latency.
///
/// Three sites share two objects; the transaction (at the non-primary site
/// 2) updates one of them; views are attached to **both** objects,
/// exercising the updated-object and viewed-but-not-updated paths of
/// §5.1.2. The delegate-commit optimization is disabled to match the
/// paper's analytic protocol (with delegation every figure improves by t;
/// the `a1_delegate` ablation quantifies that separately).
pub fn e2_view_latency(t_ms: u64) -> Vec<E2Row> {
    let t = SimTime::from_millis(t_ms);
    let config = SiteConfig {
        delegate_enabled: false,
        ..SiteConfig::default()
    };
    let mut out = Vec::new();
    for (placement, viewer) in [
        ("originator", SiteId(2)),
        ("non-originator (primary)", SiteId(1)),
        ("non-originator (replica)", SiteId(3)),
    ] {
        let mut world = SimWorld::with_config(3, LatencyModel::uniform(t), config);
        let x = world.wire_int(0);
        let y = world.wire_int(0);
        let watch = [x[(viewer.0 - 1) as usize], y[(viewer.0 - 1) as usize]];
        world.site(viewer).attach_view(
            Box::new(RecordingView::new(watch.to_vec())),
            &watch,
            ViewMode::Optimistic,
        );
        world.site(viewer).attach_view(
            Box::new(RecordingView::new(watch.to_vec())),
            &watch,
            ViewMode::Pessimistic,
        );
        let x2 = x[1];
        world.site(SiteId(2)).execute(Box::new(ReadModifyWrite {
            object: x2,
            delta: 1,
        }));
        world.run_to_quiescence();
        let mut nt = NotificationTracker::new();
        nt.ingest(&world.log);
        // §5.1.2: optimistic immediately at the originator, after t at
        // replicas; pessimistic 2t at the originator, no more than 3t at
        // non-originating sites.
        let (expect_opt, expect_pess) = match placement {
            "originator" => (0.0, 2.0 * t_ms as f64),
            _ => (t_ms as f64, 3.0 * t_ms as f64),
        };
        out.push(E2Row {
            t_ms,
            placement,
            optimistic_ms: nt.mean_ms(ViewMode::Optimistic),
            pessimistic_ms: nt.mean_ms(ViewMode::Pessimistic),
            expect_opt,
            expect_pess,
        });
    }
    out
}

// ===========================================================================
// E3 — lost updates under blind-write load (§5.2.2)
// ===========================================================================

/// One lost-update row.
#[derive(Debug, Clone)]
pub struct E3Row {
    /// Per-party update rate (updates per second).
    pub rate: f64,
    /// Updates committed in total.
    pub committed: u64,
    /// Lost updates observed by optimistic views.
    pub lost: u64,
    /// Lost-update rate.
    pub lost_rate: f64,
    /// Conflict rollbacks (the paper expects none for blind writes).
    pub rollbacks: u64,
    /// Update inconsistencies (expected 0).
    pub update_inconsistencies: u64,
}

/// Runs the E3 blind-write workload: two parties, optimistic views at both,
/// symmetric Poisson update streams at `rate`/s each, `t_ms` latency,
/// `seconds` of simulated time.
pub fn e3_lost_updates(rate: f64, t_ms: u64, seconds: u64, seed: u64) -> E3Row {
    let t = SimTime::from_millis(t_ms);
    let mut world = SimWorld::new(2, LatencyModel::uniform(t));
    let objs = world.wire_int(0);
    for (i, site) in [SiteId(1), SiteId(2)].into_iter().enumerate() {
        let watch = vec![objs[i]];
        world.site(site).attach_view(
            Box::new(RecordingView::new(watch.clone())),
            &watch,
            ViewMode::Optimistic,
        );
    }
    RateWorkload {
        parties: vec![
            (
                SiteId(1),
                ArrivalProcess::poisson(rate, seed),
                TxnMix::single(TxnKind::BlindWrite),
            ),
            (
                SiteId(2),
                ArrivalProcess::poisson(rate, seed.wrapping_add(1)),
                TxnMix::single(TxnKind::BlindWrite),
            ),
        ],
        duration: SimTime::from_secs(seconds),
    }
    .run(&mut world, &objs);
    let total = world.total_stats();
    let denom = total.opt_notifications + total.lost_updates;
    E3Row {
        rate,
        committed: total.txns_committed,
        lost: total.lost_updates,
        lost_rate: if denom == 0 {
            0.0
        } else {
            total.lost_updates as f64 / denom as f64
        },
        rollbacks: total.txns_aborted_conflict,
        update_inconsistencies: total.update_inconsistencies,
    }
}

// ===========================================================================
// E4 — rollback rate under read-write load (§5.2.2)
// ===========================================================================

/// One rollback-rate row.
#[derive(Debug, Clone)]
pub struct E4Row {
    /// Second party's update rate (first party is fixed at 1/s).
    pub b_rate: f64,
    /// Transactions submitted.
    pub started: u64,
    /// Conflict rollbacks.
    pub rollbacks: u64,
    /// Rollback rate.
    pub rollback_rate: f64,
    /// Update inconsistencies shown to optimistic views.
    pub update_inconsistencies: u64,
    /// Automatic retries performed.
    pub retries: u64,
}

/// Runs the E4 read-write workload: party A at 1/s, party B at `b_rate`/s,
/// both performing read-modify-write increments of the shared object.
pub fn e4_rollback_rate(b_rate: f64, t_ms: u64, seconds: u64, seed: u64) -> E4Row {
    let t = SimTime::from_millis(t_ms);
    let mut world = SimWorld::new(2, LatencyModel::uniform(t));
    let objs = world.wire_int(0);
    for (i, site) in [SiteId(1), SiteId(2)].into_iter().enumerate() {
        let watch = vec![objs[i]];
        world.site(site).attach_view(
            Box::new(RecordingView::new(watch.clone())),
            &watch,
            ViewMode::Optimistic,
        );
    }
    RateWorkload {
        parties: vec![
            (
                SiteId(1),
                ArrivalProcess::poisson(1.0, seed),
                TxnMix::single(TxnKind::ReadModifyWrite),
            ),
            (
                SiteId(2),
                ArrivalProcess::poisson(b_rate, seed.wrapping_add(1)),
                TxnMix::single(TxnKind::ReadModifyWrite),
            ),
        ],
        duration: SimTime::from_secs(seconds),
    }
    .run(&mut world, &objs);
    let total = world.total_stats();
    E4Row {
        b_rate,
        started: total.txns_started,
        rollbacks: total.txns_aborted_conflict,
        rollback_rate: if total.txns_started == 0 {
            0.0
        } else {
            total.txns_aborted_conflict as f64 / total.txns_started as f64
        },
        update_inconsistencies: total.update_inconsistencies,
        retries: total.retries,
    }
}

// ===========================================================================
// E5 — scalability vs a GVT global sweep (§5.1.3)
// ===========================================================================

/// One scalability row.
#[derive(Debug, Clone)]
pub struct E5Row {
    /// Number of chained 3-site replica sets.
    pub k: usize,
    /// Total network size (2k + 1 sites).
    pub sites: usize,
    /// DECAF mean commit latency (ms).
    pub decaf_ms: f64,
    /// GVT-baseline mean commit latency (ms).
    pub gvt_ms: f64,
}

/// Runs the §5.1.3 hypothetical: `k` chained replica sets
/// `{1,2,3}, {3,4,5}, {5,6,7}, …` on a network of `2k+1` sites; one blind
/// write per set, originated by the set's middle site. DECAF commits via
/// per-set primaries; the GVT baseline needs a network-wide sweep (period
/// `sweep_ms`).
pub fn e5_scalability(k: usize, t_ms: u64, sweep_ms: u64) -> E5Row {
    let n = 2 * k + 1;
    let t = SimTime::from_millis(t_ms);

    // ---- DECAF ----
    let decaf_ms = {
        let mut world = SimWorld::new(n as u32, LatencyModel::uniform(t));
        let mut set_objs = Vec::new();
        for i in 0..k {
            let members = [
                SiteId((2 * i + 1) as u32),
                SiteId((2 * i + 2) as u32),
                SiteId((2 * i + 3) as u32),
            ];
            set_objs.push((members, world.wire_int_subset(&members, 0)));
        }
        for (members, objs) in &set_objs {
            let mid = members[1];
            let obj = objs[&mid];
            world.site(mid).execute(Box::new(BlindWrite {
                object: obj,
                value: 1,
            }));
        }
        world.run_to_quiescence();
        let mut lt = LatencyTracker::new();
        lt.ingest(&world.log);
        let mut all = lt.at_origin.clone();
        all.extend(lt.at_remote.iter().copied());
        LatencyTracker::mean_ms(&all)
    };

    // ---- GVT baseline ----
    let gvt_ms = {
        let ring: Vec<SiteId> = (1..=n as u32).map(SiteId).collect();
        let mut sites: BTreeMap<SiteId, GvtSite> = ring
            .iter()
            .map(|id| (*id, GvtSite::new(*id, ring.clone())))
            .collect();
        for i in 0..k {
            let members = vec![
                SiteId((2 * i + 1) as u32),
                SiteId((2 * i + 2) as u32),
                SiteId((2 * i + 3) as u32),
            ];
            for m in &members {
                let s = sites.get_mut(m).expect("site exists");
                let o = s.create_int(&format!("set{i}"), 0);
                s.add_replicas(o, members.clone());
            }
        }
        let mut net: SimNet<GvtEnvelope> = SimNet::new(LatencyModel::uniform(t));
        // Periodic sweeps from site 1.
        let sweep_period = SimTime::from_millis(sweep_ms);
        net.set_timer(SiteId(1), sweep_period, 1);
        // Issue one write per set at t=0 (middle site).
        let mut exec_at: BTreeMap<VirtualTime, SimTime> = BTreeMap::new();
        let mut commit_lat: Vec<SimTime> = Vec::new();
        for i in 0..k {
            let mid = SiteId((2 * i + 2) as u32);
            let s = sites.get_mut(&mid).expect("site exists");
            let vt = s.write(decaf_gvt::GvtObject(format!("set{i}")), 1);
            exec_at.insert(vt, SimTime::ZERO);
        }
        let deadline = SimTime::from_secs(600);
        loop {
            // Flush outboxes.
            for s in sites.values_mut() {
                for env in s.drain_outbox() {
                    net.send(env.from, env.to, env);
                }
                for ev in s.drain_events() {
                    if let GvtEvent::Committed { vt, .. } = ev {
                        if let Some(start) = exec_at.get(&vt) {
                            commit_lat.push(net.now().saturating_sub(*start));
                        }
                    }
                }
            }
            if commit_lat.len() >= 3 * k || net.now() > deadline {
                break;
            }
            match net.step() {
                Some(Event::Deliver { to, msg, .. }) => {
                    if let Some(s) = sites.get_mut(&to) {
                        s.handle_message(msg);
                    }
                }
                Some(Event::Timer { site, .. }) => {
                    if let Some(s) = sites.get_mut(&site) {
                        s.start_sweep();
                    }
                    net.set_timer(site, sweep_period, 1);
                }
                Some(Event::SiteFailed { .. }) | None => break,
            }
        }
        LatencyTracker::mean_ms(&commit_lat)
    };

    E5Row {
        k,
        sites: n,
        decaf_ms,
        gvt_ms,
    }
}

// ===========================================================================
// A1 — delegate-commit ablation (§3.1)
// ===========================================================================

/// One delegate-ablation row.
#[derive(Debug, Clone)]
pub struct A1Row {
    /// Network latency `t` in ms.
    pub t_ms: u64,
    /// Whether delegation was enabled.
    pub delegated: bool,
    /// Commit latency at the originator (ms).
    pub origin_ms: f64,
    /// Mean commit latency at non-originating sites (ms).
    pub remote_ms: f64,
    /// Protocol messages sent in total.
    pub msgs: u64,
}

/// Measures the delegate-commit optimization: a three-party collaboration
/// whose single remote primary either receives the delegation or not.
pub fn a1_delegate(t_ms: u64, delegated: bool) -> A1Row {
    let t = SimTime::from_millis(t_ms);
    let config = SiteConfig {
        delegate_enabled: delegated,
        ..SiteConfig::default()
    };
    let mut world = SimWorld::with_config(3, LatencyModel::uniform(t), config);
    let objs = world.wire_int(0);
    let o2 = objs[1];
    world.site(SiteId(2)).execute(Box::new(ReadModifyWrite {
        object: o2,
        delta: 1,
    }));
    world.run_to_quiescence();
    let mut lt = LatencyTracker::new();
    lt.ingest(&world.log);
    let total = world.total_stats();
    A1Row {
        t_ms,
        delegated,
        origin_ms: LatencyTracker::mean_ms(&lt.at_origin),
        remote_ms: LatencyTracker::mean_ms(&lt.at_remote),
        msgs: total.msgs_sent,
    }
}

// ===========================================================================
// A2 — direct vs indirect propagation ablation (§3.2)
// ===========================================================================

/// One propagation-ablation row.
#[derive(Debug, Clone)]
pub struct A2Row {
    /// Children embedded in the composite.
    pub n_children: usize,
    /// Replication graphs stored per site with indirect propagation
    /// (composite root only).
    pub graphs_indirect: usize,
    /// Replication graphs a direct scheme would store (one per object).
    pub graphs_direct: usize,
    /// Bytes of graph state shipped when a member joins, indirect.
    pub join_bytes_indirect: usize,
    /// Bytes of graph state a direct scheme would ship (n+1 graphs).
    pub join_bytes_direct: usize,
}

/// Measures the space argument of §3.2: with indirect propagation a
/// composite of `n` children keeps ONE replication graph; a direct scheme
/// would keep (and re-ship on membership changes) `n + 1`.
pub fn a2_propagation(n_children: usize) -> A2Row {
    use decaf_core::{Blueprint, ObjectName, Transaction, TxnCtx, TxnError};

    struct PushN(ObjectName, usize);
    impl Transaction for PushN {
        fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
            for i in 0..self.1 {
                ctx.list_push(self.0, Blueprint::Int(i as i64))?;
            }
            Ok(())
        }
    }

    let mut world = SimWorld::new(2, LatencyModel::uniform(SimTime::from_millis(5)));
    // Build the composite at site 1, then join from site 2 via the real
    // protocol so the measured bytes are what actually travels.
    let list1 = world.site(SiteId(1)).create_list();
    let baseline_objects = world.site(SiteId(1)).object_count();
    world
        .site(SiteId(1))
        .execute(Box::new(PushN(list1, n_children)));
    let assoc = world.site(SiteId(1)).create_association();
    let rel = world
        .site(SiteId(1))
        .create_relation(assoc, "board", list1)
        .expect("relation");
    world.run_to_quiescence();
    let invitation = world
        .site(SiteId(1))
        .make_invitation(assoc, rel)
        .expect("invitation");
    let list2 = world.site(SiteId(2)).create_list();

    // Measure the join's graph bytes by serializing the envelopes.
    world.site(SiteId(2)).join(invitation, list2).expect("join");
    let mut join_bytes = 0usize;
    loop {
        let mut moved = false;
        for site in [SiteId(1), SiteId(2)] {
            for env in world.site(site).drain_outbox() {
                moved = true;
                join_bytes += serde_json::to_vec(&env).map(|v| v.len()).unwrap_or(0);
                world.net.send(env.from, env.to, env);
            }
        }
        if !moved && world.net.peek_time().is_none() {
            break;
        }
        if world.net.peek_time().is_none() {
            break;
        }
        if let Some(Event::Deliver { to, msg, .. }) = world.net.step() {
            if let Some(s) = world.sites.get_mut(&to) {
                s.handle_message(msg);
            }
        }
    }

    let site1 = world.sites.get(&SiteId(1)).expect("site 1");
    let graphs_indirect = site1.direct_graph_count() - (baseline_objects - 1) - 1;
    // -1 for the association object, minus pre-existing roots; what remains
    // is the composite's OWN graphs: exactly 1 with indirect propagation.
    let per_object = if n_children > 0 {
        join_bytes / (n_children + 1).max(1)
    } else {
        join_bytes
    };
    A2Row {
        n_children,
        graphs_indirect: graphs_indirect.max(1),
        graphs_direct: n_children + 1,
        join_bytes_indirect: join_bytes,
        join_bytes_direct: join_bytes + per_object * n_children,
    }
}

// ===========================================================================
// R1 — crash-recovery time vs WAL length (§3.4, DESIGN.md §S20)
// ===========================================================================

/// One crash-recovery timing row.
#[derive(Debug, Clone)]
pub struct R1Row {
    /// Committed transactions in the WAL at crash time.
    pub log_commits: u64,
    /// Bytes of the WAL at crash time (baseline checkpoint + commits).
    pub wal_bytes: u64,
    /// Wall time of the restart's local half: open the log, scan and
    /// CRC-check every frame, restore the checkpoint, replay the suffix.
    pub replay_ms: f64,
    /// Commit records actually replayed past the checkpoint.
    pub replayed: usize,
    /// Commits the surviving peer made while the site was down.
    pub missed: u64,
    /// Wall time of the networked half: §3.4 rejoin handshake plus the
    /// catch-up stream of the `missed` commits, to full quiescence.
    pub rejoin_ms: f64,
}

/// Measures what a crash costs at restart (DESIGN.md §S20): a durable replica
/// pair commits `log_commits` transactions (each fsynced to a real WAL
/// file under the system temp dir), one site "crashes" (is dropped), the
/// survivor commits `missed` more, and the victim is rebuilt with
/// [`Site::recover`] + `begin_rejoin`. Both halves of the restart are
/// timed separately; the function asserts the recovered site converges on
/// the survivor's value before reporting, so a wrong recovery can never
/// masquerade as a fast one.
pub fn r1_recovery(log_commits: u64, missed: u64) -> R1Row {
    use decaf_core::{wiring, CommitLog, ObjectName, Site, Transaction, TxnCtx, TxnError};
    use std::time::Instant;

    struct Incr(ObjectName);
    impl Transaction for Incr {
        fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
            let v = ctx.read_int(self.0)?;
            ctx.write_int(self.0, v + 1)
        }
    }

    let cfg = SiteConfig {
        durable: true,
        ..SiteConfig::default()
    };
    let mut a = Site::with_config(SiteId(1), cfg.clone());
    let mut b = Site::with_config(SiteId(2), cfg.clone());
    let oa = a.create_int(0);
    let ob = b.create_int(0);
    wiring::wire_pair(&mut a, oa, &mut b, ob);

    let dir = std::env::temp_dir().join(format!(
        "decaf-r1-{}-{log_commits}-{missed}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let (mut log, _) = CommitLog::open(&dir).expect("open scratch WAL");
    log.append_checkpoint(&b.checkpoint().expect("freshly wired pair is quiescent"))
        .expect("baseline checkpoint");

    // Phase 1: both sites live, every commit fsynced to b's log.
    for _ in 0..log_commits {
        b.execute(Box::new(Incr(ob)));
        wiring::run_to_quiescence(&mut [&mut a, &mut b]);
        for rec in b.drain_wal() {
            log.append_commit(&rec).expect("append commit");
        }
    }
    let wal_bytes = log.len_bytes();
    drop(log);
    drop(b); // crash: in-memory state gone, only the WAL survives

    // The survivor declares the failure and keeps committing, exactly the
    // state a SIGKILLed decaf-site finds on restart.
    a.notify_site_failed(SiteId(2));
    let _ = a.drain_outbox();
    for _ in 0..missed {
        a.execute(Box::new(Incr(oa)));
        let _ = a.drain_outbox();
    }

    // Restart, local half: scan + CRC + checkpoint restore + replay.
    let t0 = Instant::now();
    let (recovery, _log) = Site::recover(&dir, cfg).expect("recover from WAL");
    let replay_ms = t0.elapsed().as_secs_f64() * 1e3;
    let replayed = recovery.replayed;
    let mut b = recovery.site;

    // Restart, networked half: rejoin handshake + catch-up stream.
    let t1 = Instant::now();
    b.begin_rejoin();
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    let rejoin_ms = t1.elapsed().as_secs_f64() * 1e3;

    let expect = Some((log_commits + missed) as i64);
    assert_eq!(b.read_int_committed(ob), expect, "recovered site converged");
    assert_eq!(a.read_int_committed(oa), expect, "survivor agrees");
    let _ = std::fs::remove_dir_all(&dir);
    R1Row {
        log_commits,
        wal_bytes,
        replay_ms,
        replayed,
        missed,
        rejoin_ms,
    }
}

// ===========================================================================
// O1 — cross-site propagation latency via the trace stitcher (DESIGN.md §S21)
// ===========================================================================

/// One per-origin propagation row: how long this site's committed updates
/// took to reach (and commit at) its remotes, skew-corrected.
#[derive(Debug, Clone)]
pub struct O1Row {
    /// Originating site.
    pub origin: u32,
    /// Propagation samples (one per `(committed VT, remote site)` pair).
    pub samples: u64,
    /// Median propagation latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile propagation latency, ms.
    pub p99_ms: f64,
    /// Maximum observed propagation latency, ms.
    pub max_ms: f64,
}

/// One O1 run's stitched digest.
#[derive(Debug, Clone)]
pub struct O1Summary {
    /// Per-origin propagation rows, ascending by site id.
    pub rows: Vec<O1Row>,
    /// Committed transactions during the gesture phase, all sites.
    pub committed: u64,
    /// End-to-end spans the stitcher reconstructed.
    pub spans: usize,
    /// Stitch holes (must be 0 on a kill-free quiescent run).
    pub incomplete: usize,
    /// Median of each critical-path component over every span's slowest
    /// leg, in ms: (queue, wire, re-execute, notify).
    pub critical_p50_ms: (f64, f64, f64, f64),
    /// Skew-corrected one-way wire latency merged over every directed
    /// link: (samples, p50 ms, p99 ms, max ms).
    pub wire: (u64, f64, f64, f64),
}

/// Runs the O1 observability experiment: an 8-site checked run (kill-free,
/// one-way latency `t_ms`, latency jitter fraction `jitter`) traced with
/// envelope span contexts, then stitched by [`decaf_trace::Stitcher`] into
/// per-origin propagation histograms and critical-path breakdowns. The
/// workload is blind writes over per-site counters — conflict-free, so
/// every gesture commits and the trace measures pure propagation rather
/// than retry storms. The run doubles as an oracle check: any violation —
/// including a trace hole flagged by the trace-completeness oracle —
/// panics.
pub fn o1_propagation(t_ms: u64, jitter: f64, seed: u64) -> O1Summary {
    let cfg = decaf_check::ScenarioConfig {
        sites: 8,
        objects: 8,
        txns_per_site: 4,
        gap_ms: 60,
        latency_ms: t_ms,
        jitter,
        w_increment: 0,
        w_blind_write: 1,
        w_guess_heavy: 0,
        ..decaf_check::ScenarioConfig::default()
    };
    let report = decaf_check::run_once(&cfg, &decaf_check::FaultPlan::quiet(), seed, None);
    assert!(
        report.violations.is_empty(),
        "kill-free run must uphold every oracle: {:?}",
        report.violations
    );
    let mut stitcher = decaf_trace::Stitcher::new();
    stitcher
        .observe_jsonl(&report.trace.join("\n"))
        .expect("harness trace parses");
    let stitched = stitcher.finish();

    let ms = |ns: u64| ns as f64 / 1e6;
    let mut rows = Vec::new();
    for origin in 1..=cfg.sites {
        let mut merged = decaf_trace::Histogram::new();
        for ((from, _to), hist) in &stitched.propagation {
            if *from == origin {
                merged.merge(hist);
            }
        }
        let s = merged.summary();
        rows.push(O1Row {
            origin,
            samples: s.count,
            p50_ms: ms(s.p50),
            p99_ms: ms(s.p99),
            max_ms: ms(s.max),
        });
    }
    let mut wire = decaf_trace::Histogram::new();
    for link in stitched.links.values() {
        wire.merge(&link.latency);
    }
    let w = wire.summary();
    O1Summary {
        rows,
        committed: report.committed,
        spans: stitched.spans.len(),
        incomplete: stitched.incomplete.len(),
        critical_p50_ms: (
            ms(stitched.critical_queue.quantile(0.50)),
            ms(stitched.critical_wire.quantile(0.50)),
            ms(stitched.critical_reexec.quantile(0.50)),
            ms(stitched.critical_notify.quantile(0.50)),
        ),
        wire: (w.count, ms(w.p50), ms(w.p99), ms(w.max)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_matches_analytic_latencies_exactly() {
        for t in [10u64, 50] {
            for row in e1_commit_latency(t) {
                assert!(
                    (row.origin_ms - row.expect_origin).abs() < 1e-6,
                    "{} t={} origin {} != {}",
                    row.scenario,
                    t,
                    row.origin_ms,
                    row.expect_origin
                );
                assert!(
                    (row.remote_ms - row.expect_remote).abs() < 1e-6,
                    "{} t={} remote {} != {}",
                    row.scenario,
                    t,
                    row.remote_ms,
                    row.expect_remote
                );
            }
        }
    }

    #[test]
    fn e2_matches_analytic_latencies() {
        for row in e2_view_latency(20) {
            assert!(
                (row.optimistic_ms - row.expect_opt).abs() < 1e-6,
                "{}: opt {} != {}",
                row.placement,
                row.optimistic_ms,
                row.expect_opt
            );
            assert!(
                (row.pessimistic_ms - row.expect_pess).abs() < 1e-6,
                "{}: pess {} != {}",
                row.placement,
                row.pessimistic_ms,
                row.expect_pess
            );
        }
    }

    #[test]
    fn e3_blind_writes_never_roll_back() {
        let row = e3_lost_updates(1.0, 50, 30, 42);
        assert_eq!(row.rollbacks, 0);
        assert_eq!(row.update_inconsistencies, 0);
        assert!(row.committed > 20, "workload ran: {row:?}");
        assert!(row.lost_rate < 0.5, "sane loss: {row:?}");
    }

    #[test]
    fn e4_low_rate_has_low_rollbacks() {
        let slow = e4_rollback_rate(1.0 / 3.0, 50, 60, 42);
        assert!(
            slow.rollback_rate < 0.10,
            "rollback rate at 1/3 Hz should be small: {slow:?}"
        );
        let fast = e4_rollback_rate(2.0, 50, 60, 42);
        assert!(
            fast.rollback_rate > slow.rollback_rate,
            "rollbacks grow with rate: slow {slow:?} fast {fast:?}"
        );
    }

    #[test]
    fn e5_gvt_grows_with_network_decaf_does_not() {
        let small = e5_scalability(1, 20, 100);
        let large = e5_scalability(8, 20, 100);
        assert!(
            large.gvt_ms > small.gvt_ms * 1.5,
            "GVT latency must grow with network size: {small:?} {large:?}"
        );
        assert!(
            (large.decaf_ms - small.decaf_ms).abs() < 20.0 * 1.5,
            "DECAF latency must stay ~flat: {small:?} {large:?}"
        );
        assert!(large.gvt_ms > large.decaf_ms);
    }

    #[test]
    fn a1_delegation_saves_remote_latency() {
        let on = a1_delegate(20, true);
        let off = a1_delegate(20, false);
        assert!(
            on.remote_ms < off.remote_ms,
            "delegation must speed up remote commits: on {on:?} off {off:?}"
        );
        assert!(on.msgs <= off.msgs);
    }

    #[test]
    fn a2_indirect_keeps_one_graph() {
        let small = a2_propagation(2);
        let large = a2_propagation(32);
        assert_eq!(small.graphs_indirect, 1);
        assert_eq!(
            large.graphs_indirect, 1,
            "indirect: one graph regardless of n"
        );
        assert_eq!(large.graphs_direct, 33);
        assert!(large.join_bytes_direct > large.join_bytes_indirect);
    }

    #[test]
    fn o1_stitches_completely_with_analytic_uniform_latencies() {
        let s = o1_propagation(10, 0.0, 7);
        assert_eq!(s.incomplete, 0, "kill-free run must stitch with no holes");
        assert_eq!(s.committed as usize, s.spans, "every commit forms a span");
        for row in &s.rows {
            // 4 blind writes per origin, each propagating to 7 remotes.
            assert_eq!(row.samples, 28, "origin {}: {row:?}", row.origin);
        }
        // Uniform latency: the primary-origin site's commits reach every
        // remote exactly one hop later; delegated commits land everywhere
        // simultaneously (propagation 0). The log2 histogram's upper
        // bucket bound is capped at the observed max, so uniform samples
        // report exactly.
        assert!((s.rows[0].p50_ms - 10.0).abs() < 1e-9, "{:?}", s.rows[0]);
        assert!((s.rows[0].p99_ms - 10.0).abs() < 1e-9, "{:?}", s.rows[0]);
        for row in &s.rows[1..] {
            assert_eq!(row.max_ms, 0.0, "delegated commit: {row:?}");
        }
        let (_, p50, p99, _) = s.wire;
        assert!((p50 - 10.0).abs() < 1e-9 && (p99 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn r1_recovers_and_converges() {
        // Convergence is asserted inside r1_recovery; here we pin the
        // accounting: every logged commit replays, and the log grows with
        // the commit count.
        let small = r1_recovery(8, 4);
        assert_eq!(small.replayed, 8);
        assert_eq!(small.missed, 4);
        let large = r1_recovery(64, 4);
        assert_eq!(large.replayed, 64);
        assert!(
            large.wal_bytes > small.wal_bytes,
            "WAL grows with commits: {small:?} {large:?}"
        );
    }
}
