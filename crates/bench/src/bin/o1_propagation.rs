//! O1 — cross-site propagation latency via the trace stitcher
//! (DESIGN.md §S21).
//!
//! An 8-site kill-free checked run is traced with envelope span contexts,
//! stitched into skew-corrected per-origin propagation histograms, and
//! summarized per origin (p50/p99/max over that origin's 7 remotes) plus
//! the median critical-path breakdown of every span's slowest leg. Both
//! configurations use uniform latency, so every figure has an exact
//! analytic expectation (jittered stitching is exercised by the stitcher
//! unit tests and `tests/stitch_e2e.rs`, whose assertions are bounds, not
//! RNG-dependent point values).

use decaf_bench::{emit_table, o1_propagation};

fn main() {
    for (label, t_ms, jitter, seed) in [
        ("uniform t=10ms", 10u64, 0.0f64, 7u64),
        ("uniform t=50ms", 50, 0.0, 7),
    ] {
        let s = o1_propagation(t_ms, jitter, seed);
        let rows: Vec<Vec<String>> = s
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.origin.to_string(),
                    r.samples.to_string(),
                    format!("{:.2}", r.p50_ms),
                    format!("{:.2}", r.p99_ms),
                    format!("{:.2}", r.max_ms),
                ]
            })
            .collect();
        emit_table(
            &format!(
                "O1 [{label}]: per-origin propagation, 8 sites — {} committed, {} spans, {} holes",
                s.committed, s.spans, s.incomplete
            ),
            &["origin", "samples", "p50(ms)", "p99(ms)", "max(ms)"],
            &rows,
        );
        let (q, w, x, n) = s.critical_p50_ms;
        let (ws, wp50, wp99, wmax) = s.wire;
        emit_table(
            &format!("O1 [{label}]: critical path (medians, slowest leg) and wire latency"),
            &[
                "queue(ms)",
                "wire(ms)",
                "reexec(ms)",
                "notify(ms)",
                "link samples",
                "link p50(ms)",
                "link p99(ms)",
                "link max(ms)",
            ],
            &[vec![
                format!("{q:.2}"),
                format!("{w:.2}"),
                format!("{x:.2}"),
                format!("{n:.2}"),
                ws.to_string(),
                format!("{wp50:.2}"),
                format!("{wp99:.2}"),
                format!("{wmax:.2}"),
            ]],
        );
    }
}
