//! R1 — crash-recovery time vs WAL length (§3.4, DESIGN.md §S20).
//!
//! A durable replica pair commits N transactions (each fsynced to a real
//! WAL file), one site crashes, the survivor commits a fixed backlog, and
//! the victim restarts via `Site::recover` + the rejoin protocol. The two
//! halves of the restart — local scan-and-replay, networked catch-up —
//! are timed separately to show how each scales with log length.

use decaf_bench::{emit_table, r1_recovery};

fn main() {
    let missed = 128u64;
    let mut rows = Vec::new();
    for log_commits in [64u64, 512, 4096] {
        let r = r1_recovery(log_commits, missed);
        rows.push(vec![
            r.log_commits.to_string(),
            format!("{:.1}", r.wal_bytes as f64 / 1024.0),
            format!("{:.2}", r.replay_ms),
            r.replayed.to_string(),
            r.missed.to_string(),
            format!("{:.2}", r.rejoin_ms),
            format!("{:.2}", r.replay_ms + r.rejoin_ms),
        ]);
    }
    emit_table(
        "R1: restart cost vs WAL length — scan+replay, then catch-up (§3.4)",
        &[
            "log(commits)",
            "wal(KiB)",
            "replay(ms)",
            "replayed",
            "missed",
            "catch-up(ms)",
            "restart total(ms)",
        ],
        &rows,
    );
}
