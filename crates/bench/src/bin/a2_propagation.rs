//! A2 — direct vs indirect propagation ablation (paper §3.2).
//!
//! "By default, an object embedded within a composite inherits the
//! replication graph of its root... In addition to saving space, indirect
//! replication avoids the problem that small changes to the embedding
//! structure could end up changing a large number of objects."

use decaf_bench::{a2_propagation, emit_table};

fn main() {
    let mut rows = Vec::new();
    for n in [1usize, 4, 16, 64, 256] {
        let r = a2_propagation(n);
        rows.push(vec![
            r.n_children.to_string(),
            r.graphs_indirect.to_string(),
            r.graphs_direct.to_string(),
            r.join_bytes_indirect.to_string(),
            r.join_bytes_direct.to_string(),
        ]);
    }
    emit_table(
        "A2: replication-graph storage & join traffic, composite of n children (paper §3.2)",
        &[
            "children",
            "graphs (indirect)",
            "graphs (direct)",
            "join bytes (indirect)",
            "join bytes (direct, est.)",
        ],
        &rows,
    );
    println!("\nindirect propagation keeps ONE graph per composite regardless of size;");
    println!("a direct scheme stores and re-ships one graph per embedded object.");
}
