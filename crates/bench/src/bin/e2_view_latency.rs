//! E2 — view-notification latency (paper §5.1.2).
//!
//! Optimistic views are notified immediately at the originator and after t
//! at replicas; pessimistic views at 2t (originator) and no more than 3t
//! (non-originating sites). "An optimistic view notification will occur 2t
//! ms before the corresponding pessimistic view notification."

use decaf_bench::{e2_view_latency, emit_table};

fn main() {
    let mut rows = Vec::new();
    for t in [5u64, 10, 25, 50, 100, 200] {
        for r in e2_view_latency(t) {
            rows.push(vec![
                r.t_ms.to_string(),
                r.placement.to_string(),
                format!("{:.1}", r.optimistic_ms),
                format!("{:.1}", r.expect_opt),
                format!("{:.1}", r.pessimistic_ms),
                format!("{:.1}", r.expect_pess),
            ]);
        }
    }
    emit_table(
        "E2: view notification latency (paper §5.1.2)",
        &[
            "t(ms)",
            "view placement",
            "opt(ms)",
            "paper",
            "pess(ms)",
            "paper",
        ],
        &rows,
    );
}
