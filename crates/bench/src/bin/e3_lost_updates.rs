//! E3 — lost updates under blind-write load (paper §5.2.2).
//!
//! "Even at rates of one update per second from both parties of a
//! two-party collaboration, the lost update rate was below 20.1 percent."
//! Blind writes never roll back, so update inconsistencies stay at zero.

use decaf_bench::{e3_lost_updates, emit_table};

fn main() {
    let mut rows = Vec::new();
    for t_ms in [50u64, 100] {
        for rate in [0.2, 0.5, 1.0, 2.0, 5.0] {
            let r = e3_lost_updates(rate, t_ms, 120, 42);
            rows.push(vec![
                t_ms.to_string(),
                format!("{rate:.1}"),
                r.committed.to_string(),
                r.lost.to_string(),
                format!("{:.1}%", r.lost_rate * 100.0),
                r.rollbacks.to_string(),
                r.update_inconsistencies.to_string(),
            ]);
        }
    }
    emit_table(
        "E3: lost updates, two-party blind writes, 120 s (paper §5.2.2)",
        &[
            "t(ms)",
            "rate/s per party",
            "committed",
            "lost",
            "lost rate",
            "rollbacks",
            "upd-inconsistencies",
        ],
        &rows,
    );
    println!("\npaper: at 1.0/s per party the lost-update rate was below 20.1%;");
    println!("blind writes produce no rollbacks and no update inconsistencies.");
}
