//! E5 — scalability vs a GVT global sweep (paper §5.1.3).
//!
//! "In a hypothetical example of a very large network with large numbers of
//! relatively small replica sets (e.g., replicas at sites A, B, and C, at
//! sites C, D, and E, at E, F, and G, etc.) the sweep to compute a GVT can
//! be very time-consuming, since it is proportional to the size of the
//! network. But in our algorithm, each replica set will have its own
//! primary site, and each transaction will require confirmations from a
//! very small number of such primary sites."

use decaf_bench::{e5_scalability, emit_table};

fn main() {
    let mut rows = Vec::new();
    for k in [1usize, 2, 4, 8, 16, 32] {
        let r = e5_scalability(k, 20, 100);
        rows.push(vec![
            r.k.to_string(),
            r.sites.to_string(),
            format!("{:.1}", r.decaf_ms),
            format!("{:.1}", r.gvt_ms),
            format!("{:.1}x", r.gvt_ms / r.decaf_ms),
        ]);
    }
    emit_table(
        "E5: commit latency vs network size, chained 3-site replica sets, t = 20 ms (paper §5.1.3)",
        &["k sets", "sites", "DECAF(ms)", "GVT sweep(ms)", "ratio"],
        &rows,
    );
    println!(
        "\npaper: DECAF stays O(1) in network size; a Jefferson-style GVT sweep grows linearly."
    );
}
