//! P1 — hot-path throughput: wire codec v2 + batching, and CoW snapshots.
//!
//! Two sections, matching the two halves of the hot-path overhaul:
//!
//! 1. **Wire throughput** (threaded substrate): a ring of real OS threads
//!    exchanges protocol envelopes through [`decaf_net::threaded::ThreadedNet`],
//!    frame-encoding each message exactly as the TCP transport does. Modes:
//!    `v1` (per-envelope JSON `Data` frames, the pre-overhaul wire format),
//!    `v2` (per-envelope binary `DataV2` frames), and `v2+batch` (up to 64
//!    envelopes coalesced into one `Batch` frame). Throughput counts
//!    envelopes fully encoded, transported, and decoded per second.
//!
//! 2. **CoW rollback/re-execute** (engine): the §3.1 rollback machinery on
//!    composites of K elements. `rollback` times a transaction that writes a
//!    K-element list and then aborts (purge + re-fold); `conflict` times a
//!    round of conflicting read-modify-write transactions at two wired sites
//!    (rollback + automatic re-execution at the losing site).
//!
//! Flags: `--json` emits one JSON document on stdout (this is what
//! `BENCH_throughput.json` is produced from); `--smoke` shrinks iteration
//! counts for CI. The process exits non-zero if any transported envelope
//! was lost, so CI can gate on the exit status as well as the JSON.
//!
//! Run: `cargo run --release -p decaf-bench --bin p1_throughput -- --json`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use decaf_bench::print_table;
use decaf_core::{
    wiring, Blueprint, Envelope, Message, ObjectAddr, ObjectName, ScalarValue, Site, Transaction,
    TxnCtx, TxnError, TxnPropagate, UpdateItem, WireOp,
};
use decaf_net::threaded::ThreadedNet;
use decaf_net::wire::{
    decode_batch, decode_envelope, decode_envelope_v2, encode_batch_parts, encode_envelope,
    encode_envelope_v2, encode_frame, FrameKind, FrameReader,
};
use decaf_net::TransportEvent;
use decaf_vt::{SiteId, VirtualTime};

/// Envelopes coalesced per `Batch` frame, mirroring `TcpConfig::batch_max`.
const BATCH_MAX: usize = 64;

// ===========================================================================
// Section 1: wire throughput over the threaded substrate
// ===========================================================================

/// A representative protocol envelope: one-update transaction propagation
/// carrying a string payload of the requested size.
fn mk_envelope(from: SiteId, to: SiteId, seq: u64, payload_len: usize) -> Envelope {
    let clock = VirtualTime::new(seq, from);
    Envelope {
        from,
        to,
        clock,
        msg: Message::Txn(TxnPropagate {
            txn: clock,
            origin: from,
            updates: vec![UpdateItem {
                addr: ObjectAddr::Direct(ObjectName::new(from, 1)),
                t_r: clock,
                t_g: VirtualTime::ZERO,
                op: WireOp::SetScalar(ScalarValue::Str("x".repeat(payload_len))),
                needs_check: true,
            }],
            reads: Vec::new(),
            delegate: None,
        }),
        span: None,
    }
}

#[derive(Clone, Copy, PartialEq)]
enum WireMode {
    V1,
    V2,
    V2Batch,
}

impl WireMode {
    fn label(self) -> &'static str {
        match self {
            WireMode::V1 => "v1 json",
            WireMode::V2 => "v2 binary",
            WireMode::V2Batch => "v2+batch",
        }
    }
}

struct WireRow {
    sites: usize,
    payload: usize,
    mode: WireMode,
    envelopes: u64,
    frames: u64,
    wire_bytes: u64,
    elapsed: Duration,
}

impl WireRow {
    fn env_per_sec(&self) -> f64 {
        self.envelopes as f64 / self.elapsed.as_secs_f64()
    }
}

/// Runs one ring configuration: each of `sites` threads sends `per_site`
/// envelopes to its successor while decoding the `per_site` envelopes
/// arriving from its predecessor. Returns the measured row.
fn run_wire(sites: usize, payload: usize, mode: WireMode, per_site: u64) -> WireRow {
    let mut net: ThreadedNet<Vec<u8>> = ThreadedNet::new(sites, Duration::ZERO);
    let wire_bytes = Arc::new(AtomicU64::new(0));
    let frames = Arc::new(AtomicU64::new(0));
    let decoded = Arc::new(AtomicU64::new(0));

    let start = Instant::now();
    let mut handles = Vec::new();
    for i in 0..sites {
        let ep = net.endpoint(SiteId(i as u32));
        let next = SiteId(((i + 1) % sites) as u32);
        let me = SiteId(i as u32);
        let wire_bytes = Arc::clone(&wire_bytes);
        let frames = Arc::clone(&frames);
        let decoded = Arc::clone(&decoded);
        handles.push(std::thread::spawn(move || {
            // Send phase: encode + frame exactly as the TCP writer would.
            let send_frame = |kind: FrameKind, payload: &[u8]| {
                let frame = encode_frame(kind, payload);
                wire_bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
                frames.fetch_add(1, Ordering::Relaxed);
                ep.send(next, frame);
            };
            match mode {
                WireMode::V1 => {
                    for seq in 0..per_site {
                        let env = mk_envelope(me, next, seq + 1, payload);
                        let p = encode_envelope(&env).expect("v1 encode");
                        send_frame(FrameKind::Data, &p);
                    }
                }
                WireMode::V2 => {
                    for seq in 0..per_site {
                        let env = mk_envelope(me, next, seq + 1, payload);
                        send_frame(FrameKind::DataV2, &encode_envelope_v2(&env));
                    }
                }
                WireMode::V2Batch => {
                    let mut seq = 0;
                    while seq < per_site {
                        let n = BATCH_MAX.min((per_site - seq) as usize);
                        let parts: Vec<Vec<u8>> = (0..n)
                            .map(|k| {
                                encode_envelope_v2(&mk_envelope(
                                    me,
                                    next,
                                    seq + k as u64 + 1,
                                    payload,
                                ))
                            })
                            .collect();
                        send_frame(FrameKind::Batch, &encode_batch_parts(&parts));
                        seq += n as u64;
                    }
                }
            }
            // Receive phase: reassemble + decode everything the predecessor
            // sent us.
            let mut reader = FrameReader::new();
            let mut got: u64 = 0;
            while got < per_site {
                let bytes = match ep.recv() {
                    Ok(TransportEvent::Message { msg, .. }) => msg,
                    Ok(TransportEvent::SiteFailed { .. }) => continue,
                    Err(_) => break,
                };
                reader.feed(&bytes);
                while let Ok(Some(frame)) = reader.next_frame() {
                    got += match frame.kind {
                        FrameKind::Data => decode_envelope(&frame.payload).map(|_| 1).unwrap_or(0),
                        FrameKind::DataV2 => {
                            decode_envelope_v2(&frame.payload).map(|_| 1).unwrap_or(0)
                        }
                        FrameKind::Batch => decode_batch(&frame.payload)
                            .map(|envs| envs.len() as u64)
                            .unwrap_or(0),
                        _ => 0,
                    };
                }
            }
            decoded.fetch_add(got, Ordering::Relaxed);
        }));
    }
    for h in handles {
        let _ = h.join();
    }
    let elapsed = start.elapsed();
    net.shutdown();
    WireRow {
        sites,
        payload,
        mode,
        envelopes: decoded.load(Ordering::Relaxed),
        frames: frames.load(Ordering::Relaxed),
        wire_bytes: wire_bytes.load(Ordering::Relaxed),
        elapsed,
    }
}

// ===========================================================================
// Section 2: CoW rollback / re-execute on K-element composites
// ===========================================================================

struct FillList(ObjectName, usize);
impl Transaction for FillList {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        for _ in 0..self.1 {
            ctx.list_push(self.0, Blueprint::Int(0))?;
        }
        Ok(())
    }
}

/// Writes the big list, then aborts: the engine must purge the tentative
/// write and re-fold the composite (§3.1 rollback).
struct InsertThenFail(ObjectName);
impl Transaction for InsertThenFail {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        ctx.list_insert(self.0, 0, Blueprint::Int(1))?;
        Err(TxnError::app("p1 rollback probe"))
    }
}

/// Read-modify-write that keeps the list length stable: drop the tail
/// entry, push a fresh head. Two of these racing from different sites
/// force a conflict rollback + automatic re-execution at the loser.
struct RotateList(ObjectName);
impl Transaction for RotateList {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        let n = ctx.list_len(self.0)?;
        if n > 0 {
            ctx.list_remove(self.0, n - 1)?;
        }
        ctx.list_insert(self.0, 0, Blueprint::Int(7))?;
        Ok(())
    }
}

struct CowRow {
    elems: usize,
    metric: &'static str,
    iters: u64,
    elapsed: Duration,
    retries: u64,
}

impl CowRow {
    fn us_per_iter(&self) -> f64 {
        self.elapsed.as_micros() as f64 / self.iters as f64
    }
}

/// Times `iters` abort-rollback cycles on a single site's K-element list.
fn run_rollback(elems: usize, iters: u64) -> CowRow {
    let mut a = Site::new(SiteId(1));
    let list = a.create_list();
    a.execute(Box::new(FillList(list, elems)));
    let start = Instant::now();
    for _ in 0..iters {
        a.execute(Box::new(InsertThenFail(list)));
    }
    let elapsed = start.elapsed();
    CowRow {
        elems,
        metric: "rollback",
        iters,
        elapsed,
        retries: 0,
    }
}

/// Times `iters` conflict rounds between two wired replicas of a K-element
/// list: both sites rotate concurrently, messages are pumped, and exactly
/// one side rolls back and re-executes.
fn run_conflict(elems: usize, iters: u64) -> CowRow {
    let mut a = Site::new(SiteId(1));
    let mut b = Site::new(SiteId(2));
    let la = a.create_list();
    let lb = b.create_list();
    wiring::wire_pair(&mut a, la, &mut b, lb);
    a.execute(Box::new(FillList(la, elems)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    let start = Instant::now();
    for _ in 0..iters {
        a.execute(Box::new(RotateList(la)));
        b.execute(Box::new(RotateList(lb)));
        wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    }
    let elapsed = start.elapsed();
    CowRow {
        elems,
        metric: "conflict",
        iters,
        elapsed,
        retries: a.stats().retries + b.stats().retries,
    }
}

// ===========================================================================
// Output
// ===========================================================================

fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_table(out: &mut String, title: &str, headers: &[&str], rows: &[Vec<String>]) {
    out.push_str("{\"title\":");
    json_str(out, title);
    out.push_str(",\"headers\":[");
    for (i, h) in headers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_str(out, h);
    }
    out.push_str("],\"rows\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, cell) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            json_str(out, cell);
        }
        out.push(']');
    }
    out.push_str("]}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let smoke = args.iter().any(|a| a == "--smoke");

    // Wire sweep: sites x payload x mode.
    let per_site: u64 = if smoke { 2_000 } else { 40_000 };
    let mut wire_rows = Vec::new();
    for &sites in &[2usize, 8] {
        for &payload in &[8usize, 256] {
            for &mode in &[WireMode::V1, WireMode::V2, WireMode::V2Batch] {
                wire_rows.push(run_wire(sites, payload, mode, per_site));
            }
        }
    }
    let expected: u64 = wire_rows.iter().map(|r| r.sites as u64 * per_site).sum();
    let delivered: u64 = wire_rows.iter().map(|r| r.envelopes).sum();

    // CoW sweep: K x metric.
    let mut cow_rows = Vec::new();
    for &elems in &[10usize, 100, 1_000] {
        let (r_iters, c_iters) = if smoke { (50, 10) } else { (2_000, 200) };
        cow_rows.push(run_rollback(elems, r_iters));
        cow_rows.push(run_conflict(elems, c_iters));
    }

    let wire_table: Vec<Vec<String>> = wire_rows
        .iter()
        .map(|r| {
            vec![
                r.sites.to_string(),
                r.payload.to_string(),
                r.mode.label().to_string(),
                r.envelopes.to_string(),
                r.frames.to_string(),
                r.wire_bytes.to_string(),
                format!("{:.1}", r.elapsed.as_secs_f64() * 1e3),
                format!("{:.0}", r.env_per_sec()),
            ]
        })
        .collect();
    let wire_headers = [
        "sites",
        "payload B",
        "mode",
        "envelopes",
        "frames",
        "wire bytes",
        "ms",
        "env/s",
    ];
    let cow_table: Vec<Vec<String>> = cow_rows
        .iter()
        .map(|r| {
            vec![
                r.elems.to_string(),
                r.metric.to_string(),
                r.iters.to_string(),
                format!("{:.1}", r.elapsed.as_secs_f64() * 1e3),
                format!("{:.1}", r.us_per_iter()),
                r.retries.to_string(),
            ]
        })
        .collect();
    let cow_headers = ["elems", "metric", "iters", "total ms", "us/iter", "retries"];

    let ok = delivered >= expected;
    if json {
        let mut out = String::from("{\"bench\":\"p1_throughput\",\"mode\":");
        json_str(&mut out, if smoke { "smoke" } else { "full" });
        out.push_str(",\"sections\":[");
        json_table(
            &mut out,
            "P1 wire throughput (threaded substrate)",
            &wire_headers,
            &wire_table,
        );
        out.push(',');
        json_table(
            &mut out,
            "P1 CoW rollback/re-execute",
            &cow_headers,
            &cow_table,
        );
        out.push_str("],\"check\":{\"sent\":");
        out.push_str(&expected.to_string());
        out.push_str(",\"delivered\":");
        out.push_str(&delivered.to_string());
        out.push_str(",\"ok\":");
        out.push_str(if ok { "true" } else { "false" });
        out.push_str("}}");
        println!("{out}");
    } else {
        print_table(
            "P1 wire throughput (threaded substrate)",
            &wire_headers,
            &wire_table,
        );
        print_table("P1 CoW rollback/re-execute", &cow_headers, &cow_table);
        println!(
            "\nwire check: sent {expected}, delivered {delivered} ({})",
            if ok { "ok" } else { "LOST ENVELOPES" }
        );
    }
    if !ok {
        std::process::exit(1);
    }
}
