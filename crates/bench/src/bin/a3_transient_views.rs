//! A3 — transient-view consistency: DECAF vs an ORESTE-style baseline
//! (paper §6).
//!
//! "In the ORESTE model, a transaction that changes an object's color can
//! reasonably be said to commute with a transaction that moves an object
//! from container A to container B ... But, once views or read-only
//! transactions or system state in nonquiescent conditions is taken into
//! account, some sites might see a transition in which a blue object was at
//! A and others a transition in which a red object was at B."
//!
//! This harness runs the exact scenario on both systems and reports what
//! each site's view observed.

use decaf_bench::emit_table;
use decaf_core::{RecordingView, ScalarValue, ViewEvent, ViewMode};
use decaf_net::sim::{LatencyModel, SimTime};
use decaf_oreste::{Op, OresteSite};
use decaf_vt::SiteId;
use decaf_workload::{BlindWrite, SimWorld};

fn main() {
    // ---- ORESTE: commuting color/move ops, immediate views --------------
    let mut a = OresteSite::new(SiteId(1), 2);
    let mut b = OresteSite::new(SiteId(2), 2);
    let color = a.perform(Op::SetColor("blue".into()));
    let mv = b.perform(Op::MoveTo("B".into()));
    b.integrate(color);
    a.integrate(mv);

    let fmt_states = |s: &OresteSite| {
        s.observed
            .iter()
            .map(|st| st.to_string())
            .collect::<Vec<_>>()
            .join("  ->  ")
    };
    let mut rows = vec![
        vec!["ORESTE site 1".into(), fmt_states(&a)],
        vec!["ORESTE site 2".into(), fmt_states(&b)],
    ];

    // ---- DECAF: the same two "attributes" as replicated scalars, a
    // pessimistic view at each site -----------------------------------------
    let mut world = SimWorld::new(2, LatencyModel::uniform(SimTime::from_millis(25)));
    let color_objs = world.wire_int(0); // 0 = red, 1 = blue
    let pos_objs = world.wire_int(0); // 0 = container A, 1 = container B
    let mut logs = Vec::new();
    for (i, site) in [SiteId(1), SiteId(2)].into_iter().enumerate() {
        let watch = vec![color_objs[i], pos_objs[i]];
        let view = RecordingView::new(watch.clone());
        logs.push(view.log());
        world
            .site(site)
            .attach_view(Box::new(view), &watch, ViewMode::Pessimistic);
    }
    world.site(SiteId(1)).execute(Box::new(BlindWrite {
        object: color_objs[0],
        value: 1,
    }));
    world.site(SiteId(2)).execute(Box::new(BlindWrite {
        object: pos_objs[1],
        value: 1,
    }));
    world.run_to_quiescence();

    for (i, log) in logs.iter().enumerate() {
        let events = log.lock().expect("log");
        let states: Vec<String> = events
            .iter()
            .filter_map(|e| match e {
                ViewEvent::Update { values, .. } => {
                    let get = |o| {
                        values
                            .iter()
                            .find(|(obj, _)| *obj == o)
                            .and_then(|(_, v)| match v {
                                ScalarValue::Int(x) => Some(*x),
                                _ => None,
                            })
                            .unwrap_or(0)
                    };
                    let color = if get(color_objs[i]) == 1 {
                        "blue"
                    } else {
                        "red"
                    };
                    let pos = if get(pos_objs[i]) == 1 { "B" } else { "A" };
                    Some(format!("{color} object at {pos}"))
                }
                _ => None,
            })
            .collect();
        rows.push(vec![
            format!("DECAF site {} (pessimistic)", i + 1),
            states.join("  ->  "),
        ]);
    }

    emit_table(
        "A3: transitions observed by each site's view (paper §6 example)",
        &["system / site", "observed transitions"],
        &rows,
    );
    println!();
    println!("ORESTE's sites observe incompatible intermediate states (blue@A vs");
    println!("red@B) — no serial execution contains both. DECAF's pessimistic views");
    println!("observe prefixes of ONE virtual-time order, identical at every site.");
}
