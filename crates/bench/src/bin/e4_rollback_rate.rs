//! E4 — rollback rate under read-write load (paper §5.2.2).
//!
//! "For transactions involving both reads and writes and one party updating
//! once per second on the average, an update rate by a second party of once
//! per three seconds or more produced rollback rates below 2 percent; at
//! higher update rates, rollbacks were frequent enough to produce
//! significant rates of update inconsistencies."

use decaf_bench::{e4_rollback_rate, emit_table};

fn main() {
    let mut rows = Vec::new();
    for b_rate in [0.1, 0.2, 1.0 / 3.0, 0.5, 1.0, 2.0] {
        let r = e4_rollback_rate(b_rate, 50, 300, 42);
        rows.push(vec![
            format!("{b_rate:.3}"),
            r.started.to_string(),
            r.rollbacks.to_string(),
            format!("{:.2}%", r.rollback_rate * 100.0),
            r.update_inconsistencies.to_string(),
            r.retries.to_string(),
        ]);
    }
    emit_table(
        "E4: rollback rate, A at 1/s + B at b_rate, t = 50 ms, 300 s (paper §5.2.2)",
        &[
            "B rate/s",
            "started",
            "rollbacks",
            "rollback rate",
            "upd-inconsistencies",
            "retries",
        ],
        &rows,
    );
    println!("\npaper: B at <= 1/3 per second keeps rollbacks below 2%;");
    println!("higher B rates make rollbacks frequent (suppress optimism past a threshold).");
}
