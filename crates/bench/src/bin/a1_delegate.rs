//! A1 — delegate-commit ablation (paper §3.1).
//!
//! With a single remote primary and no RC guesses, the originator delegates
//! the commit decision: the primary commits in t instead of 3t and third
//! replicas in 2t instead of 3t, with fewer messages.

use decaf_bench::{a1_delegate, emit_table};

fn main() {
    let mut rows = Vec::new();
    for t in [10u64, 50, 100] {
        for delegated in [true, false] {
            let r = a1_delegate(t, delegated);
            rows.push(vec![
                r.t_ms.to_string(),
                if r.delegated { "on" } else { "off" }.to_string(),
                format!("{:.1}", r.origin_ms),
                format!("{:.1}", r.remote_ms),
                r.msgs.to_string(),
            ]);
        }
    }
    emit_table(
        "A1: delegate-commit ablation, 3-party single-remote-primary (paper §3.1)",
        &[
            "t(ms)",
            "delegate",
            "origin(ms)",
            "remote mean(ms)",
            "messages",
        ],
        &rows,
    );
}
