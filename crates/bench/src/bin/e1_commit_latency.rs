//! E1 — commit latency (paper §5.1.1).
//!
//! Reproduces the analytic claims: a transaction commits in 2t at the
//! originating site and 3t at other sites in the general (multi-primary)
//! case; immediately / in t when the single primary is the originator; in
//! t at the primary and 2t elsewhere with delegate commit.

use decaf_bench::{e1_commit_latency, emit_table};

fn main() {
    let mut rows = Vec::new();
    for t in [5u64, 10, 25, 50, 100, 200] {
        for r in e1_commit_latency(t) {
            rows.push(vec![
                r.t_ms.to_string(),
                r.scenario.to_string(),
                format!("{:.1}", r.origin_ms),
                format!("{:.1}", r.expect_origin),
                format!("{:.1}", r.remote_ms),
                format!("{:.1}", r.expect_remote),
            ]);
        }
    }
    emit_table(
        "E1: commit latency vs network latency t (paper §5.1.1)",
        &[
            "t(ms)",
            "scenario",
            "origin(ms)",
            "paper",
            "remote(ms)",
            "paper",
        ],
        &rows,
    );
}
