//! Criterion micro-benchmarks for the DECAF engine: raw engine costs that
//! complement the simulated-latency experiments (`src/bin/e*`), one group
//! per experiment family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use decaf_core::{wiring, Blueprint, ObjectName, Site, Transaction, TxnCtx, TxnError, ViewMode};
use decaf_vt::SiteId;

struct Incr(ObjectName);
impl Transaction for Incr {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        let v = ctx.read_int(self.0)?;
        ctx.write_int(self.0, v + 1)
    }
}

struct Push(ObjectName);
impl Transaction for Push {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        ctx.list_push(self.0, Blueprint::Int(1))?;
        Ok(())
    }
}

/// Cost of one local read-modify-write transaction (commit immediate:
/// single-site object).
fn bench_local_txn(c: &mut Criterion) {
    c.bench_function("local_txn_commit", |b| {
        let mut site = Site::new(SiteId(1));
        let obj = site.create_int(0);
        b.iter(|| {
            site.execute(Box::new(Incr(obj)));
        });
    });
}

/// Full two-site round trip: execute at the non-primary site, deliver all
/// protocol messages to quiescence.
fn bench_two_site_roundtrip(c: &mut Criterion) {
    c.bench_function("two_site_roundtrip", |b| {
        let mut a = Site::new(SiteId(1));
        let mut s2 = Site::new(SiteId(2));
        let oa = a.create_int(0);
        let ob = s2.create_int(0);
        wiring::wire_pair(&mut a, oa, &mut s2, ob);
        b.iter(|| {
            s2.execute(Box::new(Incr(ob)));
            wiring::run_to_quiescence(&mut [&mut a, &mut s2]);
        });
    });
}

/// Replica-set size sweep: cost of propagating one update to n replicas.
fn bench_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_fanout");
    for n in [2u32, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut sites: Vec<Site> = (1..=n).map(|i| Site::new(SiteId(i))).collect();
            let objs: Vec<ObjectName> = sites.iter_mut().map(|s| s.create_int(0)).collect();
            {
                let mut parts: Vec<(&mut Site, ObjectName)> =
                    sites.iter_mut().zip(objs.iter().copied()).collect();
                wiring::wire_replicas(&mut parts);
            }
            b.iter(|| {
                sites[0].execute(Box::new(Incr(objs[0])));
                let mut refs: Vec<&mut Site> = sites.iter_mut().collect();
                wiring::run_to_quiescence(&mut refs);
            });
        });
    }
    group.finish();
}

/// Composite structural op + indirect path propagation to a replica.
fn bench_composite_push(c: &mut Criterion) {
    c.bench_function("composite_push_replicated", |b| {
        let mut a = Site::new(SiteId(1));
        let mut s2 = Site::new(SiteId(2));
        let la = a.create_list();
        let lb = s2.create_list();
        wiring::wire_pair(&mut a, la, &mut s2, lb);
        b.iter(|| {
            a.execute(Box::new(Push(la)));
            wiring::run_to_quiescence(&mut [&mut a, &mut s2]);
        });
    });
}

/// View notification overhead: optimistic update+commit per transaction.
fn bench_view_notification(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_notification");
    for mode in [ViewMode::Optimistic, ViewMode::Pessimistic] {
        let name = match mode {
            ViewMode::Optimistic => "optimistic",
            ViewMode::Pessimistic => "pessimistic",
        };
        group.bench_function(name, |b| {
            let mut a = Site::new(SiteId(1));
            let mut s2 = Site::new(SiteId(2));
            let oa = a.create_int(0);
            let ob = s2.create_int(0);
            wiring::wire_pair(&mut a, oa, &mut s2, ob);
            let view = decaf_core::RecordingView::new(vec![]);
            a.attach_view(Box::new(view), &[oa], mode);
            b.iter(|| {
                s2.execute(Box::new(Incr(ob)));
                wiring::run_to_quiescence(&mut [&mut a, &mut s2]);
            });
        });
    }
    group.finish();
}

/// GVT baseline: full sweep cost over n sites.
fn bench_gvt_sweep(c: &mut Criterion) {
    use decaf_gvt::GvtSite;
    let mut group = c.benchmark_group("gvt_sweep");
    for n in [3u32, 9, 33] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let ring: Vec<SiteId> = (1..=n).map(SiteId).collect();
            let mut sites: Vec<GvtSite> = (1..=n)
                .map(|i| GvtSite::new(SiteId(i), ring.clone()))
                .collect();
            for s in sites.iter_mut() {
                let o = s.create_int("x", 0);
                s.add_replicas(o, vec![SiteId(1), SiteId(2)]);
            }
            b.iter(|| {
                sites[0].write(decaf_gvt::GvtObject("x".into()), 1);
                sites[0].start_sweep();
                loop {
                    let mut envs = Vec::new();
                    for s in sites.iter_mut() {
                        envs.extend(s.drain_outbox());
                    }
                    if envs.is_empty() {
                        break;
                    }
                    for e in envs {
                        if let Some(s) = sites.iter_mut().find(|s| s.id() == e.to) {
                            s.handle_message(e);
                        }
                    }
                }
                for s in sites.iter_mut() {
                    s.drain_events();
                }
            });
        });
    }
    group.finish();
}

/// Checkpoint + JSON serialization cost as object count grows (§5.3
/// persistence).
fn bench_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint_json");
    for n in [10usize, 100, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut site = Site::new(SiteId(1));
            for i in 0..n {
                site.create_int(i as i64);
            }
            b.iter(|| {
                let cp = site.checkpoint().expect("quiescent");
                criterion::black_box(serde_json::to_vec(&cp).expect("serializable"))
            });
        });
    }
    group.finish();
}

/// Full join-protocol cost (invitation → merged graphs → value adoption →
/// commit) for a composite of n children.
fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_protocol");
    group.sample_size(20);
    for n in [1usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut a = Site::new(SiteId(1));
                let mut s2 = Site::new(SiteId(2));
                let list = a.create_list();
                struct PushN(ObjectName, usize);
                impl Transaction for PushN {
                    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
                        for i in 0..self.1 {
                            ctx.list_push(self.0, Blueprint::Int(i as i64))?;
                        }
                        Ok(())
                    }
                }
                a.execute(Box::new(PushN(list, n)));
                let assoc = a.create_association();
                let rel = a.create_relation(assoc, "bench", list).expect("relation");
                wiring::run_to_quiescence(&mut [&mut a, &mut s2]);
                let inv = a.make_invitation(assoc, rel).expect("invitation");
                let local = s2.create_list();
                s2.join(inv, local).expect("join");
                wiring::run_to_quiescence(&mut [&mut a, &mut s2]);
                criterion::black_box(s2.list_children_current(local).len())
            });
        });
    }
    group.finish();
}

/// ORESTE straggler integration: in-order (cheap) vs undo/redo replay.
fn bench_oreste_integration(c: &mut Criterion) {
    use decaf_oreste::{Op, OresteSite};
    let mut group = c.benchmark_group("oreste_integrate");
    group.bench_function("in_order", |b| {
        let mut src = OresteSite::new(SiteId(9), 1);
        let ops: Vec<_> = (0..64)
            .map(|i| src.perform(Op::AppendLabel(format!("{i}"))))
            .collect();
        b.iter(|| {
            let mut s = OresteSite::new(SiteId(1), 1);
            for o in &ops {
                s.integrate(o.clone());
            }
            criterion::black_box(s.state().label.len())
        });
    });
    group.bench_function("reversed_undo_redo", |b| {
        let mut src = OresteSite::new(SiteId(9), 1);
        let mut ops: Vec<_> = (0..64)
            .map(|i| src.perform(Op::AppendLabel(format!("{i}"))))
            .collect();
        ops.reverse();
        b.iter(|| {
            let mut s = OresteSite::new(SiteId(1), 1);
            for o in &ops {
                s.integrate(o.clone());
            }
            criterion::black_box(s.reorders)
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets =
        bench_local_txn,
        bench_two_site_roundtrip,
        bench_fanout,
        bench_composite_push,
        bench_view_notification,
        bench_gvt_sweep,
        bench_checkpoint,
        bench_join,
        bench_oreste_integration
}
criterion_main!(benches);
