//! An **ORESTE-style** operation-based replication baseline (Karsenty &
//! Beaudouin-Lafon, ICDCS '93), built to reproduce the DECAF paper's
//! related-work critique (§6):
//!
//! 1. "Programmers define high-level operations and specify their
//!    commutativity and masking relations" — here via the
//!    [`OpSpec`] table.
//! 2. Correctness "only considers quiescent state": commuting operations
//!    applied in different orders converge *eventually*, but "once views or
//!    read-only transactions or system state in nonquiescent conditions is
//!    taken into account, some sites might see a transition in which a blue
//!    object was at A and others a transition in which a red object was at
//!    B" — the `transient_views_disagree_across_sites` test reproduces
//!    exactly the paper's color/move example.
//! 3. "A state cannot be committed to an external view until it is known
//!    that there is no straggler; this involves a global sweep" — stability
//!    here requires hearing from *every* site ([`OresteSite::stable_len`]),
//!    the same network-wide dependence the `e5` experiment measures for
//!    GVT.
//!
//! Operations carry unique virtual times. A receiver integrates a remote
//! operation in timestamp order: if every later-applied operation commutes
//! with it, it is applied "late" in place; otherwise the non-commuting
//! suffix is undone and replayed (undo/redo integration). Masked
//! operations — e.g. a `SetColor` masked by a later `Delete` — become
//! no-ops.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use decaf_vt::{LamportClock, SiteId, VirtualTime};

/// A high-level ORESTE operation on one named object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Change the object's color.
    SetColor(String),
    /// Move the object to a container.
    MoveTo(String),
    /// Append to the object's label (order-sensitive: two appends neither
    /// commute nor mask).
    AppendLabel(String),
    /// Delete the object (masks everything before it).
    Delete,
}

impl Op {
    fn kind(&self) -> OpKind {
        match self {
            Op::SetColor(_) => OpKind::SetColor,
            Op::MoveTo(_) => OpKind::MoveTo,
            Op::AppendLabel(_) => OpKind::AppendLabel,
            Op::Delete => OpKind::Delete,
        }
    }
}

/// Operation kinds, the domain of the commutativity/masking table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Color changes.
    SetColor,
    /// Container moves.
    MoveTo,
    /// Label appends.
    AppendLabel,
    /// Deletion.
    Delete,
}

/// The programmer-specified relations between operation kinds (§6: "The
/// ORESTE implementation provides a useful model in which programmers
/// define high-level operations and specify their commutativity and
/// masking relations").
#[derive(Debug, Clone)]
pub struct OpSpec;

impl OpSpec {
    /// Whether two operation kinds commute (their application order does
    /// not change the final state).
    pub fn commutes(a: OpKind, b: OpKind) -> bool {
        match (a, b) {
            // Independent attributes commute.
            (OpKind::SetColor, OpKind::MoveTo) | (OpKind::MoveTo, OpKind::SetColor) => true,
            (OpKind::AppendLabel, OpKind::SetColor)
            | (OpKind::SetColor, OpKind::AppendLabel)
            | (OpKind::AppendLabel, OpKind::MoveTo)
            | (OpKind::MoveTo, OpKind::AppendLabel) => true,
            // Two writes to the same attribute do not commute.
            (OpKind::SetColor, OpKind::SetColor)
            | (OpKind::MoveTo, OpKind::MoveTo)
            | (OpKind::AppendLabel, OpKind::AppendLabel) => false,
            // Nothing commutes with deletion.
            (OpKind::Delete, _) | (_, OpKind::Delete) => false,
        }
    }

    /// Whether a later operation of kind `later` masks an earlier `earlier`
    /// (makes its effect unobservable), so a straggling `earlier` can be
    /// dropped.
    pub fn masks(later: OpKind, earlier: OpKind) -> bool {
        // Appends are order-sensitive but never masked (both effects stay
        // visible): the pair that forces ORESTE's undo/redo integration.
        matches!(
            (later, earlier),
            (OpKind::Delete, _)
                | (OpKind::SetColor, OpKind::SetColor)
                | (OpKind::MoveTo, OpKind::MoveTo)
        )
    }
}

/// The replicated object's state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectState {
    /// Current color.
    pub color: String,
    /// Current container.
    pub container: String,
    /// Accumulated label.
    pub label: String,
    /// Whether the object was deleted.
    pub deleted: bool,
}

impl ObjectState {
    /// Observable equivalence: deleted objects are indistinguishable
    /// regardless of their masked attributes.
    pub fn observably_eq(&self, other: &ObjectState) -> bool {
        if self.deleted && other.deleted {
            return true;
        }
        self == other
    }
}

impl Default for ObjectState {
    fn default() -> Self {
        ObjectState {
            color: "red".into(),
            container: "A".into(),
            label: String::new(),
            deleted: false,
        }
    }
}

impl fmt::Display for ObjectState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.deleted {
            write!(f, "(deleted)")
        } else {
            write!(f, "{} object at {}", self.color, self.container)
        }
    }
}

fn apply(state: &mut ObjectState, op: &Op) {
    match op {
        Op::SetColor(c) => state.color = c.clone(),
        Op::MoveTo(t) => state.container = t.clone(),
        Op::AppendLabel(l) => state.label.push_str(l),
        Op::Delete => state.deleted = true,
    }
}

/// A timestamped operation in flight.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StampedOp {
    /// Unique virtual time (total order).
    pub vt: VirtualTime,
    /// The operation.
    pub op: Op,
}

/// One ORESTE replica.
///
/// # Example
///
/// ```
/// use decaf_oreste::{Op, OresteSite};
/// use decaf_vt::SiteId;
///
/// let mut a = OresteSite::new(SiteId(1), 2);
/// let mut b = OresteSite::new(SiteId(2), 2);
/// let op_color = a.perform(Op::SetColor("blue".into()));
/// let op_move = b.perform(Op::MoveTo("B".into()));
/// // Cross-deliver: color/move commute, so both replicas converge without
/// // reordering.
/// b.integrate(op_color);
/// a.integrate(op_move);
/// assert_eq!(a.state(), b.state());
/// ```
#[derive(Debug)]
pub struct OresteSite {
    id: SiteId,
    clock: LamportClock,
    /// Applied operations in application order (not necessarily VT order).
    applied: Vec<StampedOp>,
    state: ObjectState,
    /// Transition log for view-observation tests: every state the local
    /// "view" observed, in observation order.
    pub observed: Vec<ObjectState>,
    /// Highest VT heard from each site (self included), for stability.
    heard: BTreeMap<SiteId, u64>,
    total_sites: usize,
    /// How many times integration had to undo/redo (non-commuting
    /// stragglers).
    pub reorders: u64,
}

impl OresteSite {
    /// Creates a replica in a collaboration of `total_sites` sites.
    pub fn new(id: SiteId, total_sites: usize) -> Self {
        let state = ObjectState::default();
        OresteSite {
            id,
            clock: LamportClock::new(id),
            applied: Vec::new(),
            observed: vec![state.clone()],
            state,
            heard: BTreeMap::new(),
            total_sites,
            reorders: 0,
        }
    }

    /// This replica's site id.
    pub fn id(&self) -> SiteId {
        self.id
    }

    /// The current (possibly transient) state — what an ORESTE view shows
    /// immediately.
    pub fn state(&self) -> &ObjectState {
        &self.state
    }

    /// Performs a local operation, observing the new state immediately, and
    /// returns the stamped op to broadcast.
    pub fn perform(&mut self, op: Op) -> StampedOp {
        let vt = self.clock.next();
        self.heard.insert(self.id, vt.lamport);
        let stamped = StampedOp { vt, op };
        self.apply_in_order(stamped.clone());
        stamped
    }

    /// Integrates a remote operation.
    pub fn integrate(&mut self, op: StampedOp) {
        self.clock.witness(op.vt);
        let e = self.heard.entry(op.vt.site).or_insert(0);
        *e = (*e).max(op.vt.lamport);
        if self.applied.iter().any(|a| a.vt == op.vt) {
            return; // duplicate delivery
        }
        // Masking: a straggler wholly masked by a later applied operation
        // can be recorded as a no-op.
        let masked = self
            .applied
            .iter()
            .any(|a| a.vt > op.vt && OpSpec::masks(a.op.kind(), op.op.kind()));
        if masked {
            // Record for ordering/stability purposes, without state change.
            let pos = self.applied.partition_point(|a| a.vt < op.vt);
            self.applied.insert(pos, op);
            return;
        }
        self.apply_in_order(op);
    }

    fn apply_in_order(&mut self, op: StampedOp) {
        // Operations applied after op.vt that do NOT commute with op force
        // an undo/redo; commuting suffixes allow in-place application.
        let suffix_start = self.applied.partition_point(|a| a.vt < op.vt);
        let commutes_with_suffix = self.applied[suffix_start..]
            .iter()
            .all(|a| OpSpec::commutes(a.op.kind(), op.op.kind()));
        if commutes_with_suffix {
            apply(&mut self.state, &op.op);
            self.applied.insert(suffix_start, op);
            self.observed.push(self.state.clone());
            return;
        }
        // Undo/redo: rebuild from scratch in VT order (simple and correct;
        // real ORESTE uses transposition, the observable effect is the
        // same).
        self.reorders += 1;
        self.applied.insert(suffix_start, op);
        let mut state = ObjectState::default();
        for a in &self.applied {
            apply(&mut state, &a.op);
        }
        self.state = state;
        self.observed.push(self.state.clone());
    }

    /// How many applied operations are *stable* — known to precede any
    /// possible straggler, i.e. below the minimum VT heard from **every**
    /// site. This is the paper's criticism: commit-to-view "involves a
    /// global sweep analogous to Jefferson's Global Virtual Time algorithm"
    /// (§6) — a single silent site anywhere in the network blocks
    /// stability.
    pub fn stable_len(&self) -> usize {
        if self.heard.len() < self.total_sites {
            return 0; // some site never heard from: nothing is stable
        }
        let min_heard = self.heard.values().copied().min().unwrap_or(0);
        self.applied.partition_point(|a| a.vt.lamport <= min_heard)
    }

    /// The applied operations, in application order.
    pub fn ops(&self) -> &[StampedOp] {
        &self.applied
    }
}

impl OresteSite {
    /// Test helper: advances the local clock.
    #[doc(hidden)]
    pub fn clock_sync_for_test(&mut self, to: u64) {
        self.clock.witness(VirtualTime::new(to, SiteId(u32::MAX)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's §6 example: "starting with a red object at A and
    /// applying both 'change to blue' and 'move to B' yields a blue object
    /// at B, regardless of the order in which the operations are applied."
    #[test]
    fn commuting_ops_converge_in_any_order() {
        let mut a = OresteSite::new(SiteId(1), 2);
        let mut b = OresteSite::new(SiteId(2), 2);
        let color = a.perform(Op::SetColor("blue".into()));
        let mv = b.perform(Op::MoveTo("B".into()));
        b.integrate(color);
        a.integrate(mv);
        assert_eq!(a.state(), b.state());
        assert_eq!(a.state().color, "blue");
        assert_eq!(a.state().container, "B");
        assert_eq!(a.reorders + b.reorders, 0, "commuting: no undo/redo");
    }

    /// The paper's §6 critique, verbatim: "some sites might see a
    /// transition in which a blue object was at A and others a transition
    /// in which a red object was at B."
    #[test]
    fn transient_views_disagree_across_sites() {
        let mut a = OresteSite::new(SiteId(1), 2);
        let mut b = OresteSite::new(SiteId(2), 2);
        let color = a.perform(Op::SetColor("blue".into())); // a sees blue@A
        let mv = b.perform(Op::MoveTo("B".into())); // b sees red@B
        b.integrate(color);
        a.integrate(mv);

        let a_saw_blue_at_a = a
            .observed
            .iter()
            .any(|s| s.color == "blue" && s.container == "A");
        let b_saw_red_at_b = b
            .observed
            .iter()
            .any(|s| s.color == "red" && s.container == "B");
        assert!(a_saw_blue_at_a, "site A's view saw the blue@A transition");
        assert!(b_saw_red_at_b, "site B's view saw the red@B transition");
        // The transitions are mutually exclusive in any serial execution:
        // the two sites observed incompatible histories even though the
        // final states agree. DECAF's snapshot machinery forbids exactly
        // this (its pessimistic views are monotonic over ONE serial order).
        assert!(
            !b.observed
                .iter()
                .any(|s| s.color == "blue" && s.container == "A"),
            "site B never saw site A's intermediate state"
        );
    }

    #[test]
    fn same_attribute_straggler_is_masked_without_reorder() {
        let mut a = OresteSite::new(SiteId(1), 2);
        let mut b = OresteSite::new(SiteId(2), 2);
        let c1 = a.perform(Op::SetColor("blue".into())); // vt 1@S1
        let c2 = b.perform(Op::SetColor("green".into())); // vt 1@S2 > 1@S1
        b.integrate(c1); // straggler below green: masked, no undo/redo
        a.integrate(c2);
        assert_eq!(a.state(), b.state());
        assert_eq!(a.state().color, "green", "higher VT wins both places");
        assert_eq!(b.reorders, 0, "masking absorbs the straggler");
    }

    #[test]
    fn order_sensitive_straggler_forces_undo_redo() {
        // Appends neither commute nor mask: the straggler must be
        // integrated by undoing and replaying in timestamp order.
        let mut a = OresteSite::new(SiteId(1), 2);
        let mut b = OresteSite::new(SiteId(2), 2);
        let l1 = a.perform(Op::AppendLabel("x".into())); // vt 1@S1
        let l2 = b.perform(Op::AppendLabel("y".into())); // vt 1@S2
        b.integrate(l1); // straggler below y
        a.integrate(l2);
        assert_eq!(a.state(), b.state());
        assert_eq!(a.state().label, "xy", "timestamp order everywhere");
        assert!(b.reorders >= 1, "b had to undo/redo the straggler");
        assert_eq!(a.reorders, 0, "a applied in order");
    }

    #[test]
    fn masked_straggler_is_dropped() {
        let mut a = OresteSite::new(SiteId(1), 2);
        let mut b = OresteSite::new(SiteId(2), 2);
        let color = a.perform(Op::SetColor("blue".into())); // vt 1@S1
        b.clock_sync_for_test(5);
        let del = b.perform(Op::Delete); // vt 6@S2
        b.integrate(color); // masked by the delete
        a.integrate(del);
        assert!(
            a.state().observably_eq(b.state()),
            "deleted objects are observably identical"
        );
        assert!(b.state().deleted);
        assert_eq!(b.reorders, 0, "masked op needs no reordering");
    }

    /// §6: stability (commit-to-view) needs to hear from everyone — one
    /// silent site blocks it network-wide.
    #[test]
    fn stability_requires_hearing_from_every_site() {
        let mut a = OresteSite::new(SiteId(1), 3); // three-site network
        let mut b = OresteSite::new(SiteId(2), 3);
        let op = a.perform(Op::SetColor("blue".into()));
        b.integrate(op.clone());
        // Site 3 has said nothing: nothing is stable anywhere.
        assert_eq!(a.stable_len(), 0);
        assert_eq!(b.stable_len(), 0);
        // Once EVERY site has spoken, stability advances.
        let mut c = OresteSite::new(SiteId(3), 3);
        c.integrate(op);
        let c_op = c.perform(Op::MoveTo("B".into()));
        let b_op = b.perform(Op::AppendLabel("!".into()));
        a.integrate(c_op.clone());
        a.integrate(b_op.clone());
        b.integrate(c_op);
        c.integrate(b_op);
        assert!(a.stable_len() >= 1, "heard from all: early ops stable");
    }

    #[test]
    fn convergence_under_many_interleavings() {
        // All permutations of four ops delivered to fresh replicas end in
        // the same state.
        let mut gen = OresteSite::new(SiteId(9), 1);
        let ops = vec![
            gen.perform(Op::SetColor("blue".into())),
            gen.perform(Op::MoveTo("B".into())),
            gen.perform(Op::SetColor("green".into())),
            gen.perform(Op::MoveTo("C".into())),
        ];
        let reference = {
            let mut s = OresteSite::new(SiteId(1), 1);
            for o in &ops {
                s.integrate(o.clone());
            }
            s.state().clone()
        };
        // A few representative permutations.
        let perms: Vec<Vec<usize>> = vec![
            vec![0, 1, 2, 3],
            vec![3, 2, 1, 0],
            vec![2, 0, 3, 1],
            vec![1, 3, 0, 2],
        ];
        for p in perms {
            let mut s = OresteSite::new(SiteId(2), 1);
            for &i in &p {
                s.integrate(ops[i].clone());
            }
            assert_eq!(s.state(), &reference, "order {p:?} diverged");
        }
    }
}
