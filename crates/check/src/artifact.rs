//! Replayable counterexample artifacts.
//!
//! A [`Counterexample`] freezes everything a failing schedule needs to be
//! reproduced bit-for-bit: the scenario config, the run seed, the
//! (shrunk) fault plan, the injected mutation (if any), the violations
//! observed, and the run's `decaf-trace` JSONL. Because the harness is
//! deterministic, [`Counterexample::replay`] re-derives the identical
//! run, and [`Counterexample::reproduces`] asserts it.

use decaf_core::TestMutation;
use serde::{Deserialize, Serialize};

use crate::config::ScenarioConfig;
use crate::harness::{run_once, RunReport};
use crate::oracle::Violation;
use crate::plan::FaultPlan;
use crate::{mutation_from_name, mutation_name};

/// A frozen failing schedule, serializable to JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Counterexample {
    /// Scenario the failure occurred under.
    pub config: ScenarioConfig,
    /// Run seed (workload mix, jitter, and plan generation).
    pub seed: u64,
    /// Injected engine mutation, by canonical name (checker self-tests).
    pub mutation: Option<String>,
    /// The failing fault plan — already shrunk when the finder shrinks.
    pub plan: FaultPlan,
    /// Action count of the plan before shrinking.
    pub shrunk_from: usize,
    /// Violations the plan produces.
    pub violations: Vec<Violation>,
    /// Merged `decaf-trace` JSONL of the failing run, one event per line.
    pub trace: Vec<String>,
}

impl Counterexample {
    /// Freezes a failing run into an artifact.
    pub fn new(
        config: &ScenarioConfig,
        seed: u64,
        mutation: Option<TestMutation>,
        plan: &FaultPlan,
        shrunk_from: usize,
        report: &RunReport,
    ) -> Self {
        Counterexample {
            config: config.clone(),
            seed,
            mutation: mutation.map(|m| mutation_name(m).to_string()),
            plan: plan.clone(),
            shrunk_from,
            violations: report.violations.clone(),
            trace: report.trace.clone(),
        }
    }

    /// The injected mutation, decoded.
    pub fn mutation(&self) -> Option<TestMutation> {
        self.mutation.as_deref().and_then(mutation_from_name)
    }

    /// Pretty JSON for writing to disk.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("counterexample serializes")
    }

    /// Parses an artifact produced by [`Counterexample::to_json`].
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Re-runs the frozen schedule. Determinism guarantees the result
    /// matches the recorded run exactly.
    pub fn replay(&self) -> RunReport {
        run_once(&self.config, &self.plan, self.seed, self.mutation())
    }

    /// Replays and checks the recorded violations and trace reproduce
    /// byte-for-byte.
    pub fn reproduces(&self) -> bool {
        let report = self.replay();
        report.violations == self.violations && report.trace == self.trace
    }
}
