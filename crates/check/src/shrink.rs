//! Counterexample shrinking: delta-debugging (`ddmin`) a failing fault
//! plan down to a minimal schedule that still violates an oracle.
//!
//! Shrinking is *removal-only*: the result is always a subsequence of the
//! input plan (never larger, never reordered), so a shrunk counterexample
//! replays with the same scenario config and seed.

use decaf_core::TestMutation;

use crate::config::ScenarioConfig;
use crate::harness::run_once;
use crate::plan::{FaultAction, FaultPlan};

/// Classic ddmin (Zeller & Hildebrandt) over a slice of fault actions.
///
/// `fails` must be deterministic. Returns a 1-minimal failing
/// subsequence: removing any single remaining action makes the failure
/// disappear. If the full input does not fail, it is returned unchanged.
pub fn ddmin<F>(input: &[FaultAction], fails: F) -> Vec<FaultAction>
where
    F: Fn(&[FaultAction]) -> bool,
{
    if !fails(input) {
        return input.to_vec();
    }
    if fails(&[]) {
        return Vec::new();
    }
    let mut cur = input.to_vec();
    let mut n = 2usize;
    while cur.len() >= 2 {
        let chunk = cur.len().div_ceil(n);
        let mut reduced = false;
        let mut lo = 0;
        while lo < cur.len() {
            let hi = (lo + chunk).min(cur.len());
            // Try the complement of chunk [lo, hi): a strictly smaller
            // subsequence, preserving order.
            let complement: Vec<FaultAction> =
                cur[..lo].iter().chain(cur[hi..].iter()).cloned().collect();
            if fails(&complement) {
                cur = complement;
                n = (n - 1).max(2);
                reduced = true;
                break;
            }
            lo = hi;
        }
        if !reduced {
            if n >= cur.len() {
                break;
            }
            n = (n * 2).min(cur.len());
        }
    }
    cur
}

/// Shrinks `plan` against the real harness: a candidate "fails" when
/// [`run_once`] with the same `(cfg, seed, mutation)` reports at least
/// one violation. Determinism of the harness makes the predicate stable,
/// so the returned plan is a minimal schedule that still fails.
pub fn shrink_plan(
    cfg: &ScenarioConfig,
    seed: u64,
    plan: &FaultPlan,
    mutation: Option<TestMutation>,
) -> FaultPlan {
    let fails = |actions: &[FaultAction]| {
        let candidate = FaultPlan {
            actions: actions.to_vec(),
        };
        !run_once(cfg, &candidate, seed, mutation)
            .violations
            .is_empty()
    };
    FaultPlan {
        actions: ddmin(&plan.actions, fails),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultKind;

    fn heal_at(at_ms: u64) -> FaultAction {
        FaultAction {
            at_ms,
            kind: FaultKind::Heal,
        }
    }

    #[test]
    fn ddmin_isolates_a_single_culprit() {
        let input: Vec<FaultAction> = (0..16).map(heal_at).collect();
        let fails = |acts: &[FaultAction]| acts.iter().any(|a| a.at_ms == 7);
        let out = ddmin(&input, fails);
        assert_eq!(out, vec![heal_at(7)]);
    }

    #[test]
    fn ddmin_finds_a_minimal_interacting_pair() {
        let input: Vec<FaultAction> = (0..12).map(heal_at).collect();
        let fails = |acts: &[FaultAction]| {
            acts.iter().any(|a| a.at_ms == 3) && acts.iter().any(|a| a.at_ms == 9)
        };
        let out = ddmin(&input, fails);
        assert_eq!(out, vec![heal_at(3), heal_at(9)]);
    }

    #[test]
    fn ddmin_never_grows_and_preserves_order() {
        let input: Vec<FaultAction> = (0..9).map(|i| heal_at(i * 10)).collect();
        let fails = |acts: &[FaultAction]| acts.len() >= 4;
        let out = ddmin(&input, fails);
        assert!(out.len() <= input.len());
        assert!(out.windows(2).all(|w| w[0].at_ms < w[1].at_ms));
        assert!(fails(&out));
        // Result is a subsequence of the input.
        let mut it = input.iter();
        assert!(out.iter().all(|a| it.any(|b| b == a)));
    }

    #[test]
    fn ddmin_returns_input_when_it_does_not_fail() {
        let input: Vec<FaultAction> = (0..4).map(heal_at).collect();
        let out = ddmin(&input, |_| false);
        assert_eq!(out, input);
    }

    #[test]
    fn ddmin_returns_empty_when_everything_fails() {
        let input: Vec<FaultAction> = (0..4).map(heal_at).collect();
        let out = ddmin(&input, |_| true);
        assert!(out.is_empty());
    }
}
