//! Fault plans: the schedule side of an explored run.
//!
//! A [`FaultPlan`] is a time-ordered list of fault injections applied to
//! the simulated network while the workload runs. Plans are plain data —
//! serializable into counterexample artifacts, shrinkable by delta
//! debugging, and replayable bit-for-bit.

use rand::{rngs::SmallRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::config::ScenarioConfig;

/// One fault to inject.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Cut the network into two groups; cross-group traffic is parked
    /// (delayed, not lost — the paper assumes reliable FIFO links) until
    /// the next [`FaultKind::Heal`]. Starting a new partition while one
    /// is active heals the old cut first.
    Partition {
        /// Site ids on one side of the cut.
        a: Vec<u32>,
        /// Site ids on the other side.
        b: Vec<u32>,
    },
    /// Heal the active partition, releasing parked traffic. No-op when
    /// nothing is cut.
    Heal,
    /// Fail-stop the site: its in-flight traffic is dropped and every
    /// other site is notified (§3.4 failure model). Kills of site 1 or of
    /// an already-dead site are ignored by the harness.
    Kill {
        /// The victim site id.
        site: u32,
    },
    /// Crash the site's process and restart it `down_ms` later from its
    /// write-ahead log (durable sites only — the harness turns on
    /// [`SiteConfig::durable`](decaf_core::SiteConfig) for plans containing
    /// this action). No failure notification is emitted: the outage is
    /// assumed shorter than the detector window. In-flight deliveries to
    /// the victim are lost; the last `torn` bytes of its WAL are chopped at
    /// restart (down to the baseline checkpoint) to model a torn tail, and
    /// the restarted site recovers the longest valid record prefix and runs
    /// the §3.4 rejoin/catch-up protocol. Crashes of site 1, of an already
    /// crashed site, or leaving fewer than two sites up are ignored by the
    /// harness. Generators never mix `CrashRestart` with [`FaultKind::Kill`]
    /// in one plan: a kill's failure notices would race the victim's
    /// restart-and-rejoin.
    CrashRestart {
        /// The victim site id.
        site: u32,
        /// Outage length in simulated ms; the restart fires this long
        /// after the crash.
        down_ms: u64,
        /// Bytes chopped off the WAL tail at restart (torn-tail model).
        torn: u64,
    },
}

/// A fault scheduled at a point in the run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultAction {
    /// When to inject, in simulated ms after the gesture phase starts.
    pub at_ms: u64,
    /// What to inject.
    pub kind: FaultKind,
}

/// A time-ordered fault schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Actions in non-decreasing `at_ms` order.
    pub actions: Vec<FaultAction>,
}

/// Which fault classes a plan generator may draw from. Latency jitter
/// (message delay / cross-link reorder) is part of the scenario config,
/// not the plan: it applies to every message, seeded per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultClasses {
    /// Allow partition/heal actions.
    pub partitions: bool,
    /// Allow fail-stop kills (keeping at least two survivors).
    pub kills: bool,
    /// Allow transient crash-restarts (WAL recovery + rejoin). When both
    /// `kills` and `crashes` are enabled, each generated plan draws from
    /// only one of the two — the classes never mix within a plan.
    pub crashes: bool,
}

impl FaultClasses {
    /// Partitions and heals only — every message is eventually delivered
    /// and no site dies, so all oracles (including losslessness) apply.
    pub fn partitions_only() -> Self {
        FaultClasses {
            partitions: true,
            kills: false,
            crashes: false,
        }
    }

    /// Crash-restarts only: sites go down transiently and recover from
    /// their WAL. No permanent kills, so convergence and the
    /// durability/coverage oracles apply to every site, restarted ones
    /// included.
    pub fn crashes_only() -> Self {
        FaultClasses {
            partitions: false,
            kills: false,
            crashes: true,
        }
    }

    /// Every fault class (kills and crashes still never share one plan).
    pub fn all() -> Self {
        FaultClasses {
            partitions: true,
            kills: true,
            crashes: true,
        }
    }

    /// No faults: explores pure message-timing schedules.
    pub fn none() -> Self {
        FaultClasses {
            partitions: false,
            kills: false,
            crashes: false,
        }
    }
}

impl FaultPlan {
    /// The empty plan: no injected faults (timing noise still applies).
    pub fn quiet() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan fail-stops any site. Kill plans run a reduced
    /// oracle set: §3.4 recovery may abort in-doubt transactions, so
    /// losslessness and settled-guess oracles only apply to kill-free
    /// plans.
    pub fn has_kills(&self) -> bool {
        self.actions
            .iter()
            .any(|a| matches!(a.kind, FaultKind::Kill { .. }))
    }

    /// Whether the plan crash-restarts any site. Crash plans run with
    /// durable sites and gain the crash-durability oracles; like kill
    /// plans, they drop the strict settled-guess checks (a restart leaves
    /// pre-crash optimistic guesses legitimately dangling).
    pub fn has_crashes(&self) -> bool {
        self.actions
            .iter()
            .any(|a| matches!(a.kind, FaultKind::CrashRestart { .. }))
    }

    /// Generates a seeded random plan for `cfg`, drawing up to four
    /// actions from the enabled `classes` at times inside the gesture
    /// window. The same `(cfg, classes, seed)` always yields the same
    /// plan. Kills and crashes never appear in the same plan: when both
    /// classes are enabled, a per-plan coin picks which one this plan may
    /// use.
    pub fn random(cfg: &ScenarioConfig, classes: FaultClasses, seed: u64) -> FaultPlan {
        if !classes.partitions && !classes.kills && !classes.crashes {
            return FaultPlan::quiet();
        }
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xfa17_5eed_0bad_cafe);
        let (allow_kills, allow_crashes) = match (classes.kills, classes.crashes) {
            (true, true) => {
                let crash_plan = rng.gen_bool(0.5);
                (!crash_plan, crash_plan)
            }
            other => other,
        };
        let horizon = cfg.horizon_ms();
        let n = rng.gen_range(0..=4u32);
        let max_kills = cfg.sites.saturating_sub(2);
        let mut kills = 0u32;
        let mut crashes = 0u32;
        let mut actions = Vec::new();
        for _ in 0..n {
            let at_ms = rng.gen_range(0..=horizon);
            let kind = if allow_crashes && crashes < 2 && rng.gen_range(0..100u32) < 30 {
                crashes += 1;
                // Site 1 anchors the fault timers and is never a victim.
                FaultKind::CrashRestart {
                    site: rng.gen_range(2..=cfg.sites),
                    down_ms: rng.gen_range(20..=250),
                    torn: rng.gen_range(0..=48),
                }
            } else if allow_kills && kills < max_kills && rng.gen_range(0..100u32) < 25 {
                kills += 1;
                // Site 1 anchors the fault timers and is never a victim.
                FaultKind::Kill {
                    site: rng.gen_range(2..=cfg.sites),
                }
            } else if classes.partitions && rng.gen_range(0..100u32) < 70 {
                let mut a = Vec::new();
                let mut b = Vec::new();
                for s in 1..=cfg.sites {
                    if rng.gen_bool(0.5) {
                        a.push(s);
                    } else {
                        b.push(s);
                    }
                }
                if a.is_empty() || b.is_empty() {
                    FaultKind::Heal
                } else {
                    FaultKind::Partition { a, b }
                }
            } else {
                FaultKind::Heal
            };
            actions.push(FaultAction { at_ms, kind });
        }
        // Stable: equal times keep generation order.
        actions.sort_by_key(|a| a.at_ms);
        FaultPlan { actions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_deterministic_and_sorted() {
        let cfg = ScenarioConfig::default();
        for seed in 0..32 {
            let p1 = FaultPlan::random(&cfg, FaultClasses::all(), seed);
            let p2 = FaultPlan::random(&cfg, FaultClasses::all(), seed);
            assert_eq!(p1, p2);
            assert!(p1.actions.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
            assert!(p1.actions.len() <= 4);
        }
    }

    #[test]
    fn disabled_classes_yield_quiet_plans() {
        let cfg = ScenarioConfig::default();
        let p = FaultPlan::random(&cfg, FaultClasses::none(), 7);
        assert_eq!(p, FaultPlan::quiet());
        assert!(!p.has_kills());
    }

    #[test]
    fn partitions_only_never_kills() {
        let cfg = ScenarioConfig::default();
        for seed in 0..64 {
            let p = FaultPlan::random(&cfg, FaultClasses::partitions_only(), seed);
            assert!(!p.has_kills());
            assert!(!p.has_crashes());
        }
    }

    #[test]
    fn kills_and_crashes_never_share_a_plan() {
        let cfg = ScenarioConfig::default();
        let mut saw_kill_plan = false;
        let mut saw_crash_plan = false;
        for seed in 0..256 {
            let p = FaultPlan::random(&cfg, FaultClasses::all(), seed);
            assert!(
                !(p.has_kills() && p.has_crashes()),
                "seed {seed} mixed kills and crashes: {p:?}"
            );
            saw_kill_plan |= p.has_kills();
            saw_crash_plan |= p.has_crashes();
        }
        assert!(saw_kill_plan, "all() never drew a kill in 256 plans");
        assert!(saw_crash_plan, "all() never drew a crash in 256 plans");
    }

    #[test]
    fn crashes_only_targets_restartable_sites() {
        let cfg = ScenarioConfig::default();
        let mut crash_actions = 0;
        for seed in 0..128 {
            let p = FaultPlan::random(&cfg, FaultClasses::crashes_only(), seed);
            assert!(!p.has_kills());
            for a in &p.actions {
                match &a.kind {
                    FaultKind::CrashRestart {
                        site,
                        down_ms,
                        torn,
                    } => {
                        crash_actions += 1;
                        assert!((2..=cfg.sites).contains(site), "site 1 never crashes");
                        assert!((20..=250).contains(down_ms));
                        assert!(*torn <= 48);
                    }
                    FaultKind::Heal => {}
                    other => panic!("crashes_only drew {other:?}"),
                }
            }
        }
        assert!(crash_actions > 0, "crashes_only never drew a crash");
    }

    #[test]
    fn plans_round_trip_through_json() {
        let plan = FaultPlan {
            actions: vec![
                FaultAction {
                    at_ms: 10,
                    kind: FaultKind::Partition {
                        a: vec![1],
                        b: vec![2, 3],
                    },
                },
                FaultAction {
                    at_ms: 40,
                    kind: FaultKind::Heal,
                },
                FaultAction {
                    at_ms: 55,
                    kind: FaultKind::Kill { site: 3 },
                },
                FaultAction {
                    at_ms: 70,
                    kind: FaultKind::CrashRestart {
                        site: 2,
                        down_ms: 90,
                        torn: 17,
                    },
                },
            ],
        };
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: FaultPlan = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(plan, back);
        assert!(back.has_kills());
        assert!(back.has_crashes());
    }
}
