//! Fault plans: the schedule side of an explored run.
//!
//! A [`FaultPlan`] is a time-ordered list of fault injections applied to
//! the simulated network while the workload runs. Plans are plain data —
//! serializable into counterexample artifacts, shrinkable by delta
//! debugging, and replayable bit-for-bit.

use rand::{rngs::SmallRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::config::ScenarioConfig;

/// One fault to inject.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Cut the network into two groups; cross-group traffic is parked
    /// (delayed, not lost — the paper assumes reliable FIFO links) until
    /// the next [`FaultKind::Heal`]. Starting a new partition while one
    /// is active heals the old cut first.
    Partition {
        /// Site ids on one side of the cut.
        a: Vec<u32>,
        /// Site ids on the other side.
        b: Vec<u32>,
    },
    /// Heal the active partition, releasing parked traffic. No-op when
    /// nothing is cut.
    Heal,
    /// Fail-stop the site: its in-flight traffic is dropped and every
    /// other site is notified (§3.4 failure model). Kills of site 1 or of
    /// an already-dead site are ignored by the harness.
    Kill {
        /// The victim site id.
        site: u32,
    },
}

/// A fault scheduled at a point in the run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultAction {
    /// When to inject, in simulated ms after the gesture phase starts.
    pub at_ms: u64,
    /// What to inject.
    pub kind: FaultKind,
}

/// A time-ordered fault schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Actions in non-decreasing `at_ms` order.
    pub actions: Vec<FaultAction>,
}

/// Which fault classes a plan generator may draw from. Latency jitter
/// (message delay / cross-link reorder) is part of the scenario config,
/// not the plan: it applies to every message, seeded per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultClasses {
    /// Allow partition/heal actions.
    pub partitions: bool,
    /// Allow fail-stop kills (keeping at least two survivors).
    pub kills: bool,
}

impl FaultClasses {
    /// Partitions and heals only — every message is eventually delivered
    /// and no site dies, so all oracles (including losslessness) apply.
    pub fn partitions_only() -> Self {
        FaultClasses {
            partitions: true,
            kills: false,
        }
    }

    /// Every fault class.
    pub fn all() -> Self {
        FaultClasses {
            partitions: true,
            kills: true,
        }
    }

    /// No faults: explores pure message-timing schedules.
    pub fn none() -> Self {
        FaultClasses {
            partitions: false,
            kills: false,
        }
    }
}

impl FaultPlan {
    /// The empty plan: no injected faults (timing noise still applies).
    pub fn quiet() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan fail-stops any site. Kill plans run a reduced
    /// oracle set: §3.4 recovery may abort in-doubt transactions, so
    /// losslessness and settled-guess oracles only apply to kill-free
    /// plans.
    pub fn has_kills(&self) -> bool {
        self.actions
            .iter()
            .any(|a| matches!(a.kind, FaultKind::Kill { .. }))
    }

    /// Generates a seeded random plan for `cfg`, drawing up to four
    /// actions from the enabled `classes` at times inside the gesture
    /// window. The same `(cfg, classes, seed)` always yields the same
    /// plan.
    pub fn random(cfg: &ScenarioConfig, classes: FaultClasses, seed: u64) -> FaultPlan {
        if !classes.partitions && !classes.kills {
            return FaultPlan::quiet();
        }
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xfa17_5eed_0bad_cafe);
        let horizon = cfg.horizon_ms();
        let n = rng.gen_range(0..=4u32);
        let max_kills = cfg.sites.saturating_sub(2);
        let mut kills = 0u32;
        let mut actions = Vec::new();
        for _ in 0..n {
            let at_ms = rng.gen_range(0..=horizon);
            let kind = if classes.kills && kills < max_kills && rng.gen_range(0..100u32) < 25 {
                kills += 1;
                // Site 1 anchors the fault timers and is never a victim.
                FaultKind::Kill {
                    site: rng.gen_range(2..=cfg.sites),
                }
            } else if classes.partitions && rng.gen_range(0..100u32) < 70 {
                let mut a = Vec::new();
                let mut b = Vec::new();
                for s in 1..=cfg.sites {
                    if rng.gen_bool(0.5) {
                        a.push(s);
                    } else {
                        b.push(s);
                    }
                }
                if a.is_empty() || b.is_empty() {
                    FaultKind::Heal
                } else {
                    FaultKind::Partition { a, b }
                }
            } else {
                FaultKind::Heal
            };
            actions.push(FaultAction { at_ms, kind });
        }
        // Stable: equal times keep generation order.
        actions.sort_by_key(|a| a.at_ms);
        FaultPlan { actions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_deterministic_and_sorted() {
        let cfg = ScenarioConfig::default();
        for seed in 0..32 {
            let p1 = FaultPlan::random(&cfg, FaultClasses::all(), seed);
            let p2 = FaultPlan::random(&cfg, FaultClasses::all(), seed);
            assert_eq!(p1, p2);
            assert!(p1.actions.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
            assert!(p1.actions.len() <= 4);
        }
    }

    #[test]
    fn disabled_classes_yield_quiet_plans() {
        let cfg = ScenarioConfig::default();
        let p = FaultPlan::random(&cfg, FaultClasses::none(), 7);
        assert_eq!(p, FaultPlan::quiet());
        assert!(!p.has_kills());
    }

    #[test]
    fn partitions_only_never_kills() {
        let cfg = ScenarioConfig::default();
        for seed in 0..64 {
            let p = FaultPlan::random(&cfg, FaultClasses::partitions_only(), seed);
            assert!(!p.has_kills());
        }
    }

    #[test]
    fn plans_round_trip_through_json() {
        let plan = FaultPlan {
            actions: vec![
                FaultAction {
                    at_ms: 10,
                    kind: FaultKind::Partition {
                        a: vec![1],
                        b: vec![2, 3],
                    },
                },
                FaultAction {
                    at_ms: 40,
                    kind: FaultKind::Heal,
                },
                FaultAction {
                    at_ms: 55,
                    kind: FaultKind::Kill { site: 3 },
                },
            ],
        };
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: FaultPlan = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(plan, back);
        assert!(back.has_kills());
    }
}
