//! `decaf-check`: a deterministic simulation model checker for the DECAF
//! engine, in the style of FoundationDB/TigerBeetle simulation testing.
//!
//! The checker drives N-site collaborations over the deterministic
//! [`SimNet`](decaf_net::sim::SimNet) under seeded *fault plans* — message
//! delay and cross-link reorder (latency jitter), link partitions with
//! heal, fail-stop site kills, and transient crash-restarts (a durable
//! site killed mid-run, its WAL tail torn at an arbitrary byte, then
//! restarted through recovery and the §3.4 rejoin/catch-up protocol) —
//! and checks the paper's §3/§4 guarantees with a layer of *invariant
//! oracles*:
//!
//! - **Convergence**: at quiescence, all live replicas agree on every
//!   committed value (same VT, same structural digest).
//! - **Pessimistic losslessness + monotonicity** (§4.2): a pessimistic
//!   view is notified of *every* committed update to its watched objects,
//!   in strictly increasing VT order.
//! - **Optimistic superseded-or-committed** (§4.1): every optimistic
//!   update notification is eventually superseded by a later one or
//!   confirmed by a commit notification; at quiescence no guess is left
//!   dangling.
//! - **No commit rollback** (§3): a transaction observed committed at a
//!   site is never subsequently rolled back there.
//! - **GC watermark** (§5): garbage collection never discards history a
//!   straggler pessimistic view still needs.
//! - **Quiescence**: the run terminates (bounded steps) and every live
//!   site drains completely.
//! - **Crash durability** (crash plans): every commit a restarted site
//!   recovered from its write-ahead log is still committed at the end of
//!   the run, and pessimistic notifications stay lossless *through* the
//!   restart boundary (pre-crash ledger segments plus the re-attached
//!   view's ledger jointly cover every committed update).
//!
//! Schedules are explored two ways: seeded *random sweeps*
//! ([`sweep`](explore::sweep)) over generated fault plans, and *bounded
//! exhaustive* enumeration ([`exhaustive`](explore::exhaustive)) of every
//! fault decision sequence for small configurations. A failing schedule
//! is delta-debugged ([`shrink_plan`](shrink::shrink_plan)) down to a
//! minimal fault plan and emitted as a replayable
//! [`Counterexample`](artifact::Counterexample) artifact carrying the
//! seed, the shrunk plan, and the run's `decaf-trace` JSONL.
//!
//! Everything is deterministic: the same `(config, plan, seed)` triple
//! reproduces the same run byte-for-byte, including trace output.
//!
//! ```
//! use decaf_check::{run_once, FaultPlan, ScenarioConfig};
//!
//! let cfg = ScenarioConfig::default();
//! let report = run_once(&cfg, &FaultPlan::quiet(), 42, None);
//! assert!(report.violations.is_empty(), "{:?}", report.violations);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod config;
pub mod explore;
pub mod harness;
pub mod oracle;
pub mod plan;
pub mod shrink;

pub use artifact::Counterexample;
pub use config::ScenarioConfig;
pub use explore::{exhaustive, smoke, sweep, CheckOptions, CheckReport, SmokeReport};
pub use harness::{run_once, RunReport};
pub use oracle::{OracleKind, Violation};
pub use plan::{FaultAction, FaultClasses, FaultKind, FaultPlan};
pub use shrink::shrink_plan;

/// The canonical name of a [`TestMutation`](decaf_core::TestMutation),
/// used to round-trip mutations through JSON artifacts and the CLI.
pub fn mutation_name(m: decaf_core::TestMutation) -> &'static str {
    match m {
        decaf_core::TestMutation::DropPessCommitNotice => "drop_pess_commit_notice",
        decaf_core::TestMutation::SkipRollbackRenotify => "skip_rollback_renotify",
        _ => "unknown",
    }
}

/// Parses a mutation name produced by [`mutation_name`].
pub fn mutation_from_name(name: &str) -> Option<decaf_core::TestMutation> {
    match name {
        "drop_pess_commit_notice" => Some(decaf_core::TestMutation::DropPessCommitNotice),
        "skip_rollback_renotify" => Some(decaf_core::TestMutation::SkipRollbackRenotify),
        _ => None,
    }
}
