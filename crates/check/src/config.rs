//! Scenario configuration: the workload side of an explored schedule.

use decaf_workload::MixWeights;
use serde::{Deserialize, Serialize};

/// One checker scenario: how many sites collaborate, over how many shared
/// counters, submitting how many gestures from which transaction mix, and
/// with what network latency/jitter.
///
/// A `ScenarioConfig` deliberately holds only plain numbers so it
/// serializes into counterexample artifacts and replays bit-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Number of collaborating sites (≥ 2).
    pub sites: u32,
    /// Number of replicated counters wired across all sites (≥ 1).
    pub objects: u32,
    /// Gestures each site submits.
    pub txns_per_site: u32,
    /// Gap between consecutive gestures at one site, in simulated ms.
    pub gap_ms: u64,
    /// Base one-way link latency, in simulated ms.
    pub latency_ms: u64,
    /// Latency jitter fraction in `[0, 1)`: per-message delay varies by
    /// up to this fraction, reordering deliveries *across* links (links
    /// themselves stay FIFO, matching the paper's §3.4 link model).
    pub jitter: f64,
    /// Weight of read-modify-write increments in the gesture mix.
    pub w_increment: u32,
    /// Weight of blind writes in the gesture mix.
    pub w_blind_write: u32,
    /// Weight of guess-heavy multi-read transactions in the gesture mix.
    pub w_guess_heavy: u32,
    /// Engine retry budget: how many times a conflict-aborted transaction
    /// is automatically re-executed before giving up. Low budgets make
    /// final aborts common, exercising the rollback/re-notify paths.
    pub retry_budget: u32,
}

impl Default for ScenarioConfig {
    /// A small but adversarial scenario: 3 sites, 2 shared counters, a
    /// conflict-prone mix, and enough jitter to reorder cross-link
    /// deliveries.
    fn default() -> Self {
        ScenarioConfig {
            sites: 3,
            objects: 2,
            txns_per_site: 4,
            gap_ms: 30,
            latency_ms: 10,
            jitter: 0.4,
            w_increment: 4,
            w_blind_write: 3,
            w_guess_heavy: 2,
            retry_budget: 64,
        }
    }
}

impl ScenarioConfig {
    /// The gesture-mix weights as the workload crate's type. Membership
    /// churn is driven by fault plans (kills), not the mix, so
    /// `join_leave` stays zero here.
    pub fn weights(&self) -> MixWeights {
        MixWeights {
            increment: self.w_increment,
            blind_write: self.w_blind_write,
            guess_heavy: self.w_guess_heavy,
            join_leave: 0,
        }
    }

    /// Approximate length of the gesture phase in simulated ms — the
    /// window fault-plan generators place actions in.
    pub fn horizon_ms(&self) -> u64 {
        (u64::from(self.txns_per_site) + 1) * self.gap_ms
    }

    /// Panics if the scenario is degenerate (fewer than 2 sites, no
    /// objects, a zero mix, or jitter outside `[0, 1)`).
    pub fn validate(&self) {
        assert!(self.sites >= 2, "need at least 2 sites");
        assert!(self.objects >= 1, "need at least 1 object");
        assert!(
            self.w_increment + self.w_blind_write + self.w_guess_heavy > 0,
            "gesture mix must have at least one nonzero weight"
        );
        assert!(
            (0.0..1.0).contains(&self.jitter),
            "jitter must be in [0, 1)"
        );
        assert!(self.gap_ms > 0, "gap_ms must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_round_trips() {
        let cfg = ScenarioConfig::default();
        cfg.validate();
        let json = serde_json::to_string(&cfg).expect("serialize");
        let back: ScenarioConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(cfg, back);
        assert!(cfg.horizon_ms() > 0);
        assert_eq!(cfg.weights().join_leave, 0);
    }
}
