//! The run harness: executes one `(config, plan, seed)` triple over the
//! deterministic simulator and evaluates every applicable oracle.
//!
//! A run is fully deterministic: site state machines are pure, the
//! simulated network is seeded, the gesture mix is seeded, and trace
//! timestamps come from the simulated clock (manual-clock sinks). The
//! same triple therefore reproduces the same [`RunReport`] byte for
//! byte — including the merged JSONL trace — which is what makes
//! counterexample artifacts replayable.

use std::collections::{BTreeMap, BTreeSet};

use decaf_core::{
    append_frame, scan_wal, EngineEvent, ObjectName, RecordingView, Site, SiteConfig, TestMutation,
    TraceSink, ViewId, ViewLedgerEntry, ViewLedgerKind, ViewMode, WalRecord,
};
use decaf_net::sim::{LatencyModel, SimTime};
use decaf_vt::{SiteId, VirtualTime};
use decaf_workload::{
    BlindWrite, GuessHeavy, MixOp, ReadModifyWrite, SimWorld, TxnKind, TxnMix, WorldStep,
};

use crate::config::ScenarioConfig;
use crate::oracle::{self, OracleKind, Violation};
use crate::plan::{FaultAction, FaultKind, FaultPlan};

/// Timer token for gesture submission (one stream per site).
const GESTURE_TOKEN: u64 = 0;
/// Timer tokens `FAULT_TOKEN_BASE + i` inject `plan.actions[i]`.
const FAULT_TOKEN_BASE: u64 = 1_000_000;
/// Timer tokens `RESTART_TOKEN_BASE + i` restart the site crashed by
/// `plan.actions[i]` (a [`FaultKind::CrashRestart`]).
const RESTART_TOKEN_BASE: u64 = 2_000_000;
/// Hard cap on simulator steps before the run is declared hung.
const STEP_BUDGET: u64 = 500_000;
/// Per-site trace buffer capacity.
const TRACE_CAPACITY: usize = 1 << 15;

/// What one checked run produced.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Oracle violations, in detection order. Empty means the schedule
    /// upheld every applicable invariant.
    pub violations: Vec<Violation>,
    /// Simulator steps consumed.
    pub steps: u64,
    /// Transaction gestures submitted.
    pub gestures: u64,
    /// Transactions committed during the gesture phase (all sites).
    pub committed: u64,
    /// Conflict aborts (auto-retried) during the gesture phase.
    pub conflicts: u64,
    /// Sites still alive at the end.
    pub live: Vec<u32>,
    /// The run's merged `decaf-trace` JSONL, one event per line, ordered
    /// by simulated time (site id tie-break).
    pub trace: Vec<String>,
}

/// Runs one schedule: the scenario's seeded workload under `plan`'s
/// faults, with an optional engine [`TestMutation`] injected into every
/// site (for checker self-tests). Returns the oracle verdicts and the
/// run's trace.
pub fn run_once(
    cfg: &ScenarioConfig,
    plan: &FaultPlan,
    seed: u64,
    mutation: Option<TestMutation>,
) -> RunReport {
    cfg.validate();
    let mut model = LatencyModel::uniform(SimTime::from_millis(cfg.latency_ms));
    if cfg.jitter > 0.0 {
        model = model.with_jitter(cfg.jitter, seed ^ 0x6a09_e667_f3bc_c909);
    }
    // Crash plans run durable sites: commits are captured as WAL records,
    // persisted by the harness after every step, and restarts recover from
    // them. Other plans keep durability off so their traces and hot paths
    // are unchanged.
    let durable = plan.has_crashes();
    let site_cfg = SiteConfig {
        view_ledger: true,
        retry_budget: cfg.retry_budget,
        durable,
        ..SiteConfig::default()
    };
    let mut world = SimWorld::with_config(cfg.sites, model, site_cfg);
    if let Some(m) = mutation {
        for site in world.sites.values_mut() {
            site.inject_test_mutation(m);
        }
    }

    // Wire the shared counters and let the wiring traffic settle before
    // measuring anything.
    let wired: Vec<Vec<ObjectName>> = (0..cfg.objects).map(|_| world.wire_int(0)).collect();
    world.run_to_quiescence();

    // Per-site local names of every counter, and the instrumented views.
    let mut locals: BTreeMap<SiteId, Vec<ObjectName>> = BTreeMap::new();
    for i in 0..cfg.sites {
        let id = SiteId(i + 1);
        let watch: Vec<ObjectName> = wired.iter().map(|o| o[i as usize]).collect();
        locals.insert(id, watch);
    }
    let mut opt_ids: BTreeMap<SiteId, ViewId> = BTreeMap::new();
    let mut pess_ids: BTreeMap<SiteId, ViewId> = BTreeMap::new();
    for (id, watch) in &locals {
        let site = world.site(*id);
        let opt = site.attach_view(
            Box::new(RecordingView::new(watch.clone())),
            watch,
            ViewMode::Optimistic,
        );
        let pess = site.attach_view(
            Box::new(RecordingView::new(watch.clone())),
            watch,
            ViewMode::Pessimistic,
        );
        opt_ids.insert(*id, opt);
        pess_ids.insert(*id, pess);
        // Manual-clock sinks: the harness stamps simulated time before
        // every step, so traces are byte-identical across same-seed runs.
        site.set_trace_sink(TraceSink::enabled_manual(id.0, TRACE_CAPACITY));
    }
    // Per-site WAL images for crash plans: a byte buffer standing in for
    // the fsynced `wal.log` file, seeded with a baseline checkpoint taken
    // at the post-wiring quiescent point. Commits queued before the
    // baseline (wiring traffic) are discarded — recovery replays from the
    // newest checkpoint anyway.
    let mut wal_bytes: BTreeMap<SiteId, Vec<u8>> = BTreeMap::new();
    let mut wal_floor: BTreeMap<SiteId, usize> = BTreeMap::new();
    if durable {
        let ids: Vec<SiteId> = locals.keys().copied().collect();
        for id in ids {
            let _ = world.site(id).drain_wal();
            let cp = world
                .site(id)
                .drain_and_checkpoint(16)
                .expect("sites are quiescent after wiring");
            let mut buf = Vec::new();
            append_frame(&mut buf, &WalRecord::Checkpoint(Box::new(cp)));
            wal_floor.insert(id, buf.len());
            wal_bytes.insert(id, buf);
        }
    }
    let log_baseline = world.log.len();
    let stats_baseline = world.total_stats();

    // Gesture streams: one seeded mix and one timer chain per site,
    // staggered by site id so streams interleave deterministically.
    let mut mixes: BTreeMap<SiteId, TxnMix> = BTreeMap::new();
    let mut remaining: BTreeMap<SiteId, u32> = BTreeMap::new();
    for id in locals.keys() {
        mixes.insert(
            *id,
            TxnMix::seeded(
                cfg.weights(),
                seed.wrapping_mul(0x0000_0100_0000_01b3) ^ u64::from(id.0),
            ),
        );
        remaining.insert(*id, cfg.txns_per_site);
        world.set_timer(
            *id,
            SimTime::from_millis(cfg.gap_ms + u64::from(id.0)),
            GESTURE_TOKEN,
        );
    }
    // Fault injections ride timers anchored at site 1 (never a victim).
    for (i, action) in plan.actions.iter().enumerate() {
        world.set_timer(
            SiteId(1),
            SimTime::from_millis(action.at_ms.max(1)),
            FAULT_TOKEN_BASE + i as u64,
        );
    }

    let mut live: BTreeSet<SiteId> = locals.keys().copied().collect();
    let mut crashed: BTreeSet<SiteId> = BTreeSet::new();
    // Stashed at restart, when the pre-crash site instance is replaced:
    // its view-ledger segments, trace events, and commit/conflict counters.
    let mut pess_stash: BTreeMap<u32, Vec<Vec<ViewLedgerEntry>>> = BTreeMap::new();
    let mut opt_stash: BTreeMap<u32, Vec<Vec<ViewLedgerEntry>>> = BTreeMap::new();
    let mut trace_stash = Vec::new();
    let mut committed_carry: u64 = 0;
    let mut conflicts_carry: u64 = 0;
    // Commit VTs each restarted site recovered from its WAL prefix, for
    // the crash-durability oracle.
    let mut recovered_vts: BTreeMap<u32, BTreeSet<VirtualTime>> = BTreeMap::new();
    let mut violations: Vec<Violation> = Vec::new();
    let mut steps: u64 = 0;
    let mut gestures: u64 = 0;
    let mut hung = false;

    while let Some(ws) = stamped_step(&mut world) {
        steps += 1;
        if steps > STEP_BUDGET {
            violations.push(Violation {
                oracle: OracleKind::Quiescence,
                site: None,
                detail: format!("step budget {STEP_BUDGET} exhausted before quiescence"),
            });
            hung = true;
            break;
        }
        persist_wal(&mut world, &mut wal_bytes, &crashed);
        let WorldStep::Timer { site, token, .. } = ws else {
            continue;
        };
        if token >= RESTART_TOKEN_BASE {
            let idx = (token - RESTART_TOKEN_BASE) as usize;
            let FaultKind::CrashRestart { site, torn, .. } = &plan.actions[idx].kind else {
                continue; // restart tokens are only ever scheduled for crashes
            };
            let id = SiteId(*site);
            if !crashed.contains(&id) {
                continue;
            }
            // Stash the dying instance's ledgers, trace, and counters —
            // they belong to the run even though the object is replaced.
            {
                let old = world.site(id);
                let st = old.stats();
                committed_carry += st.txns_committed;
                conflicts_carry += st.txns_aborted_conflict;
                trace_stash.extend(old.trace_sink().drain());
                let pess = old.view_ledger(pess_ids[&id]).unwrap_or_default();
                pess_stash.entry(id.0).or_default().push(pess);
                let opt = old.view_ledger(opt_ids[&id]).unwrap_or_default();
                opt_stash.entry(id.0).or_default().push(opt);
            }
            // Torn tail: chop `torn` bytes off the WAL (never into the
            // baseline checkpoint), then recover the longest valid record
            // prefix — exactly what `CommitLog::open` does on disk.
            let buf = wal_bytes.get_mut(&id).expect("crash plans are durable");
            let cut = buf.len().saturating_sub(*torn as usize).max(wal_floor[&id]);
            buf.truncate(cut);
            let scan = scan_wal(buf).expect("self-written log is schema-clean");
            buf.truncate(scan.valid_len);
            recovered_vts
                .entry(id.0)
                .or_default()
                .extend(scan.records.iter().filter_map(|r| match r {
                    WalRecord::Commit(c) => Some(c.vt),
                    WalRecord::Checkpoint(_) => None,
                }));
            let recovery = Site::recover_from_records(scan.records, site_cfg)
                .expect("baseline checkpoint always survives the torn clamp");
            let mut fresh = recovery.site;
            if let Some(m) = mutation {
                fresh.inject_test_mutation(m);
            }
            // Fresh instrumented views over the same watch list; the
            // recovered store keeps the pre-crash object names.
            let watch = locals[&id].clone();
            let opt = fresh.attach_view(
                Box::new(RecordingView::new(watch.clone())),
                &watch,
                ViewMode::Optimistic,
            );
            let pess = fresh.attach_view(
                Box::new(RecordingView::new(watch.clone())),
                &watch,
                ViewMode::Pessimistic,
            );
            opt_ids.insert(id, opt);
            pess_ids.insert(id, pess);
            fresh.set_trace_sink(TraceSink::enabled_manual(id.0, TRACE_CAPACITY));
            fresh
                .trace_sink()
                .set_now_ns(world.now().as_micros() * 1000);
            world.net.restart_site(id);
            world.sites.insert(id, fresh);
            world.site(id).begin_rejoin();
            crashed.remove(&id);
            // Resume the site's gesture stream where it left off (gestures
            // submitted mid-rejoin are deferred by the engine).
            if remaining[&id] > 0 {
                world.set_timer(id, SimTime::from_millis(cfg.gap_ms), GESTURE_TOKEN);
            }
        } else if token >= FAULT_TOKEN_BASE {
            let idx = token - FAULT_TOKEN_BASE;
            let action = &plan.actions[idx as usize];
            if let FaultKind::CrashRestart { site, down_ms, .. } = &action.kind {
                let id = SiteId(*site);
                // Site 1 anchors the fault timers; keep at least two
                // sites actually up through any outage.
                if *site != 1
                    && live.contains(&id)
                    && !crashed.contains(&id)
                    && live.len() - crashed.len() > 2
                {
                    world.net.crash_site(id);
                    crashed.insert(id);
                    world.set_timer(
                        SiteId(1),
                        SimTime::from_millis((*down_ms).max(1)),
                        RESTART_TOKEN_BASE + idx,
                    );
                }
            } else {
                apply_fault(&mut world, &mut live, action);
            }
        } else if token == GESTURE_TOKEN && live.contains(&site) && !crashed.contains(&site) {
            let rem = remaining.get_mut(&site).expect("known site");
            if *rem == 0 {
                continue;
            }
            *rem -= 1;
            let index = cfg.txns_per_site - 1 - *rem;
            let op = mixes.get_mut(&site).expect("known site").next_op();
            if submit_gesture(&mut world, &locals, site, index, op) {
                gestures += 1;
            }
            if *rem > 0 {
                world.set_timer(site, SimTime::from_millis(cfg.gap_ms), GESTURE_TOKEN);
            }
        }
    }

    // Final drain: heal any open cut, then run the world dry so every
    // in-flight commit and view notification lands.
    if world.net.is_partitioned() {
        world.net.heal();
    }
    while !hung {
        match stamped_step(&mut world) {
            Some(_) => {
                steps += 1;
                if steps > STEP_BUDGET {
                    violations.push(Violation {
                        oracle: OracleKind::Quiescence,
                        site: None,
                        detail: format!("step budget {STEP_BUDGET} exhausted during final drain"),
                    });
                    hung = true;
                }
            }
            None => break,
        }
    }

    // ------------------------------------------------------------------
    // Oracles.
    // ------------------------------------------------------------------
    let strict = !plan.has_kills() && !plan.has_crashes();
    let live_ids: Vec<u32> = live.iter().map(|s| s.0).collect();

    // Per-step: no commit ever rolled back (any plan).
    let events: Vec<(u32, EngineEvent)> = world.log[log_baseline..]
        .iter()
        .map(|e| (e.site.0, e.event.clone()))
        .collect();
    violations.extend(oracle::check_no_commit_rollback(&events));

    // Committed VTs each site observed during the gesture window.
    let mut committed_at: BTreeMap<u32, BTreeSet<VirtualTime>> = BTreeMap::new();
    for (site, event) in &events {
        if let EngineEvent::TxnCommitted { vt, .. } = event {
            committed_at.entry(*site).or_default().insert(*vt);
        }
    }

    // Quiescence: every live site drained completely (any plan; §3.4
    // recovery must terminate too).
    if !hung {
        for id in &live {
            if !world.site(*id).is_quiescent() {
                let detail = world.site(*id).debug_stuck();
                violations.push(Violation {
                    oracle: OracleKind::Quiescence,
                    site: Some(id.0),
                    detail: format!("live site not quiescent after drain: {detail}"),
                });
            }
        }
    }

    // Convergence of every counter across live sites (any plan).
    for (j, names) in wired.iter().enumerate() {
        let digests: Vec<_> = live
            .iter()
            .map(|id| {
                let name = names[(id.0 - 1) as usize];
                (id.0, world.site(*id).committed_digest(name))
            })
            .collect();
        violations.extend(oracle::check_convergence(j, &digests));
    }

    // View oracles per live site; losslessness only for kill-free plans.
    for id in &live {
        let empty = BTreeSet::new();
        let committed = committed_at.get(&id.0).unwrap_or(&empty);
        let pess = world
            .site(*id)
            .view_ledger(pess_ids[id])
            .unwrap_or_default();
        violations.extend(oracle::check_pess_view(
            id.0,
            &pess,
            strict.then_some(committed),
        ));
        let opt = world.site(*id).view_ledger(opt_ids[id]).unwrap_or_default();
        violations.extend(oracle::check_opt_view(id.0, &opt, strict));
        violations.extend(oracle::check_gc(id.0, world.site(*id).gc_watermark()));
    }

    // Crash-plan oracles: no durably recovered commit may be lost, and
    // pessimistic notifications must stay lossless *through* the restart
    // boundary. Pre-crash ledger segments are checked structurally on
    // their own — no ordering constraint spans the boundary.
    if durable && !hung {
        for (site, segs) in &pess_stash {
            for seg in segs {
                violations.extend(oracle::check_pess_view(*site, seg, None));
            }
        }
        for (site, segs) in &opt_stash {
            for seg in segs {
                violations.extend(oracle::check_opt_view(*site, seg, false));
            }
        }
        let empty = BTreeSet::new();
        for id in &live {
            let committed = committed_at.get(&id.0).unwrap_or(&empty);
            let recovered = recovered_vts.get(&id.0).unwrap_or(&empty);
            let mut notified: BTreeSet<VirtualTime> = BTreeSet::new();
            let final_pess = world
                .site(*id)
                .view_ledger(pess_ids[id])
                .unwrap_or_default();
            let stashed = pess_stash.get(&id.0).map_or(&[][..], |s| s.as_slice());
            for seg in stashed.iter().chain(std::iter::once(&final_pess)) {
                notified.extend(seg.iter().filter_map(|e| match e.kind {
                    ViewLedgerKind::Update(_) => Some(e.ts),
                    ViewLedgerKind::Commit => None,
                }));
            }
            violations.extend(oracle::check_pess_coverage(
                id.0, &notified, committed, recovered,
            ));
        }
        for (site, vts) in &recovered_vts {
            let committed_now: BTreeSet<VirtualTime> = vts
                .iter()
                .filter(|vt| world.site(SiteId(*site)).committed_contains(**vt))
                .copied()
                .collect();
            violations.extend(oracle::check_crash_durability(*site, vts, &committed_now));
        }
    }

    // Merge the per-site traces into one time-ordered JSONL stream,
    // including events stashed from pre-crash site instances.
    let mut trace_events = trace_stash;
    let mut trace_dropped: u64 = 0;
    for id in locals.keys() {
        let sink = world.site(*id).trace_sink();
        trace_dropped += sink.dropped();
        trace_events.extend(sink.drain());
    }
    trace_events.sort_by_key(|e| (e.ts_ns, e.site));

    // Trace completeness (kill-free plans): every committed VT must have a
    // fully stitchable cross-site span. Skipped when a bounded ring
    // overflowed — a dropped event punches a legitimate hole — so the
    // oracle only ever fires on real instrumentation or delivery gaps.
    if strict && !hung && trace_dropped == 0 {
        violations.extend(oracle::check_trace_complete(&trace_events));
    }

    let trace: Vec<String> = trace_events.iter().map(|e| e.to_jsonl()).collect();

    let totals = world.total_stats();
    RunReport {
        violations,
        steps,
        gestures,
        committed: (totals.txns_committed + committed_carry)
            .saturating_sub(stats_baseline.txns_committed),
        conflicts: (totals.txns_aborted_conflict + conflicts_carry)
            .saturating_sub(stats_baseline.txns_aborted_conflict),
        live: live_ids,
        trace,
    }
}

/// Drains every up site's queued WAL records into its byte image —
/// the simulated equivalent of the fsync a durable site performs before
/// acknowledging a commit. Crashed sites are skipped: whatever they had
/// not yet persisted is exactly what a torn tail may lose.
fn persist_wal(
    world: &mut SimWorld,
    wal: &mut BTreeMap<SiteId, Vec<u8>>,
    crashed: &BTreeSet<SiteId>,
) {
    for (id, buf) in wal.iter_mut() {
        if crashed.contains(id) {
            continue;
        }
        for rec in world.site(*id).drain_wal() {
            append_frame(buf, &WalRecord::Commit(rec));
        }
    }
}

/// Stamps every sink with the simulated time of the next event, then
/// advances the world one step.
fn stamped_step(world: &mut SimWorld) -> Option<WorldStep> {
    world.flush();
    let t = world.net.peek_time().unwrap_or_else(|| world.now());
    let ns = t.as_micros() * 1000;
    for site in world.sites.values() {
        site.trace_sink().set_now_ns(ns);
    }
    world.step()
}

/// Applies one fault action to the running world.
fn apply_fault(world: &mut SimWorld, live: &mut BTreeSet<SiteId>, action: &FaultAction) {
    let max = world.sites.len() as u32;
    match &action.kind {
        FaultKind::Partition { a, b } => {
            let ga: Vec<SiteId> = a
                .iter()
                .filter(|s| (1..=max).contains(*s))
                .map(|s| SiteId(*s))
                .collect();
            let gb: Vec<SiteId> = b
                .iter()
                .filter(|s| (1..=max).contains(*s))
                .map(|s| SiteId(*s))
                .collect();
            if !ga.is_empty() && !gb.is_empty() {
                world.net.partition(&ga, &gb);
            }
        }
        FaultKind::Heal => world.net.heal(),
        FaultKind::Kill { site } => {
            let id = SiteId(*site);
            // Site 1 anchors fault timers; always keep two survivors.
            if *site != 1 && live.contains(&id) && live.len() > 2 {
                world.fail_site(id);
                live.remove(&id);
            }
        }
        // Crash-restarts are handled inline by the run loop: they need
        // the WAL images and restart timers that live in its scope.
        FaultKind::CrashRestart { .. } => {}
    }
}

/// Submits the gesture `op` at `site`, targeting counters rotated by the
/// gesture `index`. Returns whether a transaction was actually submitted
/// (membership ops are driven by fault plans here, not the mix).
fn submit_gesture(
    world: &mut SimWorld,
    locals: &BTreeMap<SiteId, Vec<ObjectName>>,
    site: SiteId,
    index: u32,
    op: MixOp,
) -> bool {
    let watch = &locals[&site];
    let object = watch[index as usize % watch.len()];
    let kind = match op {
        MixOp::Txn(kind) => kind,
        MixOp::Join | MixOp::Leave => return false,
    };
    match kind {
        TxnKind::BlindWrite => world.site(site).execute(Box::new(BlindWrite {
            object,
            value: i64::from(site.0) * 1000 + i64::from(index),
        })),
        TxnKind::ReadModifyWrite => world
            .site(site)
            .execute(Box::new(ReadModifyWrite { object, delta: 1 })),
        TxnKind::GuessHeavy => world.site(site).execute(Box::new(GuessHeavy {
            reads: watch.clone(),
            write: object,
            delta: 1,
        })),
    };
    true
}
