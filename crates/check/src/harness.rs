//! The run harness: executes one `(config, plan, seed)` triple over the
//! deterministic simulator and evaluates every applicable oracle.
//!
//! A run is fully deterministic: site state machines are pure, the
//! simulated network is seeded, the gesture mix is seeded, and trace
//! timestamps come from the simulated clock (manual-clock sinks). The
//! same triple therefore reproduces the same [`RunReport`] byte for
//! byte — including the merged JSONL trace — which is what makes
//! counterexample artifacts replayable.

use std::collections::{BTreeMap, BTreeSet};

use decaf_core::{
    EngineEvent, ObjectName, RecordingView, SiteConfig, TestMutation, TraceSink, ViewId, ViewMode,
};
use decaf_net::sim::{LatencyModel, SimTime};
use decaf_vt::{SiteId, VirtualTime};
use decaf_workload::{
    BlindWrite, GuessHeavy, MixOp, ReadModifyWrite, SimWorld, TxnKind, TxnMix, WorldStep,
};

use crate::config::ScenarioConfig;
use crate::oracle::{self, OracleKind, Violation};
use crate::plan::{FaultAction, FaultKind, FaultPlan};

/// Timer token for gesture submission (one stream per site).
const GESTURE_TOKEN: u64 = 0;
/// Timer tokens `FAULT_TOKEN_BASE + i` inject `plan.actions[i]`.
const FAULT_TOKEN_BASE: u64 = 1_000_000;
/// Hard cap on simulator steps before the run is declared hung.
const STEP_BUDGET: u64 = 500_000;
/// Per-site trace buffer capacity.
const TRACE_CAPACITY: usize = 1 << 15;

/// What one checked run produced.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Oracle violations, in detection order. Empty means the schedule
    /// upheld every applicable invariant.
    pub violations: Vec<Violation>,
    /// Simulator steps consumed.
    pub steps: u64,
    /// Transaction gestures submitted.
    pub gestures: u64,
    /// Transactions committed during the gesture phase (all sites).
    pub committed: u64,
    /// Conflict aborts (auto-retried) during the gesture phase.
    pub conflicts: u64,
    /// Sites still alive at the end.
    pub live: Vec<u32>,
    /// The run's merged `decaf-trace` JSONL, one event per line, ordered
    /// by simulated time (site id tie-break).
    pub trace: Vec<String>,
}

/// Runs one schedule: the scenario's seeded workload under `plan`'s
/// faults, with an optional engine [`TestMutation`] injected into every
/// site (for checker self-tests). Returns the oracle verdicts and the
/// run's trace.
pub fn run_once(
    cfg: &ScenarioConfig,
    plan: &FaultPlan,
    seed: u64,
    mutation: Option<TestMutation>,
) -> RunReport {
    cfg.validate();
    let mut model = LatencyModel::uniform(SimTime::from_millis(cfg.latency_ms));
    if cfg.jitter > 0.0 {
        model = model.with_jitter(cfg.jitter, seed ^ 0x6a09_e667_f3bc_c909);
    }
    let site_cfg = SiteConfig {
        view_ledger: true,
        retry_budget: cfg.retry_budget,
        ..SiteConfig::default()
    };
    let mut world = SimWorld::with_config(cfg.sites, model, site_cfg);
    if let Some(m) = mutation {
        for site in world.sites.values_mut() {
            site.inject_test_mutation(m);
        }
    }

    // Wire the shared counters and let the wiring traffic settle before
    // measuring anything.
    let wired: Vec<Vec<ObjectName>> = (0..cfg.objects).map(|_| world.wire_int(0)).collect();
    world.run_to_quiescence();

    // Per-site local names of every counter, and the instrumented views.
    let mut locals: BTreeMap<SiteId, Vec<ObjectName>> = BTreeMap::new();
    for i in 0..cfg.sites {
        let id = SiteId(i + 1);
        let watch: Vec<ObjectName> = wired.iter().map(|o| o[i as usize]).collect();
        locals.insert(id, watch);
    }
    let mut opt_ids: BTreeMap<SiteId, ViewId> = BTreeMap::new();
    let mut pess_ids: BTreeMap<SiteId, ViewId> = BTreeMap::new();
    for (id, watch) in &locals {
        let site = world.site(*id);
        let opt = site.attach_view(
            Box::new(RecordingView::new(watch.clone())),
            watch,
            ViewMode::Optimistic,
        );
        let pess = site.attach_view(
            Box::new(RecordingView::new(watch.clone())),
            watch,
            ViewMode::Pessimistic,
        );
        opt_ids.insert(*id, opt);
        pess_ids.insert(*id, pess);
        // Manual-clock sinks: the harness stamps simulated time before
        // every step, so traces are byte-identical across same-seed runs.
        site.set_trace_sink(TraceSink::enabled_manual(id.0, TRACE_CAPACITY));
    }
    let log_baseline = world.log.len();
    let stats_baseline = world.total_stats();

    // Gesture streams: one seeded mix and one timer chain per site,
    // staggered by site id so streams interleave deterministically.
    let mut mixes: BTreeMap<SiteId, TxnMix> = BTreeMap::new();
    let mut remaining: BTreeMap<SiteId, u32> = BTreeMap::new();
    for id in locals.keys() {
        mixes.insert(
            *id,
            TxnMix::seeded(
                cfg.weights(),
                seed.wrapping_mul(0x0000_0100_0000_01b3) ^ u64::from(id.0),
            ),
        );
        remaining.insert(*id, cfg.txns_per_site);
        world.set_timer(
            *id,
            SimTime::from_millis(cfg.gap_ms + u64::from(id.0)),
            GESTURE_TOKEN,
        );
    }
    // Fault injections ride timers anchored at site 1 (never a victim).
    for (i, action) in plan.actions.iter().enumerate() {
        world.set_timer(
            SiteId(1),
            SimTime::from_millis(action.at_ms.max(1)),
            FAULT_TOKEN_BASE + i as u64,
        );
    }

    let mut live: BTreeSet<SiteId> = locals.keys().copied().collect();
    let mut violations: Vec<Violation> = Vec::new();
    let mut steps: u64 = 0;
    let mut gestures: u64 = 0;
    let mut hung = false;

    while let Some(ws) = stamped_step(&mut world) {
        steps += 1;
        if steps > STEP_BUDGET {
            violations.push(Violation {
                oracle: OracleKind::Quiescence,
                site: None,
                detail: format!("step budget {STEP_BUDGET} exhausted before quiescence"),
            });
            hung = true;
            break;
        }
        let WorldStep::Timer { site, token, .. } = ws else {
            continue;
        };
        if token >= FAULT_TOKEN_BASE {
            let action = &plan.actions[(token - FAULT_TOKEN_BASE) as usize];
            apply_fault(&mut world, &mut live, action);
        } else if token == GESTURE_TOKEN && live.contains(&site) {
            let rem = remaining.get_mut(&site).expect("known site");
            if *rem == 0 {
                continue;
            }
            *rem -= 1;
            let index = cfg.txns_per_site - 1 - *rem;
            let op = mixes.get_mut(&site).expect("known site").next_op();
            if submit_gesture(&mut world, &locals, site, index, op) {
                gestures += 1;
            }
            if *rem > 0 {
                world.set_timer(site, SimTime::from_millis(cfg.gap_ms), GESTURE_TOKEN);
            }
        }
    }

    // Final drain: heal any open cut, then run the world dry so every
    // in-flight commit and view notification lands.
    if world.net.is_partitioned() {
        world.net.heal();
    }
    while !hung {
        match stamped_step(&mut world) {
            Some(_) => {
                steps += 1;
                if steps > STEP_BUDGET {
                    violations.push(Violation {
                        oracle: OracleKind::Quiescence,
                        site: None,
                        detail: format!("step budget {STEP_BUDGET} exhausted during final drain"),
                    });
                    hung = true;
                }
            }
            None => break,
        }
    }

    // ------------------------------------------------------------------
    // Oracles.
    // ------------------------------------------------------------------
    let strict = !plan.has_kills();
    let live_ids: Vec<u32> = live.iter().map(|s| s.0).collect();

    // Per-step: no commit ever rolled back (any plan).
    let events: Vec<(u32, EngineEvent)> = world.log[log_baseline..]
        .iter()
        .map(|e| (e.site.0, e.event.clone()))
        .collect();
    violations.extend(oracle::check_no_commit_rollback(&events));

    // Committed VTs each site observed during the gesture window.
    let mut committed_at: BTreeMap<u32, BTreeSet<VirtualTime>> = BTreeMap::new();
    for (site, event) in &events {
        if let EngineEvent::TxnCommitted { vt, .. } = event {
            committed_at.entry(*site).or_default().insert(*vt);
        }
    }

    // Quiescence: every live site drained completely (any plan; §3.4
    // recovery must terminate too).
    if !hung {
        for id in &live {
            if !world.site(*id).is_quiescent() {
                let detail = world.site(*id).debug_stuck();
                violations.push(Violation {
                    oracle: OracleKind::Quiescence,
                    site: Some(id.0),
                    detail: format!("live site not quiescent after drain: {detail}"),
                });
            }
        }
    }

    // Convergence of every counter across live sites (any plan).
    for (j, names) in wired.iter().enumerate() {
        let digests: Vec<_> = live
            .iter()
            .map(|id| {
                let name = names[(id.0 - 1) as usize];
                (id.0, world.site(*id).committed_digest(name))
            })
            .collect();
        violations.extend(oracle::check_convergence(j, &digests));
    }

    // View oracles per live site; losslessness only for kill-free plans.
    for id in &live {
        let empty = BTreeSet::new();
        let committed = committed_at.get(&id.0).unwrap_or(&empty);
        let pess = world
            .site(*id)
            .view_ledger(pess_ids[id])
            .unwrap_or_default();
        violations.extend(oracle::check_pess_view(
            id.0,
            &pess,
            strict.then_some(committed),
        ));
        let opt = world.site(*id).view_ledger(opt_ids[id]).unwrap_or_default();
        violations.extend(oracle::check_opt_view(id.0, &opt, strict));
        violations.extend(oracle::check_gc(id.0, world.site(*id).gc_watermark()));
    }

    // Merge the per-site traces into one time-ordered JSONL stream.
    let mut trace_events = Vec::new();
    for id in locals.keys() {
        trace_events.extend(world.site(*id).trace_sink().drain());
    }
    trace_events.sort_by_key(|e| (e.ts_ns, e.site));
    let trace: Vec<String> = trace_events.iter().map(|e| e.to_jsonl()).collect();

    let totals = world.total_stats();
    RunReport {
        violations,
        steps,
        gestures,
        committed: totals.txns_committed - stats_baseline.txns_committed,
        conflicts: totals.txns_aborted_conflict - stats_baseline.txns_aborted_conflict,
        live: live_ids,
        trace,
    }
}

/// Stamps every sink with the simulated time of the next event, then
/// advances the world one step.
fn stamped_step(world: &mut SimWorld) -> Option<WorldStep> {
    world.flush();
    let t = world.net.peek_time().unwrap_or_else(|| world.now());
    let ns = t.as_micros() * 1000;
    for site in world.sites.values() {
        site.trace_sink().set_now_ns(ns);
    }
    world.step()
}

/// Applies one fault action to the running world.
fn apply_fault(world: &mut SimWorld, live: &mut BTreeSet<SiteId>, action: &FaultAction) {
    let max = world.sites.len() as u32;
    match &action.kind {
        FaultKind::Partition { a, b } => {
            let ga: Vec<SiteId> = a
                .iter()
                .filter(|s| (1..=max).contains(*s))
                .map(|s| SiteId(*s))
                .collect();
            let gb: Vec<SiteId> = b
                .iter()
                .filter(|s| (1..=max).contains(*s))
                .map(|s| SiteId(*s))
                .collect();
            if !ga.is_empty() && !gb.is_empty() {
                world.net.partition(&ga, &gb);
            }
        }
        FaultKind::Heal => world.net.heal(),
        FaultKind::Kill { site } => {
            let id = SiteId(*site);
            // Site 1 anchors fault timers; always keep two survivors.
            if *site != 1 && live.contains(&id) && live.len() > 2 {
                world.fail_site(id);
                live.remove(&id);
            }
        }
    }
}

/// Submits the gesture `op` at `site`, targeting counters rotated by the
/// gesture `index`. Returns whether a transaction was actually submitted
/// (membership ops are driven by fault plans here, not the mix).
fn submit_gesture(
    world: &mut SimWorld,
    locals: &BTreeMap<SiteId, Vec<ObjectName>>,
    site: SiteId,
    index: u32,
    op: MixOp,
) -> bool {
    let watch = &locals[&site];
    let object = watch[index as usize % watch.len()];
    let kind = match op {
        MixOp::Txn(kind) => kind,
        MixOp::Join | MixOp::Leave => return false,
    };
    match kind {
        TxnKind::BlindWrite => world.site(site).execute(Box::new(BlindWrite {
            object,
            value: i64::from(site.0) * 1000 + i64::from(index),
        })),
        TxnKind::ReadModifyWrite => world
            .site(site)
            .execute(Box::new(ReadModifyWrite { object, delta: 1 })),
        TxnKind::GuessHeavy => world.site(site).execute(Box::new(GuessHeavy {
            reads: watch.clone(),
            write: object,
            delta: 1,
        })),
    };
    true
}
