//! Invariant oracles: pluggable checks over a finished (or stepping) run.
//!
//! Each oracle is a pure function over data the harness extracts from the
//! world — engine event logs, view notification ledgers, committed-state
//! digests, GC watermarks — so every check is unit-testable without a
//! simulation.
//!
//! Oracles are layered by what a fault plan permits:
//!
//! - **Always**: convergence, no-commit-rollback, pessimistic
//!   monotonicity, GC watermark, bounded-step quiescence.
//! - **Kill-free plans only**: pessimistic losslessness,
//!   notified-values-are-committed, optimistic superseded-or-committed,
//!   strict per-site quiescence, trace completeness. §3.4 recovery may
//!   abort in-doubt transactions of a failed site, so these cannot be
//!   demanded under fail-stop kills (and a killed or crashed site
//!   legitimately truncates its trace mid-span).

use std::collections::BTreeSet;
use std::fmt;

use decaf_core::{CommittedDigest, EngineEvent, GcWatermark, ViewLedgerEntry, ViewLedgerKind};
use decaf_vt::VirtualTime;
use serde::{Deserialize, Serialize};

/// Which invariant a violation breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OracleKind {
    /// Live replicas disagree on a committed value at quiescence.
    Convergence,
    /// A transaction observed committed at a site was later rolled back
    /// there.
    NoCommitRollback,
    /// A pessimistic view's notifications were not strictly VT-increasing.
    PessMonotonic,
    /// A pessimistic view missed a committed update to a watched object.
    PessLossless,
    /// A pessimistic view was notified of a VT that never committed at
    /// its site.
    NotifiedCommitted,
    /// An optimistic view's last guess was neither superseded nor
    /// commit-confirmed, or a commit notification did not match its
    /// snapshot.
    OptSettled,
    /// Garbage collection advanced past the pessimistic-view frontier —
    /// history a straggler view still needs was discarded.
    GcWatermark,
    /// The run failed to drain: the step budget was exhausted, or a live
    /// site still held undelivered work at the end.
    Quiescence,
    /// A commit recovered from a restarted site's WAL prefix was no longer
    /// committed at that site by the end of the run — restart recovery
    /// silently dropped a durably logged transaction.
    CrashDurability,
    /// A committed virtual time's cross-site span could not be fully
    /// reconstructed from the merged trace at kill-free quiescence: a
    /// commit with no traced origin, a remote commit with no traced
    /// delivery, or a span-keyed send that was never received. The
    /// envelope-carried trace context makes every hole a bug — either a
    /// missing instrumentation point or a message path the stitcher
    /// cannot see.
    TraceComplete,
}

impl fmt::Display for OracleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OracleKind::Convergence => "convergence",
            OracleKind::NoCommitRollback => "no-commit-rollback",
            OracleKind::PessMonotonic => "pess-monotonic",
            OracleKind::PessLossless => "pess-lossless",
            OracleKind::NotifiedCommitted => "notified-committed",
            OracleKind::OptSettled => "opt-settled",
            OracleKind::GcWatermark => "gc-watermark",
            OracleKind::Quiescence => "quiescence",
            OracleKind::CrashDurability => "crash-durability",
            OracleKind::TraceComplete => "trace-complete",
        };
        f.write_str(s)
    }
}

/// One invariant violation found by an oracle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// The broken invariant.
    pub oracle: OracleKind,
    /// The site the violation was observed at, when site-local.
    pub site: Option<u32>,
    /// Human-readable specifics (VTs, digests, counts).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.site {
            Some(s) => write!(f, "[{}] site {}: {}", self.oracle, s, self.detail),
            None => write!(f, "[{}] {}", self.oracle, self.detail),
        }
    }
}

/// Per-step oracle: no commit is ever rolled back. Walks a site-stamped
/// engine event log in order; a `TxnAborted` for a VT previously reported
/// `TxnCommitted` *at the same site* is a violation.
pub fn check_no_commit_rollback(events: &[(u32, EngineEvent)]) -> Vec<Violation> {
    let mut committed: BTreeSet<(u32, VirtualTime)> = BTreeSet::new();
    let mut out = Vec::new();
    for (site, event) in events {
        match event {
            EngineEvent::TxnCommitted { vt, .. } => {
                committed.insert((*site, *vt));
            }
            EngineEvent::TxnAborted { vt, .. } => {
                if committed.contains(&(*site, *vt)) {
                    out.push(Violation {
                        oracle: OracleKind::NoCommitRollback,
                        site: Some(*site),
                        detail: format!("txn {vt:?} committed and later aborted"),
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// Pessimistic-view oracles over one view's notification ledger.
///
/// Monotonicity (strictly increasing update VTs, no commit entries) is
/// checked always. When `committed` is provided (kill-free plans), the
/// update set must *equal* the set of committed VTs the site observed in
/// the checked window: a missing VT is a losslessness violation (§4.2), a
/// surplus VT is a notification of something that never committed.
pub fn check_pess_view(
    site: u32,
    entries: &[ViewLedgerEntry],
    committed: Option<&BTreeSet<VirtualTime>>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut last: Option<VirtualTime> = None;
    let mut notified: BTreeSet<VirtualTime> = BTreeSet::new();
    for e in entries {
        match e.kind {
            ViewLedgerKind::Update(_) => {
                if let Some(prev) = last {
                    if e.ts <= prev {
                        out.push(Violation {
                            oracle: OracleKind::PessMonotonic,
                            site: Some(site),
                            detail: format!("update at {:?} after {:?}", e.ts, prev),
                        });
                    }
                }
                last = Some(e.ts);
                notified.insert(e.ts);
            }
            ViewLedgerKind::Commit => out.push(Violation {
                oracle: OracleKind::PessMonotonic,
                site: Some(site),
                detail: format!(
                    "commit notification at {:?} on a pessimistic view (only \
                     committed updates are ever shown)",
                    e.ts
                ),
            }),
        }
    }
    if let Some(committed) = committed {
        for vt in committed.difference(&notified) {
            out.push(Violation {
                oracle: OracleKind::PessLossless,
                site: Some(site),
                detail: format!("committed update {vt:?} never notified"),
            });
        }
        for vt in notified.difference(committed) {
            out.push(Violation {
                oracle: OracleKind::NotifiedCommitted,
                site: Some(site),
                detail: format!("notified {vt:?}, which never committed at this site"),
            });
        }
    }
    out
}

/// Optimistic-view oracle over one view's notification ledger (§4.1).
///
/// Structure is checked always: every commit notification must confirm
/// the most recent update's snapshot VT. Under `strict` (kill-free plans,
/// evaluated at quiescence) the final entry must be a commit — every
/// optimistic guess was eventually superseded by a later update or
/// confirmed committed, with nothing left dangling.
pub fn check_opt_view(site: u32, entries: &[ViewLedgerEntry], strict: bool) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut last_update: Option<VirtualTime> = None;
    for e in entries {
        match e.kind {
            ViewLedgerKind::Update(_) => last_update = Some(e.ts),
            ViewLedgerKind::Commit => match last_update {
                Some(ts) if ts == e.ts => last_update = None,
                Some(ts) => out.push(Violation {
                    oracle: OracleKind::OptSettled,
                    site: Some(site),
                    detail: format!("commit at {:?} does not match latest update {ts:?}", e.ts),
                }),
                None => out.push(Violation {
                    oracle: OracleKind::OptSettled,
                    site: Some(site),
                    detail: format!("commit at {:?} without a preceding update", e.ts),
                }),
            },
        }
    }
    if strict {
        if let Some(e) = entries.last() {
            if !matches!(e.kind, ViewLedgerKind::Commit) {
                out.push(Violation {
                    oracle: OracleKind::OptSettled,
                    site: Some(site),
                    detail: format!(
                        "final update {:?} neither superseded nor committed at quiescence",
                        e.ts
                    ),
                });
            }
        }
    }
    out
}

/// Convergence oracle: every live replica of one logical object agrees on
/// the latest committed value — same commit VT, same structural digest.
pub fn check_convergence(
    object: usize,
    digests: &[(u32, Option<CommittedDigest>)],
) -> Vec<Violation> {
    let mut out = Vec::new();
    let Some((ref_site, reference)) = digests.first().copied() else {
        return out;
    };
    for (site, digest) in digests.iter().skip(1) {
        if *digest != reference {
            out.push(Violation {
                oracle: OracleKind::Convergence,
                site: Some(*site),
                detail: format!(
                    "object #{object}: {digest:?} differs from site {ref_site}'s {reference:?}"
                ),
            });
        }
    }
    out
}

/// Crash-durability oracle: every commit present in the WAL prefix a
/// restarted site recovered from must still be committed at that site at
/// the end of the run. The WAL is the durability promise — recovery and
/// the subsequent rejoin may *add* commits the site missed while down,
/// but must never lose one it had fsynced.
pub fn check_crash_durability(
    site: u32,
    recovered: &BTreeSet<VirtualTime>,
    committed_now: &BTreeSet<VirtualTime>,
) -> Vec<Violation> {
    recovered
        .difference(committed_now)
        .map(|vt| Violation {
            oracle: OracleKind::CrashDurability,
            site: Some(site),
            detail: format!("wal-recovered commit {vt:?} no longer committed after restart"),
        })
        .collect()
}

/// Trace-completeness oracle (kill-free plans, evaluated at quiescence):
/// stitches the run's merged trace and demands that every committed
/// virtual time has a fully reconstructible cross-site span — a traced
/// origin commit, and for each remote commit a traced delivery of the
/// span-keyed message, with no send left unreceived.
///
/// The caller must only arm this when no sink dropped events
/// (bounded-ring overflow legitimately punches holes) and no site was
/// killed or crashed (a dead site's trace ends mid-span). Under those
/// preconditions each hole the [`Stitcher`](decaf_trace::Stitcher)
/// reports is an instrumentation or delivery-path bug, surfaced verbatim.
pub fn check_trace_complete(events: &[decaf_trace::TraceEvent]) -> Vec<Violation> {
    let mut stitcher = decaf_trace::Stitcher::new();
    for ev in events {
        stitcher.observe(ev);
    }
    stitcher
        .finish()
        .incomplete
        .iter()
        .map(|hole| Violation {
            oracle: OracleKind::TraceComplete,
            site: None,
            detail: hole.clone(),
        })
        .collect()
}

/// Pessimistic coverage oracle for crash plans: the union of a site's
/// pessimistic update notifications across the whole run — pre-crash
/// ledger segments plus the post-restart ledger — must equal the set of
/// committed VTs the site observed, modulo the `recovered` exemption
/// below. Unlike [`check_pess_view`]'s strict mode this places no
/// ordering constraint across the restart boundary (each segment is
/// checked monotonic separately), but losslessness must hold *through*
/// the crash: a commit notified before the crash stays covered by the
/// stashed segment, one lost with the torn tail must be re-notified
/// after catch-up re-commits it. Commits in `recovered` — the VTs the
/// site replayed from its WAL — may go un-notified: the restarted view
/// incarnation observes them as its initial state instead.
pub fn check_pess_coverage(
    site: u32,
    notified: &BTreeSet<VirtualTime>,
    committed: &BTreeSet<VirtualTime>,
    recovered: &BTreeSet<VirtualTime>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for vt in committed.difference(notified) {
        // A commit the site durably recovered from its WAL surfaces as
        // the restarted store's *initial state*: the view incarnation
        // that would have received the update died with the process, and
        // the re-attached one starts from the recovered snapshot. Only
        // commits outside the recovered prefix must be (re-)notified.
        if recovered.contains(vt) {
            continue;
        }
        out.push(Violation {
            oracle: OracleKind::PessLossless,
            site: Some(site),
            detail: format!("committed update {vt:?} never notified across restart"),
        });
    }
    for vt in notified.difference(committed) {
        out.push(Violation {
            oracle: OracleKind::NotifiedCommitted,
            site: Some(site),
            detail: format!("notified {vt:?}, which never committed at this site"),
        });
    }
    out
}

/// GC straggler oracle: the last collection sweep at a site never
/// discarded history at or above the pessimistic-view frontier it
/// recorded at sweep time.
pub fn check_gc(site: u32, gc: Option<GcWatermark>) -> Vec<Violation> {
    let mut out = Vec::new();
    if let Some(gc) = gc {
        if let Some(frontier) = gc.pess_frontier {
            if gc.low > frontier {
                out.push(Violation {
                    oracle: OracleKind::GcWatermark,
                    site: Some(site),
                    detail: format!(
                        "gc low watermark {:?} passed pessimistic frontier {frontier:?} \
                         ({} entries discarded)",
                        gc.low, gc.discarded
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use decaf_core::ViewMode;
    use decaf_vt::SiteId;

    fn vt(l: u64, s: u32) -> VirtualTime {
        VirtualTime::new(l, SiteId(s))
    }

    fn upd(l: u64, s: u32) -> ViewLedgerEntry {
        ViewLedgerEntry {
            ts: vt(l, s),
            kind: ViewLedgerKind::Update(ViewMode::Pessimistic),
        }
    }

    fn opt_upd(l: u64, s: u32) -> ViewLedgerEntry {
        ViewLedgerEntry {
            ts: vt(l, s),
            kind: ViewLedgerKind::Update(ViewMode::Optimistic),
        }
    }

    fn commit(l: u64, s: u32) -> ViewLedgerEntry {
        ViewLedgerEntry {
            ts: vt(l, s),
            kind: ViewLedgerKind::Commit,
        }
    }

    #[test]
    fn commit_rollback_is_flagged_per_site() {
        let events = vec![
            (
                1,
                EngineEvent::TxnCommitted {
                    vt: vt(3, 1),
                    local_origin: true,
                },
            ),
            // Abort of the same VT at a *different* site is not this
            // site's rollback.
            (
                2,
                EngineEvent::TxnAborted {
                    vt: vt(3, 1),
                    local_origin: false,
                    retried: false,
                },
            ),
            (
                1,
                EngineEvent::TxnAborted {
                    vt: vt(3, 1),
                    local_origin: true,
                    retried: false,
                },
            ),
        ];
        let v = check_no_commit_rollback(&events);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].oracle, OracleKind::NoCommitRollback);
        assert_eq!(v[0].site, Some(1));
    }

    #[test]
    fn pess_monotonic_and_lossless_pass_on_clean_ledger() {
        let committed: BTreeSet<VirtualTime> = [vt(2, 1), vt(5, 2), vt(9, 1)].into_iter().collect();
        let entries = vec![upd(2, 1), upd(5, 2), upd(9, 1)];
        assert!(check_pess_view(1, &entries, Some(&committed)).is_empty());
    }

    #[test]
    fn pess_missing_commit_is_lossless_violation() {
        let committed: BTreeSet<VirtualTime> = [vt(2, 1), vt(5, 2)].into_iter().collect();
        let entries = vec![upd(2, 1)];
        let v = check_pess_view(3, &entries, Some(&committed));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].oracle, OracleKind::PessLossless);
        // Without the committed set (kill plans) the same ledger passes.
        assert!(check_pess_view(3, &entries, None).is_empty());
    }

    #[test]
    fn pess_regression_and_phantom_are_flagged() {
        let committed: BTreeSet<VirtualTime> = [vt(5, 2)].into_iter().collect();
        let entries = vec![upd(5, 2), upd(3, 1)];
        let kinds: BTreeSet<OracleKind> = check_pess_view(1, &entries, Some(&committed))
            .into_iter()
            .map(|v| v.oracle)
            .collect();
        assert!(kinds.contains(&OracleKind::PessMonotonic));
        assert!(kinds.contains(&OracleKind::NotifiedCommitted));
    }

    #[test]
    fn opt_ledger_must_end_committed_when_strict() {
        let ok = vec![opt_upd(2, 1), opt_upd(4, 2), commit(4, 2)];
        assert!(check_opt_view(1, &ok, true).is_empty());
        let dangling = vec![opt_upd(2, 1), commit(2, 1), opt_upd(4, 2)];
        let v = check_opt_view(1, &dangling, true);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].oracle, OracleKind::OptSettled);
        // Non-strict (kill plans): a dangling final guess is tolerated,
        // but a mismatched commit never is.
        assert!(check_opt_view(1, &dangling, false).is_empty());
        let mismatched = vec![opt_upd(2, 1), commit(9, 9)];
        assert_eq!(check_opt_view(1, &mismatched, false).len(), 1);
    }

    #[test]
    fn convergence_compares_digests_across_sites() {
        let d = CommittedDigest {
            vt: vt(7, 2),
            hash: 42,
        };
        let same = vec![(1, Some(d)), (2, Some(d)), (3, Some(d))];
        assert!(check_convergence(0, &same).is_empty());
        let other = CommittedDigest {
            vt: vt(7, 2),
            hash: 43,
        };
        let diverged = vec![(1, Some(d)), (2, Some(other))];
        let v = check_convergence(1, &diverged);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].oracle, OracleKind::Convergence);
        assert_eq!(v[0].site, Some(2));
    }

    #[test]
    fn crash_durability_flags_lost_wal_commits() {
        let recovered: BTreeSet<VirtualTime> = [vt(2, 1), vt(5, 2)].into_iter().collect();
        let committed: BTreeSet<VirtualTime> = [vt(2, 1), vt(5, 2), vt(9, 3)].into_iter().collect();
        // Extra commits (gained via catch-up) are fine.
        assert!(check_crash_durability(2, &recovered, &committed).is_empty());
        // A recovered commit missing from the final committed set is not.
        let lossy: BTreeSet<VirtualTime> = [vt(2, 1)].into_iter().collect();
        let v = check_crash_durability(2, &recovered, &lossy);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].oracle, OracleKind::CrashDurability);
        assert_eq!(v[0].site, Some(2));
    }

    #[test]
    fn pess_coverage_checks_both_directions_across_restart() {
        let none = BTreeSet::new();
        let committed: BTreeSet<VirtualTime> = [vt(2, 1), vt(5, 2)].into_iter().collect();
        let exact = committed.clone();
        assert!(check_pess_coverage(1, &exact, &committed, &none).is_empty());
        let missing: BTreeSet<VirtualTime> = [vt(2, 1)].into_iter().collect();
        let v = check_pess_coverage(1, &missing, &committed, &none);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].oracle, OracleKind::PessLossless);
        // ... unless the missing commit was recovered from the WAL: the
        // re-attached view sees it as initial state, not an update.
        let recovered: BTreeSet<VirtualTime> = [vt(5, 2)].into_iter().collect();
        assert!(check_pess_coverage(1, &missing, &committed, &recovered).is_empty());
        let phantom: BTreeSet<VirtualTime> = [vt(2, 1), vt(5, 2), vt(8, 3)].into_iter().collect();
        let v = check_pess_coverage(1, &phantom, &committed, &none);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].oracle, OracleKind::NotifiedCommitted);
    }

    #[test]
    fn trace_complete_flags_remote_commit_without_delivery() {
        use decaf_trace::{TraceEvent, TraceKind};
        let ev = |site, ts_ns, kind, vt, peer, span| TraceEvent {
            site,
            ts_ns,
            kind,
            vt,
            peer,
            n: None,
            span,
        };
        // Site 1 commits vt (7,1), sends the span-keyed envelope to site 2,
        // which receives it and re-commits: a complete span.
        let span = Some((1, 7, 0));
        let complete = vec![
            ev(1, 10, TraceKind::Commit, Some((7, 1)), None, None),
            ev(1, 11, TraceKind::MsgSend, Some((7, 1)), Some(2), span),
            ev(2, 20, TraceKind::MsgRecv, Some((7, 1)), Some(1), span),
            ev(2, 21, TraceKind::Commit, Some((7, 1)), None, None),
        ];
        assert!(check_trace_complete(&complete).is_empty());
        // Drop the delivery event: the remote commit has no traced path.
        let holey: Vec<TraceEvent> = complete
            .iter()
            .filter(|e| e.kind != TraceKind::MsgRecv)
            .cloned()
            .collect();
        let v = check_trace_complete(&holey);
        assert!(!v.is_empty());
        assert!(v.iter().all(|v| v.oracle == OracleKind::TraceComplete));
    }

    #[test]
    fn gc_watermark_must_stay_below_pess_frontier() {
        let ok = GcWatermark {
            low: vt(4, 1),
            pess_frontier: Some(vt(4, 1)),
            discarded: 10,
        };
        assert!(check_gc(1, Some(ok)).is_empty());
        assert!(check_gc(1, None).is_empty());
        let bad = GcWatermark {
            low: vt(9, 1),
            pess_frontier: Some(vt(4, 1)),
            discarded: 10,
        };
        let v = check_gc(2, Some(bad));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].oracle, OracleKind::GcWatermark);
    }
}
