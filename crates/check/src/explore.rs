//! Schedule exploration: seeded random sweeps and bounded exhaustive
//! enumeration of fault decision sequences.

use decaf_core::TestMutation;
use serde::{Deserialize, Serialize};

use crate::artifact::Counterexample;
use crate::config::ScenarioConfig;
use crate::harness::run_once;
use crate::plan::{FaultAction, FaultClasses, FaultKind, FaultPlan};
use crate::shrink::shrink_plan;

/// Cap on counterexamples retained per report (runs keep being counted).
const MAX_COUNTEREXAMPLES: usize = 4;

/// What a sweep should explore.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// The scenario every schedule runs.
    pub config: ScenarioConfig,
    /// Fault classes random plans may draw from.
    pub classes: FaultClasses,
    /// Number of seeds to sweep.
    pub seeds: u64,
    /// First seed (seeds are `seed_start..seed_start + seeds`).
    pub seed_start: u64,
    /// Delta-debug failing plans down to minimal schedules.
    pub shrink: bool,
    /// Stop at the first failing schedule (mutation-detection budget).
    pub stop_at_first: bool,
    /// Engine mutation to inject into every site (checker self-tests).
    pub mutation: Option<TestMutation>,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            config: ScenarioConfig::default(),
            classes: FaultClasses::partitions_only(),
            seeds: 64,
            seed_start: 1,
            shrink: true,
            stop_at_first: false,
            mutation: None,
        }
    }
}

/// Aggregate outcome of an exploration.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CheckReport {
    /// Random schedules explored.
    pub random_schedules: u64,
    /// Exhaustively enumerated schedules explored.
    pub exhaustive_schedules: u64,
    /// Transaction gestures submitted across all runs.
    pub gestures: u64,
    /// Transactions committed across all runs.
    pub committed: u64,
    /// Number of failing schedules.
    pub violations: u64,
    /// Retained (shrunk) counterexamples, capped at a handful.
    pub counterexamples: Vec<Counterexample>,
}

impl CheckReport {
    /// Folds another report into this one.
    pub fn merge(&mut self, other: CheckReport) {
        self.random_schedules += other.random_schedules;
        self.exhaustive_schedules += other.exhaustive_schedules;
        self.gestures += other.gestures;
        self.committed += other.committed;
        self.violations += other.violations;
        for ce in other.counterexamples {
            if self.counterexamples.len() < MAX_COUNTEREXAMPLES {
                self.counterexamples.push(ce);
            }
        }
    }

    fn record_failure(
        &mut self,
        cfg: &ScenarioConfig,
        seed: u64,
        mutation: Option<TestMutation>,
        plan: FaultPlan,
        report: crate::harness::RunReport,
        shrink: bool,
    ) {
        self.violations += 1;
        if self.counterexamples.len() >= MAX_COUNTEREXAMPLES {
            return;
        }
        let shrunk_from = plan.actions.len();
        let (final_plan, final_report) = if shrink && !plan.actions.is_empty() {
            let minimal = shrink_plan(cfg, seed, &plan, mutation);
            let rerun = run_once(cfg, &minimal, seed, mutation);
            (minimal, rerun)
        } else {
            (plan, report)
        };
        self.counterexamples.push(Counterexample::new(
            cfg,
            seed,
            mutation,
            &final_plan,
            shrunk_from,
            &final_report,
        ));
    }
}

/// Sweeps seeded random schedules: for each seed, generates a fault plan
/// from the enabled classes and runs the scenario under it.
pub fn sweep(opts: &CheckOptions) -> CheckReport {
    let mut out = CheckReport::default();
    for seed in opts.seed_start..opts.seed_start.saturating_add(opts.seeds) {
        let plan = FaultPlan::random(&opts.config, opts.classes, seed);
        let report = run_once(&opts.config, &plan, seed, opts.mutation);
        out.random_schedules += 1;
        out.gestures += report.gestures;
        out.committed += report.committed;
        if !report.violations.is_empty() {
            out.record_failure(&opts.config, seed, opts.mutation, plan, report, opts.shrink);
            if opts.stop_at_first {
                break;
            }
        }
    }
    out
}

/// Bounded exhaustive exploration: every sequence of `depth` fault
/// decisions, drawn from a small alphabet — *no action*, *heal*, and
/// every singleton partition (one site cut off from the rest) — placed
/// at evenly spaced times across the gesture window. All plans run with
/// the same `seed`, so schedules differ only in their fault decisions.
///
/// The schedule count is `(2 + sites)^depth`; `depth` is capped at 6 to
/// keep that bounded.
pub fn exhaustive(cfg: &ScenarioConfig, depth: u32, seed: u64) -> CheckReport {
    assert!(depth <= 6, "exhaustive depth capped at 6");
    let mut alphabet: Vec<Option<FaultKind>> = vec![None, Some(FaultKind::Heal)];
    for k in 1..=cfg.sites {
        let rest: Vec<u32> = (1..=cfg.sites).filter(|s| *s != k).collect();
        alphabet.push(Some(FaultKind::Partition {
            a: vec![k],
            b: rest,
        }));
    }
    let window = (cfg.horizon_ms() / (u64::from(depth) + 1)).max(1);
    let total = (alphabet.len() as u64).pow(depth);
    let mut out = CheckReport::default();
    for index in 0..total {
        let mut actions = Vec::new();
        let mut rem = index;
        for slot in 0..depth {
            let choice = (rem % alphabet.len() as u64) as usize;
            rem /= alphabet.len() as u64;
            if let Some(kind) = alphabet[choice].clone() {
                actions.push(FaultAction {
                    at_ms: (u64::from(slot) + 1) * window,
                    kind,
                });
            }
        }
        let plan = FaultPlan { actions };
        let report = run_once(cfg, &plan, seed, None);
        out.exhaustive_schedules += 1;
        out.gestures += report.gestures;
        out.committed += report.committed;
        if !report.violations.is_empty() {
            out.record_failure(cfg, seed, None, plan, report, true);
        }
    }
    out
}

/// The CI smoke report: bounded random + exhaustive exploration with a
/// machine-checkable verdict.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SmokeReport {
    /// Random schedules explored.
    pub random_schedules: u64,
    /// Exhaustive schedules explored.
    pub exhaustive_schedules: u64,
    /// Total schedules explored.
    pub schedules: u64,
    /// Gestures submitted across all schedules.
    pub gestures: u64,
    /// Transactions committed across all schedules.
    pub committed: u64,
    /// Failing schedules found (must be 0 on a healthy engine).
    pub violations: u64,
    /// `violations == 0`.
    pub ok: bool,
}

/// The bounded CI gate: 512 seeded random partition/jitter schedules over
/// the default 3-site scenario, 128 crash-restart schedules exercising
/// WAL recovery, torn tails, and the rejoin protocol, plus one
/// exhaustively enumerated 3-site configuration (125 fault decision
/// sequences). The partition sweep is kill- and crash-free, so every
/// oracle — including losslessness — applies to it; the crash sweep adds
/// the crash-durability and restart-coverage oracles.
pub fn smoke() -> SmokeReport {
    let random_cfg = ScenarioConfig {
        txns_per_site: 3,
        ..ScenarioConfig::default()
    };
    let opts = CheckOptions {
        config: random_cfg.clone(),
        classes: FaultClasses::partitions_only(),
        seeds: 512,
        seed_start: 1,
        shrink: false,
        stop_at_first: false,
        mutation: None,
    };
    let mut report = sweep(&opts);
    report.merge(sweep(&CheckOptions {
        config: random_cfg,
        classes: FaultClasses::crashes_only(),
        seeds: 128,
        seed_start: 1,
        shrink: false,
        stop_at_first: false,
        mutation: None,
    }));
    let exhaustive_cfg = ScenarioConfig {
        objects: 1,
        txns_per_site: 2,
        ..ScenarioConfig::default()
    };
    report.merge(exhaustive(&exhaustive_cfg, 3, 1));
    SmokeReport {
        random_schedules: report.random_schedules,
        exhaustive_schedules: report.exhaustive_schedules,
        schedules: report.random_schedules + report.exhaustive_schedules,
        gestures: report.gestures,
        committed: report.committed,
        violations: report.violations,
        ok: report.violations == 0,
    }
}
