//! End-to-end tests of the model checker itself: determinism, clean
//! verdicts on a healthy engine, seeded-bug detection with shrinking and
//! replay, and exploration bookkeeping.

use decaf_check::{
    exhaustive, run_once, sweep, CheckOptions, Counterexample, FaultAction, FaultClasses,
    FaultKind, FaultPlan, OracleKind, ScenarioConfig,
};
use decaf_core::TestMutation;

fn small_cfg() -> ScenarioConfig {
    ScenarioConfig {
        txns_per_site: 3,
        ..ScenarioConfig::default()
    }
}

fn partition_plan() -> FaultPlan {
    FaultPlan {
        actions: vec![
            FaultAction {
                at_ms: 40,
                kind: FaultKind::Partition {
                    a: vec![1],
                    b: vec![2, 3],
                },
            },
            FaultAction {
                at_ms: 90,
                kind: FaultKind::Heal,
            },
        ],
    }
}

#[test]
fn quiet_schedule_upholds_every_oracle() {
    let cfg = small_cfg();
    let report = run_once(&cfg, &FaultPlan::quiet(), 7, None);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.gestures, u64::from(cfg.sites * cfg.txns_per_site));
    assert!(report.committed > 0);
    assert_eq!(report.live, vec![1, 2, 3]);
    assert!(!report.trace.is_empty(), "trace should capture the run");
}

#[test]
fn same_seed_same_schedule_is_byte_identical() {
    let cfg = small_cfg();
    let plan = partition_plan();
    let a = run_once(&cfg, &plan, 42, None);
    let b = run_once(&cfg, &plan, 42, None);
    assert!(a.violations.is_empty(), "{:?}", a.violations);
    assert_eq!(a.violations, b.violations);
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.committed, b.committed);
    // The replayability contract: traces match line for line, bytes for
    // bytes (manual-clock sinks, seeded RNGs, deterministic simulator).
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.trace.join("\n"), b.trace.join("\n"));
}

#[test]
fn partition_heal_sweep_passes_all_oracles() {
    let opts = CheckOptions {
        config: small_cfg(),
        classes: FaultClasses::partitions_only(),
        seeds: 12,
        seed_start: 100,
        shrink: false,
        stop_at_first: false,
        mutation: None,
    };
    let report = sweep(&opts);
    assert_eq!(report.random_schedules, 12);
    assert_eq!(report.violations, 0, "{:#?}", report.counterexamples);
    assert!(report.committed > 0);
}

#[test]
fn kill_schedules_converge_among_survivors() {
    let cfg = small_cfg();
    let plan = FaultPlan {
        actions: vec![FaultAction {
            at_ms: 50,
            kind: FaultKind::Kill { site: 3 },
        }],
    };
    let report = run_once(&cfg, &plan, 9, None);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.live, vec![1, 2], "site 3 should be dead");
}

#[test]
fn crash_restart_schedule_recovers_and_converges() {
    // One site crashes mid-run with a torn WAL tail, restarts, recovers,
    // and rejoins: every oracle — convergence including the restarted
    // site, crash durability, pessimistic coverage through the restart —
    // must hold, and nobody is permanently dead at the end.
    let cfg = small_cfg();
    let plan = FaultPlan {
        actions: vec![FaultAction {
            at_ms: 50,
            kind: FaultKind::CrashRestart {
                site: 3,
                down_ms: 80,
                torn: 24,
            },
        }],
    };
    let report = run_once(&cfg, &plan, 11, None);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.live, vec![1, 2, 3], "a crash is not a kill");
    assert!(report.committed > 0);
}

#[test]
fn crash_restart_schedules_are_deterministic() {
    let cfg = small_cfg();
    let plan = FaultPlan {
        actions: vec![
            FaultAction {
                at_ms: 35,
                kind: FaultKind::CrashRestart {
                    site: 2,
                    down_ms: 60,
                    torn: 0,
                },
            },
            FaultAction {
                at_ms: 70,
                kind: FaultKind::Heal,
            },
        ],
    };
    let a = run_once(&cfg, &plan, 23, None);
    let b = run_once(&cfg, &plan, 23, None);
    assert!(a.violations.is_empty(), "{:?}", a.violations);
    assert_eq!(a.violations, b.violations);
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.trace, b.trace);
}

#[test]
fn crash_sweep_passes_all_oracles() {
    let opts = CheckOptions {
        config: small_cfg(),
        classes: FaultClasses::crashes_only(),
        seeds: 24,
        seed_start: 1,
        shrink: false,
        stop_at_first: false,
        mutation: None,
    };
    let report = sweep(&opts);
    assert_eq!(report.random_schedules, 24);
    assert_eq!(report.violations, 0, "{:#?}", report.counterexamples);
    assert!(report.committed > 0);
}

#[test]
fn exhaustive_enumerates_the_full_alphabet() {
    let cfg = ScenarioConfig {
        objects: 1,
        txns_per_site: 2,
        ..ScenarioConfig::default()
    };
    // Alphabet for 3 sites: none, heal, 3 singleton cuts = 5; depth 2.
    let report = exhaustive(&cfg, 2, 1);
    assert_eq!(report.exhaustive_schedules, 25);
    assert_eq!(report.violations, 0, "{:#?}", report.counterexamples);
}

#[test]
fn seeded_bug_is_caught_shrunk_and_replayed() {
    // The DropPessCommitNotice mutation starves pessimistic views of
    // commit notices: any schedule with a committed write on a watched
    // object violates losslessness, so detection needs exactly one seed
    // of budget.
    let opts = CheckOptions {
        config: small_cfg(),
        classes: FaultClasses::partitions_only(),
        seeds: 8,
        seed_start: 1,
        shrink: true,
        stop_at_first: true,
        mutation: Some(TestMutation::DropPessCommitNotice),
    };
    let report = sweep(&opts);
    assert!(report.violations >= 1, "mutation must be detected");
    assert_eq!(report.random_schedules, 1, "first seed should already fail");
    let ce = report
        .counterexamples
        .first()
        .expect("counterexample retained");
    assert!(
        ce.violations
            .iter()
            .any(|v| v.oracle == OracleKind::PessLossless),
        "expected a losslessness violation: {:?}",
        ce.violations
    );
    // Shrinking is removal-only and this failure needs no faults at all,
    // so the minimal schedule is empty.
    assert!(ce.plan.actions.len() <= ce.shrunk_from);
    assert!(
        ce.plan.actions.is_empty(),
        "mutation fails without faults; minimal plan should be empty: {:?}",
        ce.plan
    );
    // The frozen artifact replays deterministically.
    assert!(ce.reproduces(), "artifact must replay byte-for-byte");
}

#[test]
fn skip_rollback_renotify_mutation_is_caught_by_sweep() {
    // The subtler seeded bug: rollbacks stop re-notifying optimistic
    // views, so a view can be left displaying a rolled-back guess.
    // Detection is schedule-dependent — a *final* abort (retry budget
    // exhausted) must land on a view's current guess with no later
    // update superseding it — so the scenario maximizes contention
    // (one object, increments only, zero retries) and the sweep gets a
    // real seed budget.
    let cfg = ScenarioConfig {
        objects: 1,
        txns_per_site: 4,
        w_increment: 1,
        w_blind_write: 0,
        w_guess_heavy: 1,
        retry_budget: 0,
        ..ScenarioConfig::default()
    };
    let opts = CheckOptions {
        config: cfg,
        classes: FaultClasses::partitions_only(),
        seeds: 64,
        seed_start: 1,
        shrink: false,
        stop_at_first: true,
        mutation: Some(TestMutation::SkipRollbackRenotify),
    };
    let report = sweep(&opts);
    assert!(
        report.violations >= 1,
        "SkipRollbackRenotify should be caught within 64 seeds"
    );
}

#[test]
fn counterexample_artifact_round_trips_through_json() {
    let cfg = small_cfg();
    let plan = partition_plan();
    let report = run_once(&cfg, &plan, 3, Some(TestMutation::DropPessCommitNotice));
    assert!(!report.violations.is_empty());
    let ce = Counterexample::new(
        &cfg,
        3,
        Some(TestMutation::DropPessCommitNotice),
        &plan,
        plan.actions.len(),
        &report,
    );
    let json = ce.to_json();
    let back = Counterexample::from_json(&json).expect("parse artifact");
    assert_eq!(ce, back);
    assert_eq!(back.mutation(), Some(TestMutation::DropPessCommitNotice));
    assert!(back.reproduces());
}

mod shrink_properties {
    use super::*;
    use decaf_check::shrink_plan;
    use proptest::prelude::*;

    fn arb_action() -> impl Strategy<Value = FaultAction> {
        let kind = prop_oneof![
            Just(FaultKind::Heal),
            Just(FaultKind::Partition {
                a: vec![1],
                b: vec![2, 3],
            }),
            Just(FaultKind::Partition {
                a: vec![2],
                b: vec![1, 3],
            }),
        ];
        (0u64..160, kind).prop_map(|(at_ms, kind)| FaultAction { at_ms, kind })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Shrinker contract: the output still fails the oracle, and is
        /// never larger than the input. The injected mutation makes every
        /// schedule fail, so the predicate is non-trivial everywhere.
        #[test]
        fn shrunk_plan_still_fails_and_never_grows(actions in proptest::collection::vec(arb_action(), 0..5)) {
            let cfg = ScenarioConfig {
                sites: 2,
                objects: 1,
                txns_per_site: 2,
                ..ScenarioConfig::default()
            };
            let mut actions = actions;
            actions.sort_by_key(|a| a.at_ms);
            let plan = FaultPlan { actions };
            let mutation = Some(TestMutation::DropPessCommitNotice);
            let shrunk = shrink_plan(&cfg, 5, &plan, mutation);
            prop_assert!(shrunk.actions.len() <= plan.actions.len());
            let verdict = run_once(&cfg, &shrunk, 5, mutation);
            prop_assert!(!verdict.violations.is_empty(), "shrunk plan must still fail");
        }
    }
}
