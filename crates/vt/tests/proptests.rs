//! Property-based tests for virtual-time primitives: the history behaves
//! like a sorted map regardless of insertion order, and reservations /
//! clocks uphold their invariants.

use proptest::prelude::*;

use decaf_vt::{History, LamportClock, ReservationSet, SiteId, VirtualTime};

fn vt(lamport: u64, site: u32) -> VirtualTime {
    VirtualTime::new(lamport, SiteId(site))
}

fn arb_vt() -> impl Strategy<Value = VirtualTime> {
    (1u64..50, 0u32..4).prop_map(|(l, s)| vt(l, s))
}

proptest! {
    /// Whatever the insertion order, iteration is sorted and `current` is
    /// the max-VT entry.
    #[test]
    fn history_iteration_is_sorted(entries in proptest::collection::vec((arb_vt(), 0i64..100), 0..40)) {
        let mut h = History::new();
        for (t, v) in &entries {
            h.insert(*t, *v);
        }
        let vts: Vec<VirtualTime> = h.iter().map(|e| e.vt).collect();
        let mut sorted = vts.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(&vts, &sorted);
        if let Some(cur) = h.current() {
            prop_assert_eq!(cur.vt, *vts.last().unwrap());
        } else {
            prop_assert!(entries.is_empty());
        }
    }

    /// `value_at` agrees with a naive model (last write at or before the
    /// probe, later inserts win on VT ties).
    #[test]
    fn history_value_at_matches_model(
        entries in proptest::collection::vec((arb_vt(), 0i64..100), 1..40),
        probe in arb_vt(),
    ) {
        let mut h = History::new();
        let mut model: std::collections::BTreeMap<VirtualTime, i64> = Default::default();
        for (t, v) in &entries {
            h.insert(*t, *v);
            model.insert(*t, *v);
        }
        let expected = model.range(..=probe).next_back().map(|(_, v)| *v);
        prop_assert_eq!(h.value_at(probe).map(|e| e.value), expected);
    }

    /// The RL check agrees with a naive open-interval scan.
    #[test]
    fn history_rl_check_matches_model(
        entries in proptest::collection::vec(arb_vt(), 0..30),
        lo in arb_vt(),
        hi in arb_vt(),
    ) {
        let mut h = History::new();
        for t in &entries {
            h.insert(*t, ());
        }
        let expected = entries.iter().any(|t| *t > lo && *t < hi);
        prop_assert_eq!(h.has_write_in(lo, hi), expected);
    }

    /// GC never discards the latest committed entry or anything after the
    /// low-water mark, and the observable value at any probe ≥ low water is
    /// unchanged.
    #[test]
    fn history_gc_preserves_reachable_values(
        entries in proptest::collection::vec((arb_vt(), 0i64..100, proptest::bool::ANY), 1..30),
        low in arb_vt(),
        probe_after in 0u64..20,
    ) {
        let mut h = History::new();
        for (t, v, committed) in &entries {
            h.insert(*t, *v);
            if *committed {
                h.mark_committed(*t);
            }
        }
        let probe = VirtualTime::new(low.lamport + probe_after, low.site);
        let before = h.value_at(probe).map(|e| (e.vt, e.value));
        let latest_committed = h.latest_committed().map(|e| e.vt);
        h.gc(low);
        // Latest committed entry survives.
        prop_assert_eq!(h.latest_committed().map(|e| e.vt), latest_committed);
        // Reads at or after the low-water mark are unchanged.
        prop_assert_eq!(h.value_at(probe).map(|e| (e.vt, e.value)), before);
    }

    /// Purging entries restores the pre-insertion observable state.
    #[test]
    fn history_purge_inverts_insert(
        base in proptest::collection::vec((arb_vt(), 0i64..100), 0..20),
        extra in arb_vt(),
        v in 0i64..100,
    ) {
        let mut h = History::new();
        for (t, val) in &base {
            h.insert(*t, *val);
        }
        let snapshot: Vec<_> = h.iter().map(|e| (e.vt, e.value)).collect();
        if h.entry_at(extra).is_none() {
            h.insert(extra, v);
            h.purge(extra);
            let after: Vec<_> = h.iter().map(|e| (e.vt, e.value)).collect();
            prop_assert_eq!(snapshot, after);
        }
    }

    /// A write inside any foreign reservation is rejected; endpoint and
    /// owner writes are accepted.
    #[test]
    fn reservations_reject_exactly_interior_foreign_writes(
        reservations in proptest::collection::vec((arb_vt(), 1u64..20), 0..20),
        w in arb_vt(),
    ) {
        let mut rs = ReservationSet::new();
        let mut intervals = Vec::new();
        for (lo, span) in &reservations {
            let hi = VirtualTime::new(lo.lamport + span, lo.site);
            let owner = hi;
            rs.reserve(*lo, hi, owner);
            intervals.push((*lo, hi));
        }
        let expected_conflict = intervals.iter().any(|(lo, hi)| w > *lo && w < *hi);
        prop_assert_eq!(rs.check_write(w).is_err(), expected_conflict);
    }

    /// Releasing every owner empties the set.
    #[test]
    fn release_all_owners_empties(
        reservations in proptest::collection::vec((arb_vt(), 1u64..20), 0..20),
    ) {
        let mut rs = ReservationSet::new();
        let mut owners = Vec::new();
        for (lo, span) in &reservations {
            let hi = VirtualTime::new(lo.lamport + span, lo.site);
            rs.reserve(*lo, hi, hi);
            owners.push(hi);
        }
        for o in owners {
            rs.release(o);
        }
        prop_assert!(rs.is_empty());
    }

    /// Lamport clocks: issued VTs are strictly increasing and dominate
    /// everything witnessed.
    #[test]
    fn clock_monotonicity(witnessed in proptest::collection::vec(arb_vt(), 0..30)) {
        let mut clock = LamportClock::new(SiteId(7));
        let mut last = VirtualTime::ZERO;
        for w in witnessed {
            clock.witness(w);
            let t = clock.next();
            prop_assert!(t > last);
            prop_assert!(t.lamport > w.lamport);
            last = t;
        }
    }
}
