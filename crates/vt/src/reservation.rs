//! Write-free interval reservations kept at primary copies.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::VirtualTime;

/// A write-free reservation: the half-open region of virtual time `(lo, hi)`
/// that transaction `owner` has been confirmed to have read as write-free.
///
/// "The transaction requests each primary copy to 'reserve' a region of time
/// between `tR` and `tT` as write-free" (paper §3.1). A confirmed RL guess
/// creates this reservation "so that no conflicting write will be made in
/// the future".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reservation {
    /// VT of the value read (exclusive lower bound of the protected region).
    pub lo: VirtualTime,
    /// VT of the reserving transaction (exclusive upper bound).
    pub hi: VirtualTime,
    /// The reserving transaction.
    pub owner: VirtualTime,
}

impl fmt::Display for Reservation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}) by {}", self.lo, self.hi, self.owner)
    }
}

/// Result of a failed no-conflict (NC) check: the reservation that a
/// proposed write would invalidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReservationConflict {
    /// The reservation the write falls inside.
    pub reservation: Reservation,
    /// VT of the rejected write.
    pub write_vt: VirtualTime,
}

impl fmt::Display for ReservationConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "write at {} conflicts with reservation {}",
            self.write_vt, self.reservation
        )
    }
}

/// The set of write-free reservations held by one object's primary copy.
///
/// Supports the primary-site side of the DECAF guess checks (paper §3.1):
///
/// * a confirmed RL guess [`reserve`](ReservationSet::reserve)s its interval;
/// * the NC guess check asks whether a proposed write's VT falls inside a
///   reservation made by *another* transaction
///   ([`check_write`](ReservationSet::check_write));
/// * an aborted transaction's reservations are
///   [`release`](ReservationSet::release)d;
/// * reservations wholly below the commit horizon are garbage-collected.
///
/// # Example
///
/// ```
/// use decaf_vt::{ReservationSet, SiteId, VirtualTime};
///
/// let vt = |n| VirtualTime::new(n, SiteId(1));
/// let mut rs = ReservationSet::new();
/// rs.reserve(vt(80), vt(100), vt(100)); // txn@100 read the value written at 80
/// // A straggling write at 90 by another transaction violates the reservation:
/// assert!(rs.check_write(vt(90)).is_err());
/// // The reserving transaction's own write at 100 is fine:
/// assert!(rs.check_write(vt(100)).is_ok());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReservationSet {
    // Unsorted small vec; reservation counts stay tiny because commits GC
    // them promptly.
    reservations: Vec<Reservation>,
}

impl ReservationSet {
    /// Creates an empty reservation set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live reservations.
    pub fn len(&self) -> usize {
        self.reservations.len()
    }

    /// Whether no reservations are held.
    pub fn is_empty(&self) -> bool {
        self.reservations.is_empty()
    }

    /// Records that `owner` has been confirmed to read the region `(lo, hi)`
    /// as write-free.
    ///
    /// `hi` is normally `owner`'s own VT; view snapshots also reserve with
    /// `hi` equal to the snapshot VT.
    pub fn reserve(&mut self, lo: VirtualTime, hi: VirtualTime, owner: VirtualTime) {
        debug_assert!(lo <= hi, "reservation interval must not be inverted");
        self.reservations.push(Reservation { lo, hi, owner });
    }

    /// The no-conflict (NC) guess check for a proposed write at `write_vt`.
    ///
    /// # Errors
    ///
    /// Returns the violated [`ReservationConflict`] if some *other*
    /// transaction holds a reservation whose open interval contains
    /// `write_vt`. (Virtual times are unique, so a reservation with
    /// `hi == write_vt` necessarily belongs to the writing transaction
    /// itself and does not conflict.)
    pub fn check_write(&self, write_vt: VirtualTime) -> Result<(), ReservationConflict> {
        for r in &self.reservations {
            if write_vt > r.lo && write_vt < r.hi {
                return Err(ReservationConflict {
                    reservation: *r,
                    write_vt,
                });
            }
        }
        Ok(())
    }

    /// Releases every reservation held by `owner` (called when `owner`
    /// aborts). Returns how many were released.
    pub fn release(&mut self, owner: VirtualTime) -> usize {
        let before = self.reservations.len();
        self.reservations.retain(|r| r.owner != owner);
        before - self.reservations.len()
    }

    /// Drops reservations whose protected region lies entirely at or below
    /// the commit horizon: no future write can be assigned a VT below a
    /// committed horizon, so those reservations can no longer be violated.
    /// Returns how many were dropped.
    pub fn gc(&mut self, horizon: VirtualTime) -> usize {
        let before = self.reservations.len();
        self.reservations.retain(|r| r.hi > horizon);
        before - self.reservations.len()
    }

    /// Iterates the live reservations in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Reservation> {
        self.reservations.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SiteId;

    fn vt(n: u64) -> VirtualTime {
        VirtualTime::new(n, SiteId(1))
    }

    #[test]
    fn write_inside_foreign_reservation_conflicts() {
        let mut rs = ReservationSet::new();
        rs.reserve(vt(40), vt(100), vt(100));
        let err = rs.check_write(vt(70)).unwrap_err();
        assert_eq!(err.write_vt, vt(70));
        assert_eq!(err.reservation.owner, vt(100));
    }

    #[test]
    fn endpoints_do_not_conflict() {
        let mut rs = ReservationSet::new();
        rs.reserve(vt(40), vt(100), vt(100));
        assert!(rs.check_write(vt(40)).is_ok(), "read value itself");
        assert!(rs.check_write(vt(100)).is_ok(), "owner's own write");
        assert!(rs.check_write(vt(101)).is_ok(), "after the region");
    }

    #[test]
    fn release_removes_only_owner() {
        let mut rs = ReservationSet::new();
        rs.reserve(vt(10), vt(50), vt(50));
        rs.reserve(vt(20), vt(60), vt(60));
        assert_eq!(rs.release(vt(50)), 1);
        assert_eq!(rs.len(), 1);
        assert!(rs.check_write(vt(30)).is_err(), "other reservation remains");
        assert_eq!(rs.release(vt(50)), 0, "second release is a no-op");
    }

    #[test]
    fn gc_drops_reservations_below_horizon() {
        let mut rs = ReservationSet::new();
        rs.reserve(vt(10), vt(50), vt(50));
        rs.reserve(vt(20), vt(80), vt(80));
        assert_eq!(rs.gc(vt(60)), 1);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.iter().next().unwrap().owner, vt(80));
    }

    #[test]
    fn empty_set_accepts_all_writes() {
        let rs = ReservationSet::new();
        assert!(rs.check_write(vt(1)).is_ok());
        assert!(rs.is_empty());
    }

    #[test]
    fn conflict_display_mentions_both_vts() {
        let mut rs = ReservationSet::new();
        rs.reserve(vt(40), vt(100), vt(100));
        let err = rs.check_write(vt(70)).unwrap_err();
        let s = err.to_string();
        assert!(s.contains("70@S1") && s.contains("100@S1"));
    }
}
