//! Site identifiers and virtual timestamps.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a collaborating site.
///
/// A *site* in DECAF is one running application instance (typically one
/// user). Sites originate transactions, host model-object replicas, and may
/// be selected as the *primary site* of a replication graph.
///
/// # Example
///
/// ```
/// use decaf_vt::SiteId;
///
/// let a = SiteId(1);
/// let b = SiteId(2);
/// assert!(a < b);
/// assert_eq!(a.to_string(), "S1");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SiteId(pub u32);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl From<u32> for SiteId {
    fn from(v: u32) -> Self {
        SiteId(v)
    }
}

/// A unique virtual time (VT).
///
/// Computed as a Lamport time including a site identifier to guarantee
/// uniqueness (paper §3). The ordering is lexicographic on
/// `(lamport, site)`, which totally orders all transactions in the system.
///
/// `VirtualTime` is the identifier of a transaction: the paper speaks of
/// "the transaction at virtual time 100", and sites other than the
/// originator only ever need to remember their dependency on "the
/// transaction identified by a particular virtual time" (paper §3.3).
///
/// # Example
///
/// ```
/// use decaf_vt::{SiteId, VirtualTime};
///
/// let t1 = VirtualTime::new(100, SiteId(1));
/// let t2 = VirtualTime::new(100, SiteId(2));
/// let t3 = VirtualTime::new(101, SiteId(1));
/// assert!(t1 < t2 && t2 < t3);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct VirtualTime {
    /// Lamport counter component.
    pub lamport: u64,
    /// Site that issued this timestamp (tie-breaker, guarantees uniqueness).
    pub site: SiteId,
}

impl VirtualTime {
    /// The smallest virtual time; used as the initial "beginning of history"
    /// timestamp for freshly created objects.
    pub const ZERO: VirtualTime = VirtualTime {
        lamport: 0,
        site: SiteId(0),
    };

    /// Creates a virtual time from a Lamport counter and issuing site.
    pub fn new(lamport: u64, site: SiteId) -> Self {
        VirtualTime { lamport, site }
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.lamport, self.site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_lamport_then_site() {
        let a = VirtualTime::new(5, SiteId(9));
        let b = VirtualTime::new(6, SiteId(0));
        assert!(a < b, "lamport component dominates");

        let c = VirtualTime::new(6, SiteId(1));
        assert!(b < c, "site id breaks ties");
    }

    #[test]
    fn zero_is_minimal() {
        let any = VirtualTime::new(1, SiteId(0));
        assert!(VirtualTime::ZERO < any);
        assert_eq!(VirtualTime::ZERO, VirtualTime::default());
    }

    #[test]
    fn display_formats() {
        assert_eq!(VirtualTime::new(100, SiteId(2)).to_string(), "100@S2");
        assert_eq!(SiteId(7).to_string(), "S7");
    }

    #[test]
    fn site_id_from_u32() {
        assert_eq!(SiteId::from(3), SiteId(3));
    }
}
