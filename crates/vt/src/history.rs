//! VT-indexed value histories.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::VirtualTime;

/// One entry of a [`History`]: a value written at a virtual time, plus its
/// commit status.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistoryEntry<T> {
    /// Virtual time of the transaction that wrote this value.
    pub vt: VirtualTime,
    /// The written value.
    pub value: T,
    /// Whether the writing transaction is known to have committed.
    pub committed: bool,
}

/// A value history: "a set of pairs of values and VTs, sorted by VT. The
/// value with the latest VT is called the *current value*" (paper §3).
///
/// Every model object holds one `History` for its values and another for its
/// replication graphs. Histories support:
///
/// * optimistic insertion of (possibly uncommitted, possibly straggling)
///   writes in arbitrary arrival order;
/// * purging an aborted transaction's entry ([`purge`](History::purge));
/// * marking an entry committed ([`mark_committed`](History::mark_committed));
/// * the *read-latest* (RL) check: is an interval write-free?
///   ([`has_write_in`](History::has_write_in));
/// * garbage collection once commits make old values unnecessary "for view
///   snapshots or for rollback after abort" ([`gc`](History::gc)).
///
/// # Example
///
/// ```
/// use decaf_vt::{History, SiteId, VirtualTime};
///
/// let vt = |n| VirtualTime::new(n, SiteId(1));
/// let mut h = History::new();
/// h.insert(vt(60), 2);
/// h.insert(vt(40), 6); // straggler: arrives late, sorts into place
/// assert_eq!(h.current().unwrap().value, 2);
/// assert_eq!(h.value_at(vt(50)).unwrap().value, 6);
/// assert!(h.has_write_in(vt(40), vt(100))); // the write at 60
/// assert!(!h.has_write_in(vt(60), vt(100)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct History<T> {
    // Sorted by `vt`, ascending. Histories are short in practice (GC keeps
    // them near length 1), so a sorted Vec beats a tree map.
    entries: Vec<HistoryEntry<T>>,
}

impl<T> Default for History<T> {
    fn default() -> Self {
        History {
            entries: Vec::new(),
        }
    }
}

impl<T> History<T> {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries currently retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the history holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a value written at `vt`.
    ///
    /// Entries may arrive out of VT order (stragglers); the history keeps
    /// them sorted. Inserting at an already-present VT replaces that entry
    /// (idempotent redelivery) and returns the previous value.
    pub fn insert(&mut self, vt: VirtualTime, value: T) -> Option<T> {
        match self.position(vt) {
            Ok(i) => {
                let old = std::mem::replace(&mut self.entries[i].value, value);
                Some(old)
            }
            Err(i) => {
                self.entries.insert(
                    i,
                    HistoryEntry {
                        vt,
                        value,
                        committed: false,
                    },
                );
                None
            }
        }
    }

    /// Inserts a value written at `vt` that is already known committed.
    pub fn insert_committed(&mut self, vt: VirtualTime, value: T) {
        self.insert(vt, value);
        self.mark_committed(vt);
    }

    /// The entry with the latest VT (the paper's *current value*), if any.
    pub fn current(&self) -> Option<&HistoryEntry<T>> {
        self.entries.last()
    }

    /// The latest entry at or before `vt`, if any: the value a transaction
    /// executing at virtual time `vt` reads.
    pub fn value_at(&self, vt: VirtualTime) -> Option<&HistoryEntry<T>> {
        match self.position(vt) {
            Ok(i) => Some(&self.entries[i]),
            Err(0) => None,
            Err(i) => Some(&self.entries[i - 1]),
        }
    }

    /// The latest *committed* entry, if any.
    pub fn latest_committed(&self) -> Option<&HistoryEntry<T>> {
        self.entries.iter().rev().find(|e| e.committed)
    }

    /// The latest committed entry at or before `vt`, if any.
    pub fn committed_at(&self, vt: VirtualTime) -> Option<&HistoryEntry<T>> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.committed && e.vt <= vt)
    }

    /// The latest committed entry *strictly* before `vt`, if any — the
    /// lower bound of a pessimistic snapshot's monotonicity guess (the
    /// update at `vt` itself is excluded).
    pub fn committed_before(&self, vt: VirtualTime) -> Option<&HistoryEntry<T>> {
        self.entries.iter().rev().find(|e| e.committed && e.vt < vt)
    }

    /// The entry written exactly at `vt`, if present.
    pub fn entry_at(&self, vt: VirtualTime) -> Option<&HistoryEntry<T>> {
        self.position(vt).ok().map(|i| &self.entries[i])
    }

    /// Marks the entry written at `vt` committed. Returns `true` if such an
    /// entry exists.
    pub fn mark_committed(&mut self, vt: VirtualTime) -> bool {
        match self.position(vt) {
            Ok(i) => {
                self.entries[i].committed = true;
                true
            }
            Err(_) => false,
        }
    }

    /// Removes the entry written at `vt` (rollback after abort), returning
    /// its value if present.
    pub fn purge(&mut self, vt: VirtualTime) -> Option<T> {
        match self.position(vt) {
            Ok(i) => Some(self.entries.remove(i).value),
            Err(_) => None,
        }
    }

    /// The read-latest (RL) test: does any write fall in the *open* interval
    /// `(lo, hi)`?
    ///
    /// The endpoints are excluded: the write at `lo` is the value the guess
    /// was based on, and a write at `hi` is the guessing transaction's own.
    pub fn has_write_in(&self, lo: VirtualTime, hi: VirtualTime) -> bool {
        self.entries.iter().any(|e| e.vt > lo && e.vt < hi)
    }

    /// Like [`has_write_in`](History::has_write_in), restricted to
    /// *committed* writes (used by pessimistic-view monotonicity guesses,
    /// paper §4.2).
    pub fn has_committed_write_in(&self, lo: VirtualTime, hi: VirtualTime) -> bool {
        self.entries
            .iter()
            .any(|e| e.committed && e.vt > lo && e.vt < hi)
    }

    /// Garbage-collects entries made obsolete by commitment.
    ///
    /// "Committal makes old values no longer needed for view snapshots or
    /// for rollback after abort, thus they are discarded" (paper §3).
    ///
    /// Keeps every entry at or above `low_water` (VTs still needed by
    /// pending snapshots or transactions), plus the latest committed entry
    /// at or below it (the value any such reader would observe). Returns the
    /// number of entries discarded.
    pub fn gc(&mut self, low_water: VirtualTime) -> usize {
        // Find the latest committed entry with vt <= low_water; everything
        // strictly before it is unreachable.
        let keep_from = self
            .entries
            .iter()
            .rposition(|e| e.committed && e.vt <= low_water);
        match keep_from {
            Some(i) if i > 0 => {
                self.entries.drain(..i);
                i
            }
            _ => 0,
        }
    }

    /// Iterates entries in ascending VT order.
    pub fn iter(&self) -> std::slice::Iter<'_, HistoryEntry<T>> {
        self.entries.iter()
    }

    /// Iterates entries mutably in ascending VT order.
    ///
    /// Callers must not change entry `vt`s (that would break the sort
    /// invariant); this exists so composite objects can re-fold their
    /// materialized values in place when structural stragglers arrive.
    pub fn iter_mut_values(&mut self) -> std::slice::IterMut<'_, HistoryEntry<T>> {
        self.entries.iter_mut()
    }

    fn position(&self, vt: VirtualTime) -> Result<usize, usize> {
        self.entries.binary_search_by(|e| e.vt.cmp(&vt))
    }
}

impl<T: fmt::Display> fmt::Display for History<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(
                f,
                "{}={}{}",
                e.vt,
                e.value,
                if e.committed { "✓" } else { "?" }
            )?;
        }
        write!(f, "]")
    }
}

impl<T> FromIterator<(VirtualTime, T)> for History<T> {
    fn from_iter<I: IntoIterator<Item = (VirtualTime, T)>>(iter: I) -> Self {
        let mut h = History::new();
        for (vt, v) in iter {
            h.insert(vt, v);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SiteId;

    fn vt(n: u64) -> VirtualTime {
        VirtualTime::new(n, SiteId(1))
    }

    #[test]
    fn insert_keeps_sorted_despite_stragglers() {
        let mut h = History::new();
        h.insert(vt(60), "x");
        h.insert(vt(40), "w");
        h.insert(vt(80), "y");
        let vts: Vec<u64> = h.iter().map(|e| e.vt.lamport).collect();
        assert_eq!(vts, vec![40, 60, 80]);
        assert_eq!(h.current().unwrap().value, "y");
    }

    #[test]
    fn insert_duplicate_replaces() {
        let mut h = History::new();
        assert_eq!(h.insert(vt(10), 1), None);
        assert_eq!(h.insert(vt(10), 2), Some(1));
        assert_eq!(h.len(), 1);
        assert_eq!(h.current().unwrap().value, 2);
    }

    #[test]
    fn value_at_picks_latest_at_or_before() {
        let mut h = History::new();
        h.insert(vt(40), 6);
        h.insert(vt(60), 2);
        assert_eq!(h.value_at(vt(39)), None);
        assert_eq!(h.value_at(vt(40)).unwrap().value, 6);
        assert_eq!(h.value_at(vt(59)).unwrap().value, 6);
        assert_eq!(h.value_at(vt(60)).unwrap().value, 2);
        assert_eq!(h.value_at(vt(1000)).unwrap().value, 2);
    }

    #[test]
    fn rl_check_is_open_interval() {
        let mut h = History::new();
        h.insert(vt(60), ());
        assert!(!h.has_write_in(vt(60), vt(100)), "lo endpoint excluded");
        assert!(!h.has_write_in(vt(10), vt(60)), "hi endpoint excluded");
        assert!(h.has_write_in(vt(59), vt(61)));
    }

    #[test]
    fn committed_write_check_ignores_uncommitted() {
        let mut h = History::new();
        h.insert(vt(50), ());
        assert!(!h.has_committed_write_in(vt(0), vt(100)));
        h.mark_committed(vt(50));
        assert!(h.has_committed_write_in(vt(0), vt(100)));
    }

    #[test]
    fn purge_removes_aborted_write() {
        let mut h = History::new();
        h.insert(vt(40), 6);
        h.insert(vt(100), 9);
        assert_eq!(h.purge(vt(100)), Some(9));
        assert_eq!(h.current().unwrap().value, 6);
        assert_eq!(h.purge(vt(100)), None, "double purge is a no-op");
    }

    #[test]
    fn latest_committed_skips_uncommitted_suffix() {
        let mut h = History::new();
        h.insert_committed(vt(40), 6);
        h.insert(vt(100), 9);
        assert_eq!(h.latest_committed().unwrap().vt, vt(40));
        assert_eq!(h.current().unwrap().vt, vt(100));
        h.mark_committed(vt(100));
        assert_eq!(h.latest_committed().unwrap().vt, vt(100));
    }

    #[test]
    fn committed_at_respects_bound() {
        let mut h = History::new();
        h.insert_committed(vt(40), 6);
        h.insert_committed(vt(80), 7);
        assert_eq!(h.committed_at(vt(79)).unwrap().vt, vt(40));
        assert_eq!(h.committed_at(vt(80)).unwrap().vt, vt(80));
    }

    #[test]
    fn gc_keeps_latest_committed_at_or_below_horizon() {
        let mut h = History::new();
        h.insert_committed(vt(10), 1);
        h.insert_committed(vt(20), 2);
        h.insert(vt(30), 3);
        let dropped = h.gc(vt(25));
        assert_eq!(dropped, 1);
        let vts: Vec<u64> = h.iter().map(|e| e.vt.lamport).collect();
        assert_eq!(vts, vec![20, 30]);
    }

    #[test]
    fn gc_with_no_committed_entries_is_noop() {
        let mut h = History::new();
        h.insert(vt(10), 1);
        h.insert(vt(20), 2);
        assert_eq!(h.gc(vt(100)), 0);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn gc_never_drops_entries_above_horizon() {
        let mut h = History::new();
        h.insert_committed(vt(10), 1);
        h.insert_committed(vt(20), 2);
        h.insert_committed(vt(30), 3);
        // Horizon at 15: only the entry at 10 is the latest committed <= 15,
        // so nothing before it exists to drop.
        assert_eq!(h.gc(vt(15)), 0);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn from_iterator_collects() {
        let h: History<i32> = vec![(vt(2), 20), (vt(1), 10)].into_iter().collect();
        assert_eq!(h.len(), 2);
        assert_eq!(h.current().unwrap().value, 20);
    }

    #[test]
    fn display_is_nonempty() {
        let mut h = History::new();
        assert_eq!(h.to_string(), "[]");
        h.insert_committed(vt(10), 5);
        assert!(h.to_string().contains("10@S1=5"));
    }
}
