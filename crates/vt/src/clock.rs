//! Per-site Lamport clock.

use serde::{Deserialize, Serialize};

use crate::{SiteId, VirtualTime};

/// A per-site Lamport clock that issues unique [`VirtualTime`]s.
///
/// Each transaction "is assigned a unique virtual time (VT) prior to
/// execution. The VT is computed as a Lamport time, including a site
/// identifier to guarantee uniqueness" (paper §3).
///
/// The clock advances on two events, per Lamport's rules:
///
/// * [`next`](LamportClock::next) — a local event (starting a transaction or
///   a view snapshot) increments the counter and returns a fresh timestamp.
/// * [`witness`](LamportClock::witness) — receiving any message stamped with
///   a remote VT advances the local counter past it, so that subsequently
///   issued local VTs are greater than every VT causally observed.
///
/// # Example
///
/// ```
/// use decaf_vt::{LamportClock, SiteId, VirtualTime};
///
/// let mut clock = LamportClock::new(SiteId(1));
/// let t1 = clock.next();
/// clock.witness(VirtualTime::new(50, SiteId(2)));
/// let t2 = clock.next();
/// assert!(t2.lamport > 50, "local clock advanced past the witnessed VT");
/// assert!(t1 < t2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LamportClock {
    site: SiteId,
    counter: u64,
}

impl LamportClock {
    /// Creates a clock for `site` starting at counter zero.
    pub fn new(site: SiteId) -> Self {
        LamportClock { site, counter: 0 }
    }

    /// The site this clock issues timestamps for.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// The last counter value issued or witnessed.
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// The clock's current reading as a virtual time, without advancing it.
    ///
    /// Used to stamp outgoing messages so receivers can witness the
    /// sender's progress even when the payload carries no transaction VT.
    pub fn now(&self) -> VirtualTime {
        VirtualTime::new(self.counter, self.site)
    }

    /// Issues a fresh virtual time for a local event.
    ///
    /// The returned timestamp is strictly greater than every timestamp
    /// previously issued by or witnessed on this clock.
    #[allow(clippy::should_implement_trait)] // a clock is not an iterator
    pub fn next(&mut self) -> VirtualTime {
        self.counter += 1;
        VirtualTime::new(self.counter, self.site)
    }

    /// Observes a remote virtual time, advancing this clock past it.
    ///
    /// Call on receipt of every message carrying a VT so that future local
    /// timestamps dominate all causally prior remote ones.
    pub fn witness(&mut self, remote: VirtualTime) {
        if remote.lamport > self.counter {
            self.counter = remote.lamport;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_is_monotonic() {
        let mut c = LamportClock::new(SiteId(3));
        let a = c.next();
        let b = c.next();
        assert!(a < b);
        assert_eq!(a.site, SiteId(3));
    }

    #[test]
    fn witness_advances_clock() {
        let mut c = LamportClock::new(SiteId(1));
        c.witness(VirtualTime::new(100, SiteId(2)));
        assert_eq!(c.counter(), 100);
        let t = c.next();
        assert_eq!(t.lamport, 101);
    }

    #[test]
    fn witness_of_older_time_is_noop() {
        let mut c = LamportClock::new(SiteId(1));
        c.witness(VirtualTime::new(10, SiteId(2)));
        c.witness(VirtualTime::new(5, SiteId(2)));
        assert_eq!(c.counter(), 10);
    }

    #[test]
    fn two_sites_never_collide() {
        let mut c1 = LamportClock::new(SiteId(1));
        let mut c2 = LamportClock::new(SiteId(2));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            assert!(seen.insert(c1.next()));
            assert!(seen.insert(c2.next()));
        }
    }
}
