//! Virtual time primitives for the DECAF collaborative replicated-object
//! framework.
//!
//! DECAF (Strom et al., *Concurrency Control and View Notification Algorithms
//! for Collaborative Replicated Objects*, ICDCS '97 / IEEE TC 47(4) 1998)
//! totally orders every transaction in the system by a *virtual time* (VT): a
//! Lamport timestamp extended with a site identifier to guarantee uniqueness
//! (paper §3). Everything else in the system — value histories, replication
//! graph histories, write-free reservations, view snapshots — is indexed by
//! VT.
//!
//! This crate provides those primitives:
//!
//! * [`SiteId`] — identifies a participating site (one user's application).
//! * [`VirtualTime`] — a unique, totally ordered transaction timestamp.
//! * [`LamportClock`] — per-site clock that issues fresh [`VirtualTime`]s and
//!   witnesses remote ones.
//! * [`History`] — a VT-indexed value history supporting current-value
//!   lookup, lookup *as of* a VT, purging of aborted entries, and
//!   garbage-collection below a commit horizon.
//! * [`ReservationSet`] — the write-free interval reservations kept at
//!   primary copies to validate *read-latest* (RL) and *no-conflict* (NC)
//!   guesses.
//!
//! # Example
//!
//! ```
//! use decaf_vt::{LamportClock, SiteId};
//!
//! let mut clock = LamportClock::new(SiteId(2));
//! let t1 = clock.next();
//! let t2 = clock.next();
//! assert!(t1 < t2);
//! assert_eq!(t1.site, SiteId(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod history;
mod reservation;
mod time;

pub use clock::LamportClock;
pub use history::{History, HistoryEntry};
pub use reservation::{Reservation, ReservationConflict, ReservationSet};
pub use time::{SiteId, VirtualTime};
