//! Prometheus text exposition, hand-rolled and dependency-free.
//!
//! `decaf-site --metrics-listen` serves a live `/metrics` endpoint; this
//! module renders the [text exposition format] (version 0.0.4) that any
//! Prometheus-compatible scraper parses: `# HELP`/`# TYPE` headers,
//! counter and gauge samples, and histograms as cumulative `le` buckets
//! derived from the crate's log2 [`Histogram`]s.
//!
//! The output is deterministic — metrics render in call order, buckets in
//! ascending bound order — so the format itself is pinned by golden
//! snapshot tests.
//!
//! [text exposition format]:
//!     https://prometheus.io/docs/instrumenting/exposition_formats/

use std::fmt::Write as _;

use crate::hist::{Histogram, BUCKETS};

/// The content type a `/metrics` HTTP response should declare.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// An in-progress text exposition. Feed metrics in a fixed order; a
/// `# HELP`/`# TYPE` header is emitted the first time each metric name
/// appears, so the same name may be sampled repeatedly with different
/// labels.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
    seen: Vec<String>,
}

impl PromText {
    /// An empty exposition.
    pub fn new() -> Self {
        PromText::default()
    }

    /// Appends a counter sample (monotonically increasing total).
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.header(name, help, "counter");
        self.sample(name, "", labels, &value.to_string());
    }

    /// Appends a gauge sample (instantaneous value).
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.header(name, help, "gauge");
        self.sample(name, "", labels, &value.to_string());
    }

    /// Appends a histogram: the log2 buckets become cumulative `le`
    /// buckets (upper bound per bucket, then `+Inf`), plus `_sum` and
    /// `_count` samples. Empty trailing buckets beyond the observed
    /// maximum are collapsed into `+Inf` to keep the exposition compact;
    /// cumulative counts stay exact.
    pub fn histogram(&mut self, name: &str, help: &str, labels: &[(&str, &str)], h: &Histogram) {
        self.header(name, help, "histogram");
        let top = Histogram::bucket_index(h.max());
        let mut cumulative = 0u64;
        for i in 0..=top {
            cumulative += h.bucket_count(i);
            let le = Histogram::bucket_bounds(i).1.to_string();
            let mut labels: Vec<(&str, &str)> = labels.to_vec();
            labels.push(("le", &le));
            self.sample(name, "_bucket", &labels, &cumulative.to_string());
        }
        // Buckets above `top` are empty by construction, except when the
        // max itself lives in the last bucket (then `top` was the last).
        debug_assert!((top + 1..BUCKETS).all(|i| h.bucket_count(i) == 0));
        let mut inf_labels: Vec<(&str, &str)> = labels.to_vec();
        inf_labels.push(("le", "+Inf"));
        self.sample(name, "_bucket", &inf_labels, &h.count().to_string());
        self.sample(name, "_sum", labels, &h.sum().to_string());
        self.sample(name, "_count", labels, &h.count().to_string());
    }

    /// The rendered exposition.
    pub fn finish(self) -> String {
        self.out
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        if self.seen.iter().any(|s| s == name) {
            return;
        }
        self.seen.push(name.to_string());
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    fn sample(&mut self, name: &str, suffix: &str, labels: &[(&str, &str)], value: &str) {
        let _ = write!(self.out, "{name}{suffix}");
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"");
                for c in v.chars() {
                    match c {
                        '\\' => self.out.push_str("\\\\"),
                        '"' => self.out.push_str("\\\""),
                        '\n' => self.out.push_str("\\n"),
                        c => self.out.push(c),
                    }
                }
                self.out.push('"');
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {value}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_counter_and_gauge_exposition() {
        let mut p = PromText::new();
        p.counter(
            "decaf_commits_total",
            "Transactions committed.",
            &[("site", "1")],
            42,
        );
        p.counter(
            "decaf_commits_total",
            "Transactions committed.",
            &[("site", "2")],
            7,
        );
        p.gauge(
            "decaf_queue_depth_hwm",
            "Outbound queue high-water mark.",
            &[],
            9,
        );
        assert_eq!(
            p.finish(),
            "# HELP decaf_commits_total Transactions committed.\n\
             # TYPE decaf_commits_total counter\n\
             decaf_commits_total{site=\"1\"} 42\n\
             decaf_commits_total{site=\"2\"} 7\n\
             # HELP decaf_queue_depth_hwm Outbound queue high-water mark.\n\
             # TYPE decaf_queue_depth_hwm gauge\n\
             decaf_queue_depth_hwm 9\n"
        );
    }

    #[test]
    fn golden_histogram_exposition() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 5] {
            h.record(v);
        }
        let mut p = PromText::new();
        p.histogram("decaf_commit_latency_ns", "Commit latency.", &[], &h);
        assert_eq!(
            p.finish(),
            "# HELP decaf_commit_latency_ns Commit latency.\n\
             # TYPE decaf_commit_latency_ns histogram\n\
             decaf_commit_latency_ns_bucket{le=\"0\"} 1\n\
             decaf_commit_latency_ns_bucket{le=\"1\"} 2\n\
             decaf_commit_latency_ns_bucket{le=\"3\"} 4\n\
             decaf_commit_latency_ns_bucket{le=\"7\"} 5\n\
             decaf_commit_latency_ns_bucket{le=\"+Inf\"} 5\n\
             decaf_commit_latency_ns_sum 11\n\
             decaf_commit_latency_ns_count 5\n"
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_count() {
        let mut h = Histogram::new();
        for v in [10u64, 1_000, 1_000_000, u64::MAX] {
            h.record(v);
        }
        let mut p = PromText::new();
        p.histogram("m", "h.", &[], &h);
        let text = p.finish();
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("m_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{text}");
        assert_eq!(*counts.last().unwrap(), 4);
        assert!(text.contains("m_bucket{le=\"+Inf\"} 4"));
        // u64::MAX lands in the final bucket, whose upper bound is MAX.
        assert!(text.contains(&format!("m_bucket{{le=\"{}\"}} 4", u64::MAX)));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut p = PromText::new();
        p.counter("m", "h.", &[("path", "a\"b\\c\nd")], 1);
        assert!(p.finish().contains("m{path=\"a\\\"b\\\\c\\nd\"} 1"));
    }

    #[test]
    fn empty_histogram_still_renders_inf_bucket() {
        let mut p = PromText::new();
        p.histogram("m", "h.", &[], &Histogram::new());
        let text = p.finish();
        assert!(text.contains("m_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("m_count 0"));
    }
}
