//! Log2-bucketed histograms with percentile summaries.
//!
//! Latency distributions are heavy-tailed, so the paper-style metrics we
//! care about (§5.1's commit latency in units of the one-way delay `t`)
//! need percentiles, not means. A fixed array of 65 power-of-two buckets
//! records any `u64` in O(1) with zero allocation: bucket 0 holds the
//! value 0 and bucket *i* (1 ≤ *i* ≤ 64) holds values whose bit length is
//! *i*, i.e. the interval [2^(i−1), 2^i − 1]. The buckets tile the whole
//! `u64` range — every value lands in exactly one bucket, with no gaps —
//! which is property-tested in `tests/proptests.rs`.

use std::fmt;

/// Number of buckets: one for zero plus one per possible bit length.
pub const BUCKETS: usize = 65;

/// A fixed-size log2 histogram over `u64` samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The bucket index `v` falls into: 0 for 0, else `v`'s bit length.
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// The inclusive `[lo, hi]` range of values bucket `i` covers.
    ///
    /// # Panics
    ///
    /// Panics if `i >= BUCKETS`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < BUCKETS, "bucket index {i} out of range");
        match i {
            0 => (0, 0),
            64 => (1u64 << 63, u64::MAX),
            _ => (1u64 << (i - 1), (1u64 << i) - 1),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Number of samples in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= BUCKETS`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Mean of recorded samples, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Folds `other`'s samples into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` ∈ [0, 1], as the upper bound of the
    /// bucket containing the ⌈q·count⌉-th smallest sample (capped at the
    /// observed maximum, so a single-sample histogram reports the sample
    /// itself). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// A printable five-number digest of the distribution.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max,
        }
    }
}

/// A digest of one [`Histogram`]: sample count plus p50/p95/p99/max.
///
/// Values are dimension-free `u64`s; the [`fmt::Display`] impl prints them
/// raw, and callers that record nanoseconds typically divide for display
/// (see `decaf-site`'s periodic summary line).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistSummary {
    /// Number of samples.
    pub count: u64,
    /// Median (upper bucket bound).
    pub p50: u64,
    /// 95th percentile (upper bucket bound).
    pub p95: u64,
    /// 99th percentile (upper bucket bound).
    pub p99: u64,
    /// Exact observed maximum.
    pub max: u64,
}

impl fmt::Display for HistSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} p50={} p95={} p99={} max={}",
            self.count, self.p50, self.p95, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_tile_the_u64_range() {
        // Contiguity at every boundary: hi(i) + 1 == lo(i + 1).
        for i in 0..BUCKETS - 1 {
            let (_, hi) = Histogram::bucket_bounds(i);
            let (lo_next, _) = Histogram::bucket_bounds(i + 1);
            assert_eq!(hi + 1, lo_next, "gap between buckets {i} and {}", i + 1);
        }
        assert_eq!(Histogram::bucket_bounds(0).0, 0);
        assert_eq!(Histogram::bucket_bounds(BUCKETS - 1).1, u64::MAX);
        // Index agrees with bounds at the edges of every bucket.
        for i in 0..BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_index(lo), i);
            assert_eq!(Histogram::bucket_index(hi), i);
        }
    }

    #[test]
    fn quantiles_of_a_known_distribution() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.max(), 100);
        assert_eq!(h.mean(), 50);
        // The 50th sample is 50, in bucket [32, 63].
        assert_eq!(h.quantile(0.50), 63);
        // The 95th and 99th samples are 95 and 99, in bucket [64, 127],
        // whose upper bound is capped at the observed max of 100.
        assert_eq!(h.quantile(0.95), 100);
        assert_eq!(h.quantile(0.99), 100);
        assert_eq!(h.quantile(1.0), 100);
        // q=0 still selects the first sample's bucket.
        assert_eq!(h.quantile(0.0), 1);
    }

    #[test]
    fn single_sample_reports_itself() {
        let mut h = Histogram::new();
        h.record(777);
        assert_eq!(h.quantile(0.5), 777);
        assert_eq!(h.summary().p99, 777);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.summary(), HistSummary::default());
    }

    #[test]
    fn merge_is_samplewise_union() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [0u64, 1, 5, 9, 1_000] {
            a.record(v);
            both.record(v);
        }
        for v in [2u64, 70, u64::MAX] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.max(), both.max());
        for q in [0.0, 0.25, 0.5, 0.75, 0.95, 1.0] {
            assert_eq!(a.quantile(q), both.quantile(q));
        }
    }

    #[test]
    fn saturating_sum_does_not_wrap() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.mean(), u64::MAX / 2); // sum saturated at MAX
    }
}
