//! The per-site trace sink: a bounded ring of events plus live latency
//! histograms, behind a clone-able handle that is free when disabled.
//!
//! # Cost model
//!
//! A disabled sink is `TraceSink(None)`: every `emit` is one branch on an
//! `Option`, with no allocation and no lock — cheap enough to leave the
//! emit points compiled into release builds unconditionally.
//!
//! An enabled sink shares one pre-allocated ring. Emission uses
//! [`Mutex::try_lock`]: an emitter never blocks behind a contended sink
//! (transports emit from their own threads), it just counts the event as
//! dropped. Together with drop-oldest overwrite when the ring is full,
//! this bounds both memory and latency impact; the `dropped` counter keeps
//! the loss observable, and flows into `SiteStats`/`TransportStats` via
//! [`TraceSink::dropped`].

use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{TraceEvent, TraceKind};
use crate::hist::{HistSummary, Histogram};

/// Cap on in-flight latency pairings (open transactions / unconfirmed
/// optimistic views) tracked per sink. Beyond this, new pairings are not
/// tracked; their eventual Commit/ViewCommitted simply records no latency
/// sample. Bounds memory under pathological workloads.
const MAX_OPEN: usize = 4096;

/// A handle to a per-site trace sink; clone freely (all clones share one
/// ring). The disabled sink is the default and costs one branch per emit.
#[derive(Debug, Clone, Default)]
pub struct TraceSink(Option<Arc<Shared>>);

#[derive(Debug)]
struct Shared {
    site: u32,
    epoch: Instant,
    /// When `true`, [`TraceSink::emit`] stamps events from `manual_now_ns`
    /// (a caller-driven clock) instead of `epoch` wall time, making
    /// emission order a pure function of the run — the deterministic-
    /// simulation mode the model checker needs for byte-identical dumps.
    manual: bool,
    manual_now_ns: AtomicU64,
    dropped: AtomicU64,
    queue_hwm: AtomicU64,
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    ring: Ring,
    /// `(vt, begin ts_ns)` of transactions begun but not yet decided.
    open_txns: Vec<((u64, u32), u64)>,
    /// `(vt, delivery ts_ns)` of optimistic views not yet confirmed.
    open_views: Vec<((u64, u32), u64)>,
    commit_lat: Histogram,
    view_lat: Histogram,
    queue_depth: Histogram,
}

/// Fixed-capacity circular buffer of events with drop-oldest overwrite.
#[derive(Debug)]
struct Ring {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Index of the oldest retained event when the ring is full.
    head: usize,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
        }
    }

    /// Appends `ev`; returns `true` if an old event was evicted to make room.
    fn push(&mut self, ev: TraceEvent) -> bool {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
            false
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            true
        }
    }

    /// The retained events, oldest first.
    fn in_order(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }
}

/// Combined digest of a sink's histograms plus its drop counter, printable
/// as the single periodic summary line `decaf-site` emits.
#[derive(Debug, Clone, Copy, Default)]
pub struct SinkSummary {
    /// The site the sink belongs to.
    pub site: u32,
    /// Commit latency (ns): TxnBegin → Commit for local transactions.
    pub commit_lat_ns: HistSummary,
    /// View staleness (ns): ViewOptimistic → ViewCommitted per update.
    pub view_lat_ns: HistSummary,
    /// Outbound queue depth samples (entries).
    pub queue_depth: HistSummary,
    /// High-water mark of the outbound queue depth.
    pub queue_depth_hwm: u64,
    /// Events lost to ring overflow or sink contention.
    pub dropped: u64,
}

impl std::fmt::Display for SinkSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let us = |ns: u64| ns / 1_000;
        write!(
            f,
            "site={} commit-lat-us[n={} p50={} p95={} p99={}] \
             view-lat-us[n={} p50={} p95={} p99={}] \
             qdepth[hwm={}] dropped={}",
            self.site,
            self.commit_lat_ns.count,
            us(self.commit_lat_ns.p50),
            us(self.commit_lat_ns.p95),
            us(self.commit_lat_ns.p99),
            self.view_lat_ns.count,
            us(self.view_lat_ns.p50),
            us(self.view_lat_ns.p95),
            us(self.view_lat_ns.p99),
            self.queue_depth_hwm,
            self.dropped,
        )
    }
}

impl TraceSink {
    /// The disabled sink: every emit is a single `None` branch.
    pub const fn disabled() -> Self {
        TraceSink(None)
    }

    /// An enabled sink for `site` retaining at most `capacity` events
    /// (drop-oldest beyond that). Capacity is clamped to at least 16.
    pub fn enabled(site: u32, capacity: usize) -> Self {
        Self::build(site, capacity, false)
    }

    /// An enabled sink whose [`emit`](TraceSink::emit) stamps events from a
    /// caller-driven clock ([`set_now_ns`](TraceSink::set_now_ns)) instead
    /// of wall time.
    ///
    /// Components like the engine call `emit` internally with no way to
    /// thread a timestamp through; under a deterministic simulation those
    /// wall-clock stamps would differ between two identical runs. A manual
    /// sink lets the simulation driver advance the clock to the current
    /// simulated time before dispatching each event, so full-engine traces
    /// become byte-identical across same-seed runs (the model checker's
    /// determinism contract).
    pub fn enabled_manual(site: u32, capacity: usize) -> Self {
        Self::build(site, capacity, true)
    }

    fn build(site: u32, capacity: usize, manual: bool) -> Self {
        TraceSink(Some(Arc::new(Shared {
            site,
            epoch: Instant::now(),
            manual,
            manual_now_ns: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            queue_hwm: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                ring: Ring::new(capacity.max(16)),
                open_txns: Vec::new(),
                open_views: Vec::new(),
                commit_lat: Histogram::new(),
                view_lat: Histogram::new(),
                queue_depth: Histogram::new(),
            }),
        })))
    }

    /// Advances the manual clock of a sink created with
    /// [`enabled_manual`](TraceSink::enabled_manual); subsequent `emit`
    /// calls are stamped with `ts_ns`. No-op on wall-clock or disabled
    /// sinks.
    pub fn set_now_ns(&self, ts_ns: u64) {
        if let Some(shared) = &self.0 {
            if shared.manual {
                shared.manual_now_ns.store(ts_ns, Ordering::Relaxed);
            }
        }
    }

    /// Whether this sink records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The site this sink was enabled for (`None` when disabled).
    pub fn site(&self) -> Option<u32> {
        self.0.as_ref().map(|s| s.site)
    }

    /// Emits an event stamped with the sink's monotonic clock (or the
    /// manual clock, for sinks created with
    /// [`enabled_manual`](TraceSink::enabled_manual)).
    #[inline]
    pub fn emit(&self, kind: TraceKind, vt: Option<(u64, u32)>, peer: Option<u32>, n: Option<u64>) {
        self.emit_span(kind, vt, peer, n, None);
    }

    /// [`emit`](TraceSink::emit) carrying a causal span context
    /// `(origin, seq, hop)` — the trace context a wire envelope carries,
    /// recorded on both ends so the stitcher can pair sends with receives.
    #[inline]
    pub fn emit_span(
        &self,
        kind: TraceKind,
        vt: Option<(u64, u32)>,
        peer: Option<u32>,
        n: Option<u64>,
        span: Option<(u32, u64, u32)>,
    ) {
        if let Some(shared) = &self.0 {
            let ts_ns = if shared.manual {
                shared.manual_now_ns.load(Ordering::Relaxed)
            } else {
                shared.epoch.elapsed().as_nanos() as u64
            };
            shared.record(ts_ns, kind, vt, peer, n, span);
        }
    }

    /// Emits an event with a caller-supplied timestamp. Deterministic
    /// substrates (the simulator) use this so golden tests see stable
    /// timestamps; everything else should prefer [`emit`](TraceSink::emit).
    #[inline]
    pub fn emit_at(
        &self,
        ts_ns: u64,
        kind: TraceKind,
        vt: Option<(u64, u32)>,
        peer: Option<u32>,
        n: Option<u64>,
    ) {
        self.emit_at_span(ts_ns, kind, vt, peer, n, None);
    }

    /// [`emit_at`](TraceSink::emit_at) carrying a causal span context.
    #[inline]
    pub fn emit_at_span(
        &self,
        ts_ns: u64,
        kind: TraceKind,
        vt: Option<(u64, u32)>,
        peer: Option<u32>,
        n: Option<u64>,
        span: Option<(u32, u64, u32)>,
    ) {
        if let Some(shared) = &self.0 {
            shared.record(ts_ns, kind, vt, peer, n, span);
        }
    }

    /// Records an outbound queue depth sample and updates its high-water
    /// mark. Separate from [`emit`](TraceSink::emit) because depth samples
    /// are a distribution, not discrete events worth a ring slot each.
    #[inline]
    pub fn record_queue_depth(&self, depth: u64) {
        if let Some(shared) = &self.0 {
            shared.queue_hwm.fetch_max(depth, Ordering::Relaxed);
            match shared.inner.try_lock() {
                Ok(mut inner) => inner.queue_depth.record(depth),
                Err(_) => {
                    shared.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Events lost so far (ring overwrite + lock contention).
    pub fn dropped(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |s| s.dropped.load(Ordering::Relaxed))
    }

    /// High-water mark of recorded queue depths.
    pub fn queue_depth_hwm(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |s| s.queue_hwm.load(Ordering::Relaxed))
    }

    /// The retained events, oldest first, leaving them in place.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        match &self.0 {
            None => Vec::new(),
            Some(shared) => shared.lock().ring.in_order(),
        }
    }

    /// Removes and returns the retained events, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        match &self.0 {
            None => Vec::new(),
            Some(shared) => {
                let mut inner = shared.lock();
                let out = inner.ring.in_order();
                inner.ring.clear();
                out
            }
        }
    }

    /// Writes the retained events as JSONL, one event per line, leaving
    /// them in place.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        for ev in self.snapshot() {
            writeln!(w, "{}", ev.to_jsonl())?;
        }
        Ok(())
    }

    /// Clones of the live latency histograms, in the order
    /// `(commit_lat_ns, view_lat_ns, queue_depth)`. The raw buckets —
    /// rather than the quantile digest [`summary`](TraceSink::summary)
    /// offers — are what a Prometheus exposition needs to render
    /// cumulative `le` buckets. Empty histograms when disabled.
    pub fn histograms(&self) -> (Histogram, Histogram, Histogram) {
        match &self.0 {
            None => (Histogram::new(), Histogram::new(), Histogram::new()),
            Some(shared) => {
                let inner = shared.lock();
                (
                    inner.commit_lat.clone(),
                    inner.view_lat.clone(),
                    inner.queue_depth.clone(),
                )
            }
        }
    }

    /// Digest of the live histograms and drop counter.
    pub fn summary(&self) -> SinkSummary {
        match &self.0 {
            None => SinkSummary::default(),
            Some(shared) => {
                let inner = shared.lock();
                SinkSummary {
                    site: shared.site,
                    commit_lat_ns: inner.commit_lat.summary(),
                    view_lat_ns: inner.view_lat.summary(),
                    queue_depth: inner.queue_depth.summary(),
                    queue_depth_hwm: shared.queue_hwm.load(Ordering::Relaxed),
                    dropped: shared.dropped.load(Ordering::Relaxed),
                }
            }
        }
    }
}

impl Shared {
    /// Blocking lock for non-hot-path readers (snapshot/summary); recovers
    /// from poisoning since the data is plain counters.
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn record(
        &self,
        ts_ns: u64,
        kind: TraceKind,
        vt: Option<(u64, u32)>,
        peer: Option<u32>,
        n: Option<u64>,
        span: Option<(u32, u64, u32)>,
    ) {
        let Ok(mut inner) = self.inner.try_lock() else {
            // Emitters never block: a contended event is a dropped event.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        inner.pair_latency(ts_ns, kind, vt);
        let evicted = inner.ring.push(TraceEvent {
            site: self.site,
            ts_ns,
            kind,
            vt,
            peer,
            n,
            span,
        });
        if evicted {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Inner {
    /// Updates the live latency histograms from the event stream itself:
    /// TxnBegin→Commit pairs feed `commit_lat`, ViewOptimistic→
    /// ViewCommitted pairs feed `view_lat`, keyed by the subject VT.
    fn pair_latency(&mut self, ts_ns: u64, kind: TraceKind, vt: Option<(u64, u32)>) {
        let Some(vt) = vt else { return };
        match kind {
            TraceKind::TxnBegin if self.open_txns.len() < MAX_OPEN => {
                self.open_txns.push((vt, ts_ns));
            }
            TraceKind::Commit => {
                if let Some(i) = self.open_txns.iter().position(|(k, _)| *k == vt) {
                    let (_, begin) = self.open_txns.swap_remove(i);
                    self.commit_lat.record(ts_ns.saturating_sub(begin));
                }
            }
            TraceKind::Abort | TraceKind::Rollback => {
                if let Some(i) = self.open_txns.iter().position(|(k, _)| *k == vt) {
                    self.open_txns.swap_remove(i);
                }
            }
            TraceKind::ViewOptimistic if self.open_views.len() < MAX_OPEN => {
                self.open_views.push((vt, ts_ns));
            }
            TraceKind::ViewCommitted => {
                if let Some(i) = self.open_views.iter().position(|(k, _)| *k == vt) {
                    let (_, opt) = self.open_views.swap_remove(i);
                    self.view_lat.record(ts_ns.saturating_sub(opt));
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_inert() {
        let s = TraceSink::disabled();
        assert!(!s.is_enabled());
        s.emit(TraceKind::Commit, Some((1, 1)), None, None);
        s.record_queue_depth(10);
        assert_eq!(s.dropped(), 0);
        assert!(s.snapshot().is_empty());
        assert_eq!(s.summary().commit_lat_ns.count, 0);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let s = TraceSink::enabled(1, 16);
        for i in 0..20u64 {
            s.emit_at(i, TraceKind::MsgSend, None, Some(2), Some(i));
        }
        let evs = s.snapshot();
        assert_eq!(evs.len(), 16);
        assert_eq!(s.dropped(), 4);
        // Oldest four were evicted; order is preserved.
        assert_eq!(evs.first().unwrap().n, Some(4));
        assert_eq!(evs.last().unwrap().n, Some(19));
        assert!(evs.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn drain_empties_the_ring() {
        let s = TraceSink::enabled(1, 16);
        s.emit_at(1, TraceKind::TxnBegin, Some((1, 1)), None, None);
        assert_eq!(s.drain().len(), 1);
        assert!(s.snapshot().is_empty());
    }

    #[test]
    fn commit_latency_pairs_begin_to_commit() {
        let s = TraceSink::enabled(1, 64);
        s.emit_at(100, TraceKind::TxnBegin, Some((7, 1)), None, None);
        s.emit_at(150, TraceKind::TxnBegin, Some((8, 1)), None, None);
        s.emit_at(400, TraceKind::Commit, Some((7, 1)), None, Some(1));
        // Txn 8 rolls back: no commit-latency sample.
        s.emit_at(500, TraceKind::Rollback, Some((8, 1)), None, None);
        let sum = s.summary();
        assert_eq!(sum.commit_lat_ns.count, 1);
        assert_eq!(sum.commit_lat_ns.max, 300);
    }

    #[test]
    fn view_latency_pairs_optimistic_to_committed() {
        let s = TraceSink::enabled(2, 64);
        s.emit_at(10, TraceKind::ViewOptimistic, Some((3, 1)), None, None);
        s.emit_at(70, TraceKind::ViewCommitted, Some((3, 1)), None, None);
        // A pessimistic delivery with no prior optimistic event records
        // nothing (there is no staleness window to measure).
        s.emit_at(90, TraceKind::ViewCommitted, Some((4, 1)), None, None);
        let sum = s.summary();
        assert_eq!(sum.view_lat_ns.count, 1);
        assert_eq!(sum.view_lat_ns.max, 60);
    }

    #[test]
    fn queue_depth_tracks_high_water_mark() {
        let s = TraceSink::enabled(1, 16);
        for d in [3u64, 9, 1, 7] {
            s.record_queue_depth(d);
        }
        assert_eq!(s.queue_depth_hwm(), 9);
        assert_eq!(s.summary().queue_depth.count, 4);
        assert_eq!(s.summary().queue_depth_hwm, 9);
    }

    #[test]
    fn clones_share_one_ring() {
        let a = TraceSink::enabled(1, 16);
        let b = a.clone();
        a.emit_at(1, TraceKind::Reconnect, None, Some(2), None);
        b.emit_at(2, TraceKind::SiteFailed, None, Some(3), None);
        assert_eq!(a.snapshot().len(), 2);
        assert_eq!(b.snapshot().len(), 2);
    }

    #[test]
    fn manual_clock_stamps_emit_with_caller_time() {
        let s = TraceSink::enabled_manual(3, 16);
        s.emit(TraceKind::TxnBegin, Some((1, 3)), None, None);
        s.set_now_ns(5_000);
        s.emit(TraceKind::Commit, Some((1, 3)), None, None);
        let evs = s.snapshot();
        assert_eq!(evs[0].ts_ns, 0);
        assert_eq!(evs[1].ts_ns, 5_000);
        assert_eq!(s.summary().commit_lat_ns.max, 5_000);
        // set_now_ns on a wall-clock sink is a documented no-op.
        let wall = TraceSink::enabled(4, 16);
        wall.set_now_ns(9);
        let disabled = TraceSink::disabled();
        disabled.set_now_ns(9);
    }

    #[test]
    fn span_context_round_trips_through_the_ring() {
        let s = TraceSink::enabled(1, 16);
        s.emit_span(TraceKind::MsgSend, None, Some(2), Some(64), Some((1, 7, 0)));
        s.emit_at_span(9, TraceKind::MsgRecv, None, Some(1), None, Some((1, 7, 1)));
        let evs = s.snapshot();
        assert_eq!(evs[0].span, Some((1, 7, 0)));
        assert_eq!(evs[1].span, Some((1, 7, 1)));
        // Plain emit leaves the span empty.
        s.emit(TraceKind::Reconnect, None, Some(2), None);
        assert_eq!(s.snapshot()[2].span, None);
    }

    #[test]
    fn histograms_expose_raw_buckets() {
        let s = TraceSink::enabled(1, 16);
        s.emit_at(100, TraceKind::TxnBegin, Some((7, 1)), None, None);
        s.emit_at(400, TraceKind::Commit, Some((7, 1)), None, Some(1));
        s.record_queue_depth(5);
        let (commit, view, depth) = s.histograms();
        assert_eq!(commit.count(), 1);
        assert_eq!(commit.max(), 300);
        assert!(view.is_empty());
        assert_eq!(depth.count(), 1);
        let (c, v, d) = TraceSink::disabled().histograms();
        assert!(c.is_empty() && v.is_empty() && d.is_empty());
    }

    #[test]
    fn jsonl_export_round_trips() {
        let s = TraceSink::enabled(5, 16);
        s.emit_at(1, TraceKind::TxnBegin, Some((1, 5)), None, None);
        s.emit_at(9, TraceKind::Commit, Some((1, 5)), None, Some(1));
        let mut buf = Vec::new();
        s.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed: Vec<_> = text
            .lines()
            .map(|l| TraceEvent::from_jsonl(l).unwrap())
            .collect();
        assert_eq!(parsed, s.snapshot());
    }
}
