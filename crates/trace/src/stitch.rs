//! Multi-site trace stitching: reconstruct end-to-end causal spans from
//! per-site JSONL dumps.
//!
//! Each site's trace is stamped by its own clock (the sink's epoch is the
//! process start), so cross-site timestamps are not directly comparable.
//! The stitcher pairs every `MsgSend` with its matching `MsgRecv` by the
//! envelope-carried span key `(origin site, origin sequence)` and applies
//! the classic *minimum one-way delay* method: over a bidirectional link
//! `a↔b`, the smallest observed `recv − send` delta in each direction
//! brackets the clock offset, and under a symmetric-delay assumption the
//! offset is half their difference. Pairwise offsets are then propagated
//! breadth-first from the lowest site id, giving every site a correction
//! into one reference clock.
//!
//! With a common clock the stitcher assembles, for every committed
//! virtual time, the paper's end-to-end story (§4.1/§4.2): gesture →
//! local commit → each remote commit → pessimistic view notified, with
//! per-site-pair propagation histograms, a critical-path breakdown
//! (queueing vs wire vs re-execute vs notify), and anomaly flags
//! (stalled pessimistic frontier, rollback storms, WAL-fsync outliers).
//!
//! The whole pass is a pure function of the input events: feeding the
//! same dumps twice renders byte-identical reports, which is pinned by a
//! golden test against the deterministic simulator.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use crate::event::{TraceEvent, TraceKind};
use crate::hist::Histogram;
use crate::ParseError;

/// Sites with at least this many commits lacking *any* pessimistic view
/// notification (while the site demonstrably delivers notifications) are
/// flagged as a stalled pessimistic frontier.
const STALL_MIN_COMMITS: u64 = 4;

/// A site whose rollbacks reach this floor *and* outnumber its commits is
/// flagged as a rollback storm.
const STORM_MIN_ROLLBACKS: u64 = 8;

/// A commit→WAL-append delay is an outlier when it exceeds both this
/// factor times the median delay and [`WAL_OUTLIER_FLOOR_NS`].
const WAL_OUTLIER_FACTOR: u64 = 8;

/// Absolute floor below which a commit→WAL-append delay is never flagged.
const WAL_OUTLIER_FLOOR_NS: u64 = 1_000_000;

/// Cap on per-VT span lines in the rendered report (the full set stays in
/// [`StitchReport::spans`]); the cut is logged, never silent.
const RENDER_SPAN_CAP: usize = 64;

/// One remote site's leg of a committed VT's span. All `_ns` fields are in
/// the *reference* clock (lowest site id) after skew correction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemoteLeg {
    /// When the origin put the first span-keyed message for this VT toward
    /// this site on the wire.
    pub send_ns: Option<i64>,
    /// When this site's transport surfaced that message.
    pub recv_ns: Option<i64>,
    /// When this site committed the VT.
    pub commit_ns: Option<i64>,
    /// When this site's pessimistic view notification for the VT fired.
    pub view_ns: Option<i64>,
}

impl RemoteLeg {
    /// The leg's completion instant: view notification when present,
    /// otherwise the remote commit.
    pub fn completion_ns(&self) -> Option<i64> {
        self.view_ns.or(self.commit_ns)
    }
}

/// The reconstructed end-to-end span of one committed virtual time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanSummary {
    /// The committed VT `(lamport, site)` — also the span key.
    pub vt: (u64, u32),
    /// When the gesture began executing at the origin (reference clock).
    pub begin_ns: Option<i64>,
    /// When the origin published its optimistic guess.
    pub guess_ns: Option<i64>,
    /// When the origin committed locally.
    pub local_commit_ns: Option<i64>,
    /// When the origin's own pessimistic view notification fired.
    pub local_view_ns: Option<i64>,
    /// Per-remote-site legs, keyed by site id.
    pub remotes: BTreeMap<u32, RemoteLeg>,
    /// Gesture → last completion anywhere (reference clock), when both
    /// ends were observed.
    pub end_to_end_ns: Option<u64>,
}

/// Critical-path breakdown of one span: where the slowest leg spent its
/// time. All components are saturating (never negative).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CriticalPath {
    /// The remote site on the slowest leg.
    pub site: u32,
    /// Gesture (guess when present, else begin) → wire send.
    pub queue_ns: u64,
    /// Wire send → remote receive, skew-corrected.
    pub wire_ns: u64,
    /// Remote receive → remote commit.
    pub reexec_ns: u64,
    /// Remote commit → remote view notification.
    pub notify_ns: u64,
}

/// One directed link's pairing digest.
#[derive(Debug, Clone, Default)]
pub struct LinkDigest {
    /// Send/recv pairs matched by span key.
    pub pairs: u64,
    /// Sends with no matching receive (lost or truncated trace).
    pub unmatched_sends: u64,
    /// Receives with no matching send.
    pub unmatched_recvs: u64,
    /// Smallest raw `recv − send` delta (clocks uncorrected).
    pub min_delta_ns: Option<i64>,
    /// Skew-corrected one-way latency distribution (negative corrected
    /// values clamp to 0).
    pub latency: Histogram,
}

/// Everything the stitcher reconstructed. Render with
/// [`render`](StitchReport::render); every collection is ordered, so the
/// rendering is a pure function of the input events.
#[derive(Debug, Clone, Default)]
pub struct StitchReport {
    /// Events observed.
    pub events: u64,
    /// Every site that emitted at least one event.
    pub sites: Vec<u32>,
    /// Estimated clock offset of each site relative to the reference site
    /// (the lowest id): `offset[s] = clock_s − clock_ref`.
    pub offsets_ns: BTreeMap<u32, i64>,
    /// Directed link digests keyed by `(from, to)`.
    pub links: BTreeMap<(u32, u32), LinkDigest>,
    /// Skew-corrected propagation latency per `(origin, remote)` pair:
    /// origin local commit → remote commit.
    pub propagation: BTreeMap<(u32, u32), Histogram>,
    /// Per-VT spans, ascending by `(lamport, site)`.
    pub spans: Vec<SpanSummary>,
    /// Critical path of each span that had a slowest remote leg, in span
    /// order.
    pub critical_paths: Vec<((u64, u32), CriticalPath)>,
    /// Aggregate critical-path component histograms
    /// (queueing, wire, re-execute, notify).
    pub critical_queue: Histogram,
    /// Aggregate wire component.
    pub critical_wire: Histogram,
    /// Aggregate re-execute component.
    pub critical_reexec: Histogram,
    /// Aggregate notify component.
    pub critical_notify: Histogram,
    /// Human-readable anomaly flags, sorted.
    pub anomalies: Vec<String>,
    /// Completeness violations: committed VTs whose cross-site span has a
    /// hole (missing origin commit, unreceived send, remote commit with
    /// no traced delivery). Sorted. Empty means every committed VT's span
    /// is fully reconstructible — the model checker's trace-completeness
    /// oracle gates on exactly this.
    pub incomplete: Vec<String>,
}

/// Streaming collector: feed events (in any order, from any number of
/// files), then call [`finish`](Stitcher::finish).
#[derive(Debug, Clone, Default)]
pub struct Stitcher {
    events: Vec<TraceEvent>,
}

impl Stitcher {
    /// An empty stitcher.
    pub fn new() -> Self {
        Stitcher::default()
    }

    /// Adds one event.
    pub fn observe(&mut self, ev: &TraceEvent) {
        self.events.push(*ev);
    }

    /// Parses and folds a whole JSONL document; blank lines are skipped.
    /// Returns the number of events folded, or the first parse failure
    /// with its 1-based line number.
    pub fn observe_jsonl(&mut self, text: &str) -> Result<u64, (usize, ParseError)> {
        let mut n = 0;
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let ev = TraceEvent::from_jsonl(line).map_err(|e| (idx + 1, e))?;
            self.observe(&ev);
            n += 1;
        }
        Ok(n)
    }

    /// Like [`observe_jsonl`](Self::observe_jsonl), but folds every
    /// parseable line and returns the failures (1-based line numbers)
    /// instead of aborting at the first one.
    pub fn observe_jsonl_lossy(&mut self, text: &str) -> (u64, Vec<(usize, ParseError)>) {
        let mut n = 0;
        let mut bad = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match TraceEvent::from_jsonl(line) {
                Ok(ev) => {
                    self.observe(&ev);
                    n += 1;
                }
                Err(e) => bad.push((idx + 1, e)),
            }
        }
        (n, bad)
    }

    /// Runs the full stitching pass over everything observed.
    pub fn finish(&self) -> StitchReport {
        let mut events = self.events.clone();
        // Stable order first: everything downstream (pairing order, span
        // "first send" selection) must not depend on file feed order.
        events.sort_by_key(|e| (e.ts_ns, e.site, e.kind as u32, e.peer, e.span, e.vt, e.n));

        let mut report = StitchReport {
            events: events.len() as u64,
            ..StitchReport::default()
        };
        let sites: BTreeSet<u32> = events.iter().map(|e| e.site).collect();
        report.sites = sites.iter().copied().collect();
        if events.is_empty() {
            return report;
        }

        let pairing = pair_links(&events, &mut report);
        estimate_offsets(&sites, &mut report);
        corrected_link_latencies(&pairing, &mut report);
        assemble_spans(&events, &pairing, &mut report);
        flag_anomalies(&events, &mut report);
        report.anomalies.sort();
        report.incomplete.sort();
        report
    }
}

/// The send/recv events of one directed link, bucketed by span key, each
/// bucket in timestamp order.
type KeyedTimes = BTreeMap<(u32, u64), Vec<i64>>;

struct Pairing {
    /// Per directed link: matched `(send_ts, recv_ts)` raw-clock pairs.
    pairs: BTreeMap<(u32, u32), Vec<(i64, i64)>>,
    /// Per directed link and span key: sends with no matching recv.
    lost: BTreeMap<(u32, u32), Vec<(u32, u64)>>,
    /// First send per `(origin_site, span_key, to_site)`, raw clock.
    first_send: BTreeMap<(u32, (u32, u64), u32), i64>,
    /// First recv per `(site, span_key)`, raw clock.
    first_recv: BTreeMap<(u32, (u32, u64)), i64>,
}

fn pair_links(events: &[TraceEvent], report: &mut StitchReport) -> Pairing {
    let mut sends: BTreeMap<(u32, u32), KeyedTimes> = BTreeMap::new();
    let mut recvs: BTreeMap<(u32, u32), KeyedTimes> = BTreeMap::new();
    let mut pairing = Pairing {
        pairs: BTreeMap::new(),
        lost: BTreeMap::new(),
        first_send: BTreeMap::new(),
        first_recv: BTreeMap::new(),
    };
    for ev in events {
        let (Some(peer), Some((o, seq, _hop))) = (ev.peer, ev.span) else {
            continue;
        };
        let ts = ev.ts_ns as i64;
        match ev.kind {
            TraceKind::MsgSend => {
                sends
                    .entry((ev.site, peer))
                    .or_default()
                    .entry((o, seq))
                    .or_default()
                    .push(ts);
                pairing
                    .first_send
                    .entry((ev.site, (o, seq), peer))
                    .or_insert(ts);
            }
            TraceKind::MsgRecv => {
                recvs
                    .entry((peer, ev.site))
                    .or_default()
                    .entry((o, seq))
                    .or_default()
                    .push(ts);
                pairing.first_recv.entry((ev.site, (o, seq))).or_insert(ts);
            }
            _ => {}
        }
    }

    let links: BTreeSet<(u32, u32)> = sends.keys().chain(recvs.keys()).copied().collect();
    for link in links {
        let digest = report.links.entry(link).or_default();
        let s = sends.remove(&link).unwrap_or_default();
        let mut r = recvs.remove(&link).unwrap_or_default();
        for (key, s_times) in s {
            let r_times = r.remove(&key).unwrap_or_default();
            let matched = s_times.len().min(r_times.len());
            for i in 0..matched {
                let (st, rt) = (s_times[i], r_times[i]);
                digest.pairs += 1;
                let delta = rt - st;
                digest.min_delta_ns = Some(digest.min_delta_ns.map_or(delta, |m| m.min(delta)));
                pairing.pairs.entry(link).or_default().push((st, rt));
            }
            if s_times.len() > matched {
                digest.unmatched_sends += (s_times.len() - matched) as u64;
                for _ in matched..s_times.len() {
                    pairing.lost.entry(link).or_default().push(key);
                }
            }
            digest.unmatched_recvs += r_times.len().saturating_sub(matched) as u64;
        }
        for (_, r_times) in r {
            digest.unmatched_recvs += r_times.len() as u64;
        }
    }
    pairing
}

/// Pairwise skew via minimum one-way delay, then breadth-first offset
/// assignment from the reference site (lowest id). Sites unreachable over
/// any bidirectional link keep offset 0 and are flagged.
fn estimate_offsets(sites: &BTreeSet<u32>, report: &mut StitchReport) {
    // skew[(a, b)] (a < b) = clock_b − clock_a.
    let mut skew: BTreeMap<(u32, u32), i64> = BTreeMap::new();
    for (&(a, b), digest) in &report.links {
        if a >= b {
            continue;
        }
        let fwd = digest.min_delta_ns;
        let rev = report.links.get(&(b, a)).and_then(|d| d.min_delta_ns);
        let estimate = match (fwd, rev) {
            // min(recv_b − send_a) = delay + skew; with symmetric delays
            // the half-difference cancels the delay term.
            (Some(f), Some(r)) => Some((f - r) / 2),
            // One-directional link: attribute the whole minimum delta to
            // skew (an upper bound) and note the degraded estimate.
            (Some(f), None) => {
                report.anomalies.push(format!(
                    "skew({a},{b}): one-way traffic only, estimate degraded"
                ));
                Some(f)
            }
            (None, Some(r)) => {
                report.anomalies.push(format!(
                    "skew({a},{b}): one-way traffic only, estimate degraded"
                ));
                Some(-r)
            }
            (None, None) => None,
        };
        if let Some(s) = estimate {
            skew.insert((a, b), s);
        }
    }

    let Some(&reference) = sites.iter().next() else {
        return;
    };
    let mut offsets: BTreeMap<u32, i64> = BTreeMap::new();
    offsets.insert(reference, 0);
    let mut frontier = vec![reference];
    while let Some(a) = frontier.pop() {
        let base = offsets[&a];
        for (&(x, y), &s) in &skew {
            let (other, delta) = if x == a {
                (y, s)
            } else if y == a {
                (x, -s)
            } else {
                continue;
            };
            if let std::collections::btree_map::Entry::Vacant(e) = offsets.entry(other) {
                e.insert(base + delta);
                frontier.push(other);
            }
        }
    }
    for &s in sites {
        if !offsets.contains_key(&s) {
            if s != reference && report.links.keys().any(|&(a, b)| a == s || b == s) {
                report.anomalies.push(format!(
                    "site {s}: no skew path to reference, offset 0 assumed"
                ));
            }
            offsets.insert(s, 0);
        }
    }
    report.offsets_ns = offsets;
}

fn corrected_link_latencies(pairing: &Pairing, report: &mut StitchReport) {
    let offsets = report.offsets_ns.clone();
    for (&(a, b), pairs) in &pairing.pairs {
        let (oa, ob) = (offsets[&a], offsets[&b]);
        let digest = report.links.get_mut(&(a, b)).expect("link digest exists");
        for &(st, rt) in pairs {
            let corrected = (rt - ob) - (st - oa);
            digest.latency.record(corrected.max(0) as u64);
        }
    }
}

fn assemble_spans(events: &[TraceEvent], pairing: &Pairing, report: &mut StitchReport) {
    let offsets = report.offsets_ns.clone();
    let correct = |site: u32, ts: i64| ts - offsets.get(&site).copied().unwrap_or(0);

    // Committed VTs and every per-site instant that concerns them.
    let mut commits: BTreeMap<(u64, u32), BTreeMap<u32, i64>> = BTreeMap::new();
    let mut begins: BTreeMap<(u64, u32), i64> = BTreeMap::new();
    let mut guesses: BTreeMap<(u64, u32), i64> = BTreeMap::new();
    let mut views: BTreeMap<(u64, u32), BTreeMap<u32, i64>> = BTreeMap::new();
    for ev in events {
        let Some(vt) = ev.vt else { continue };
        let ts = ev.ts_ns as i64;
        match ev.kind {
            TraceKind::Commit => {
                commits.entry(vt).or_default().entry(ev.site).or_insert(ts);
            }
            TraceKind::TxnBegin if ev.site == vt.1 => {
                begins.entry(vt).or_insert(ts);
            }
            TraceKind::Guess if ev.site == vt.1 => {
                guesses.entry(vt).or_insert(ts);
            }
            TraceKind::ViewCommitted => {
                views.entry(vt).or_default().entry(ev.site).or_insert(ts);
            }
            _ => {}
        }
    }

    for (vt, per_site_commits) in &commits {
        let origin = vt.1;
        let key = (origin, vt.0);
        let mut span = SpanSummary {
            vt: *vt,
            begin_ns: begins.get(vt).map(|&t| correct(origin, t)),
            guess_ns: guesses.get(vt).map(|&t| correct(origin, t)),
            local_commit_ns: per_site_commits.get(&origin).map(|&t| correct(origin, t)),
            local_view_ns: views
                .get(vt)
                .and_then(|m| m.get(&origin))
                .map(|&t| correct(origin, t)),
            ..SpanSummary::default()
        };
        if span.local_commit_ns.is_none() {
            report.incomplete.push(format!(
                "vt={}@{}: no commit at origin {origin}",
                vt.0, vt.1
            ));
        }

        for (&site, &commit_ts) in per_site_commits {
            if site == origin {
                continue;
            }
            let leg = RemoteLeg {
                send_ns: pairing
                    .first_send
                    .get(&(origin, key, site))
                    .map(|&t| correct(origin, t)),
                recv_ns: pairing
                    .first_recv
                    .get(&(site, key))
                    .map(|&t| correct(site, t)),
                commit_ns: Some(correct(site, commit_ts)),
                view_ns: views
                    .get(vt)
                    .and_then(|m| m.get(&site))
                    .map(|&t| correct(site, t)),
            };
            if leg.recv_ns.is_none() {
                report.incomplete.push(format!(
                    "vt={}@{}: commit at site {site} but no traced delivery",
                    vt.0, vt.1
                ));
            }
            if let (Some(lc), Some(rc)) = (span.local_commit_ns, leg.commit_ns) {
                report
                    .propagation
                    .entry((origin, site))
                    .or_default()
                    .record((rc - lc).max(0) as u64);
            }
            span.remotes.insert(site, leg);
        }

        let start = span.begin_ns.or(span.guess_ns).or(span.local_commit_ns);
        let finish = span
            .remotes
            .values()
            .filter_map(RemoteLeg::completion_ns)
            .chain(span.local_view_ns)
            .chain(span.local_commit_ns)
            .max();
        span.end_to_end_ns = match (start, finish) {
            (Some(s), Some(f)) => Some((f - s).max(0) as u64),
            _ => None,
        };

        // Critical path: the remote leg finishing last.
        let slowest = span
            .remotes
            .iter()
            .filter_map(|(&s, leg)| leg.completion_ns().map(|c| (c, s, *leg)))
            .max_by_key(|&(c, s, _)| (c, s));
        if let Some((_, site, leg)) = slowest {
            let gesture = span.guess_ns.or(span.begin_ns);
            let sat = |a: Option<i64>, b: Option<i64>| match (a, b) {
                (Some(a), Some(b)) => (b - a).max(0) as u64,
                _ => 0,
            };
            let cp = CriticalPath {
                site,
                queue_ns: sat(gesture, leg.send_ns),
                wire_ns: sat(leg.send_ns, leg.recv_ns),
                reexec_ns: sat(leg.recv_ns, leg.commit_ns),
                notify_ns: sat(leg.commit_ns, leg.view_ns.or(leg.commit_ns)),
            };
            report.critical_queue.record(cp.queue_ns);
            report.critical_wire.record(cp.wire_ns);
            report.critical_reexec.record(cp.reexec_ns);
            report.critical_notify.record(cp.notify_ns);
            report.critical_paths.push((*vt, cp));
        }
        report.spans.push(span);
    }

    // Sends that never arrived are span holes too.
    for ((from, to), keys) in &pairing.lost {
        for (o, seq) in keys {
            report
                .incomplete
                .push(format!("span {seq}@{o}: send {from}->{to} never received"));
        }
    }
}

fn flag_anomalies(events: &[TraceEvent], report: &mut StitchReport) {
    let mut commits_per_site: BTreeMap<u32, u64> = BTreeMap::new();
    let mut rollbacks_per_site: BTreeMap<u32, u64> = BTreeMap::new();
    let mut views_per_site: BTreeMap<u32, u64> = BTreeMap::new();
    let mut commit_ts: BTreeMap<(u32, (u64, u32)), i64> = BTreeMap::new();
    let mut viewed: BTreeSet<(u32, (u64, u32))> = BTreeSet::new();
    let mut wal_delays: Vec<(u32, (u64, u32), u64)> = Vec::new();
    for ev in events {
        match ev.kind {
            TraceKind::Commit => {
                *commits_per_site.entry(ev.site).or_default() += 1;
                if let Some(vt) = ev.vt {
                    commit_ts.entry((ev.site, vt)).or_insert(ev.ts_ns as i64);
                }
            }
            TraceKind::Rollback => *rollbacks_per_site.entry(ev.site).or_default() += 1,
            TraceKind::ViewCommitted => {
                *views_per_site.entry(ev.site).or_default() += 1;
                if let Some(vt) = ev.vt {
                    viewed.insert((ev.site, vt));
                }
            }
            TraceKind::WalAppend => {
                if let Some(vt) = ev.vt {
                    if let Some(&c) = commit_ts.get(&(ev.site, vt)) {
                        wal_delays.push((ev.site, vt, (ev.ts_ns as i64 - c).max(0) as u64));
                    }
                }
            }
            _ => {}
        }
    }

    // Stalled pessimistic frontier: a site that does deliver notifications
    // but has accumulated commits that never got one.
    for (&site, &views) in &views_per_site {
        if views == 0 {
            continue;
        }
        let unnotified = commit_ts
            .keys()
            .filter(|(s, vt)| *s == site && !viewed.contains(&(site, *vt)))
            .count() as u64;
        if unnotified >= STALL_MIN_COMMITS {
            report.anomalies.push(format!(
                "site {site}: stalled pessimistic frontier ({unnotified} commits never notified)"
            ));
        }
    }

    // Rollback storm.
    for (&site, &rb) in &rollbacks_per_site {
        let commits = commits_per_site.get(&site).copied().unwrap_or(0);
        if rb >= STORM_MIN_ROLLBACKS && rb > commits {
            report.anomalies.push(format!(
                "site {site}: rollback storm ({rb} rollbacks vs {commits} commits)"
            ));
        }
    }

    // WAL-fsync outliers: commit → WAL-append delays far beyond the median.
    if !wal_delays.is_empty() {
        let mut h = Histogram::new();
        for &(_, _, d) in &wal_delays {
            h.record(d);
        }
        let p50 = h.quantile(0.5);
        let threshold = (p50.saturating_mul(WAL_OUTLIER_FACTOR)).max(WAL_OUTLIER_FLOOR_NS);
        let outliers: Vec<&(u32, (u64, u32), u64)> = wal_delays
            .iter()
            .filter(|&&(_, _, d)| d > threshold)
            .collect();
        if let Some(worst) = outliers.iter().max_by_key(|&&&(_, _, d)| d) {
            report.anomalies.push(format!(
                "wal: {} fsync outlier(s) beyond {}us (worst {}us at site {} vt={}@{})",
                outliers.len(),
                threshold / 1_000,
                worst.2 / 1_000,
                worst.0,
                worst.1 .0,
                worst.1 .1,
            ));
        }
    }
}

impl StitchReport {
    /// Renders the deterministic plain-text report.
    pub fn render(&self) -> String {
        let mut o = String::with_capacity(4096);
        let us = |ns: u64| ns / 1_000;
        let ius = |ns: i64| ns / 1_000;
        let _ = writeln!(o, "decaf-trace-stitch report");
        let _ = writeln!(
            o,
            "events={} sites={:?} spans={} incomplete={}",
            self.events,
            self.sites,
            self.spans.len(),
            self.incomplete.len()
        );

        let _ = writeln!(o, "clock-offsets-us (relative to lowest site):");
        for (site, off) in &self.offsets_ns {
            let _ = writeln!(o, "  site {site}: {}", ius(*off));
        }

        let _ = writeln!(o, "links (directed, corrected one-way latency):");
        for ((a, b), d) in &self.links {
            let s = d.latency.summary();
            let _ = writeln!(
                o,
                "  {a}->{b}: pairs={} lost={} orphaned={} min-raw-us={} p50-us={} p99-us={} max-us={}",
                d.pairs,
                d.unmatched_sends,
                d.unmatched_recvs,
                d.min_delta_ns.map(ius).unwrap_or(0),
                us(s.p50),
                us(s.p99),
                us(s.max),
            );
        }

        let _ = writeln!(
            o,
            "propagation (origin->remote, local commit -> remote commit):"
        );
        for ((a, b), h) in &self.propagation {
            let s = h.summary();
            let _ = writeln!(
                o,
                "  {a}->{b}: n={} p50-us={} p95-us={} p99-us={} max-us={}",
                s.count,
                us(s.p50),
                us(s.p95),
                us(s.p99),
                us(s.max),
            );
        }

        let _ = writeln!(o, "critical-path (aggregate over slowest legs):");
        for (name, h) in [
            ("queueing", &self.critical_queue),
            ("wire", &self.critical_wire),
            ("re-execute", &self.critical_reexec),
            ("notify", &self.critical_notify),
        ] {
            let s = h.summary();
            let _ = writeln!(
                o,
                "  {name}: n={} p50-us={} p99-us={} max-us={}",
                s.count,
                us(s.p50),
                us(s.p99),
                us(s.max),
            );
        }

        let _ = writeln!(o, "spans:");
        for span in self.spans.iter().take(RENDER_SPAN_CAP) {
            let _ = write!(
                o,
                "  vt={}@{} e2e-us={}",
                span.vt.0,
                span.vt.1,
                span.end_to_end_ns
                    .map(us)
                    .map_or_else(|| "?".into(), |v| v.to_string()),
            );
            let base = span.begin_ns.or(span.guess_ns).or(span.local_commit_ns);
            let rel = |t: Option<i64>| match (base, t) {
                (Some(b), Some(t)) => ((t - b).max(0) as u64 / 1_000).to_string(),
                _ => "?".into(),
            };
            let _ = write!(o, " local[commit+{}us", rel(span.local_commit_ns));
            if span.local_view_ns.is_some() {
                let _ = write!(o, " view+{}us", rel(span.local_view_ns));
            }
            let _ = write!(o, "]");
            for (site, leg) in &span.remotes {
                let _ = write!(
                    o,
                    " {site}[recv+{}us commit+{}us",
                    rel(leg.recv_ns),
                    rel(leg.commit_ns)
                );
                if leg.view_ns.is_some() {
                    let _ = write!(o, " view+{}us", rel(leg.view_ns));
                }
                let _ = write!(o, "]");
            }
            let _ = writeln!(o);
        }
        if self.spans.len() > RENDER_SPAN_CAP {
            let _ = writeln!(
                o,
                "  ... {} more spans not rendered",
                self.spans.len() - RENDER_SPAN_CAP
            );
        }

        if !self.anomalies.is_empty() {
            let _ = writeln!(o, "anomalies:");
            for a in &self.anomalies {
                let _ = writeln!(o, "  - {a}");
            }
        }
        if !self.incomplete.is_empty() {
            let _ = writeln!(o, "incomplete:");
            for i in &self.incomplete {
                let _ = writeln!(o, "  - {i}");
            }
        }
        let _ = writeln!(
            o,
            "{}",
            if self.incomplete.is_empty() {
                "result: complete"
            } else {
                "result: INCOMPLETE"
            }
        );
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        site: u32,
        ts_ns: u64,
        kind: TraceKind,
        vt: Option<(u64, u32)>,
        peer: Option<u32>,
        span: Option<(u32, u64, u32)>,
    ) -> TraceEvent {
        TraceEvent {
            site,
            ts_ns,
            kind,
            vt,
            peer,
            n: None,
            span,
        }
    }

    /// Two sites, site 2's clock running 1 ms ahead, symmetric 5 ms wire.
    fn two_site_skewed() -> Vec<TraceEvent> {
        let skew: u64 = 1_000_000; // clock_2 = clock_1 + 1ms
        let wire: u64 = 5_000_000;
        let key = Some((1, 10, 0));
        let vt = Some((10, 1));
        let mut evs = vec![
            ev(1, 0, TraceKind::TxnBegin, vt, None, None),
            ev(1, 100_000, TraceKind::Guess, vt, None, None),
            ev(1, 200_000, TraceKind::MsgSend, None, Some(2), key),
            ev(
                2,
                200_000 + wire + skew,
                TraceKind::MsgRecv,
                None,
                Some(1),
                key,
            ),
            ev(2, 300_000 + wire + skew, TraceKind::Commit, vt, None, key),
            ev(
                2,
                400_000 + wire + skew,
                TraceKind::ViewCommitted,
                vt,
                None,
                key,
            ),
            // Confirm travels back with the same span key.
            ev(
                2,
                310_000 + wire + skew,
                TraceKind::MsgSend,
                None,
                Some(1),
                key,
            ),
            ev(
                1,
                310_000 + 2 * wire,
                TraceKind::MsgRecv,
                None,
                Some(2),
                key,
            ),
            ev(1, 320_000 + 2 * wire, TraceKind::Commit, vt, None, key),
        ];
        evs.sort_by_key(|e| (e.site, e.ts_ns));
        evs
    }

    #[test]
    fn recovers_injected_skew_within_one_bucket() {
        let mut st = Stitcher::new();
        for e in two_site_skewed() {
            st.observe(&e);
        }
        let r = st.finish();
        // True skew is +1ms (site 2 ahead). The min one-way delay method
        // recovers it exactly here because delays are symmetric.
        assert_eq!(r.offsets_ns[&1], 0);
        assert_eq!(r.offsets_ns[&2], 1_000_000);
        // Corrected wire latency is the true 5ms.
        let l12 = &r.links[&(1, 2)];
        assert_eq!(l12.pairs, 1);
        assert_eq!(l12.latency.max(), 5_000_000);
        assert!(r.incomplete.is_empty(), "{:?}", r.incomplete);
    }

    #[test]
    fn report_is_deterministic_and_feed_order_free() {
        let evs = two_site_skewed();
        let mut a = Stitcher::new();
        for e in &evs {
            a.observe(e);
        }
        let mut b = Stitcher::new();
        for e in evs.iter().rev() {
            b.observe(e);
        }
        assert_eq!(a.finish().render(), b.finish().render());
    }

    #[test]
    fn span_assembly_names_every_leg() {
        let mut st = Stitcher::new();
        for e in two_site_skewed() {
            st.observe(&e);
        }
        let r = st.finish();
        assert_eq!(r.spans.len(), 1);
        let span = &r.spans[0];
        assert_eq!(span.vt, (10, 1));
        assert!(span.begin_ns.is_some());
        assert!(span.local_commit_ns.is_some());
        let leg = &span.remotes[&2];
        assert!(leg.recv_ns.is_some());
        assert!(leg.view_ns.is_some());
        // The span closes with the origin's own commit-on-confirm at
        // 320us + two wire crossings — later than the remote view.
        assert_eq!(span.end_to_end_ns, Some(320_000 + 2 * 5_000_000));
        // Propagation: local commit (at 320us + 2*wire)... origin commit is
        // *after* the remote commit here (commit-on-confirm), so the
        // clamped sample is 0.
        assert_eq!(r.propagation[&(1, 2)].count(), 1);
        // Critical path exists and attributes the wire correctly.
        assert_eq!(r.critical_paths.len(), 1);
        let (_, cp) = &r.critical_paths[0];
        assert_eq!(cp.site, 2);
        assert_eq!(cp.wire_ns, 5_000_000);
    }

    #[test]
    fn lost_send_is_flagged_incomplete() {
        let mut st = Stitcher::new();
        for e in two_site_skewed() {
            st.observe(&e);
        }
        // A send that never arrives anywhere.
        st.observe(&ev(
            1,
            999_000,
            TraceKind::MsgSend,
            None,
            Some(2),
            Some((1, 11, 0)),
        ));
        let r = st.finish();
        assert!(
            r.incomplete.iter().any(|s| s.contains("never received")),
            "{:?}",
            r.incomplete
        );
        assert!(r.render().contains("result: INCOMPLETE"));
    }

    #[test]
    fn remote_commit_without_delivery_is_incomplete() {
        let mut st = Stitcher::new();
        let vt = Some((4, 1));
        st.observe(&ev(1, 10, TraceKind::Commit, vt, None, None));
        st.observe(&ev(2, 20, TraceKind::Commit, vt, None, None));
        let r = st.finish();
        assert!(
            r.incomplete
                .iter()
                .any(|s| s.contains("no traced delivery")),
            "{:?}",
            r.incomplete
        );
    }

    #[test]
    fn rollback_storm_and_stalled_frontier_flags() {
        let mut st = Stitcher::new();
        for i in 0..STORM_MIN_ROLLBACKS + 1 {
            st.observe(&ev(3, i, TraceKind::Rollback, Some((i, 3)), None, None));
        }
        // Site 4: delivers one notification but 4+ commits never notified.
        st.observe(&ev(
            4,
            1,
            TraceKind::ViewCommitted,
            Some((100, 4)),
            None,
            None,
        ));
        for i in 0..STALL_MIN_COMMITS {
            st.observe(&ev(4, 10 + i, TraceKind::Commit, Some((i, 4)), None, None));
        }
        let r = st.finish();
        assert!(r.anomalies.iter().any(|a| a.contains("rollback storm")));
        assert!(
            r.anomalies
                .iter()
                .any(|a| a.contains("stalled pessimistic frontier")),
            "{:?}",
            r.anomalies
        );
    }

    #[test]
    fn wal_outlier_flagged() {
        let mut st = Stitcher::new();
        for i in 0..10u64 {
            let vt = Some((i, 1));
            st.observe(&ev(1, i * 1_000_000, TraceKind::Commit, vt, None, None));
            // Nine fast appends (~10us), one pathological 50ms straggler.
            let delay = if i == 9 { 50_000_000 } else { 10_000 };
            st.observe(&ev(
                1,
                i * 1_000_000 + delay,
                TraceKind::WalAppend,
                vt,
                None,
                None,
            ));
        }
        let r = st.finish();
        assert!(
            r.anomalies.iter().any(|a| a.contains("fsync outlier")),
            "{:?}",
            r.anomalies
        );
    }

    #[test]
    fn empty_input_renders_cleanly() {
        let r = Stitcher::new().finish();
        assert_eq!(r.events, 0);
        assert!(r.render().contains("result: complete"));
    }

    #[test]
    fn observe_jsonl_reports_line_numbers() {
        let mut st = Stitcher::new();
        let err = st.observe_jsonl("{\"site\":1,\"ts_ns\":1,\"kind\":\"Commit\"}\nnope\n");
        assert_eq!(err.unwrap_err().0, 2);
    }
}
