//! Structured event tracing for DECAF sites: events, bounded ring sinks,
//! log2 latency histograms, JSONL export, and offline replay.
//!
//! The paper's evaluation (§5.1–§5.2) is entirely about *observed*
//! behavior — commit latency in units of the one-way delay `t`, rollback
//! rate versus update rate, transient-view inconsistency windows. This
//! crate is the instrument that makes those claims measurable on the real
//! transports, not just the simulator:
//!
//! * [`TraceEvent`] / [`TraceKind`] — a flat, `Copy` event model covering
//!   transaction lifecycle, view notification, and transport activity,
//!   with a dependency-free JSONL codec;
//! * [`TraceSink`] — a clone-able per-site sink: bounded ring buffer with
//!   drop-oldest semantics and a dropped-events counter, plus live
//!   latency histograms (commit latency, view staleness, queue depth).
//!   The disabled sink costs one branch per emit — no allocation, no
//!   lock — so emit points stay compiled into release builds;
//! * [`Histogram`] / [`HistSummary`] — 65 log2 buckets tiling the whole
//!   `u64` range, with p50/p95/p99 digests;
//! * [`Replay`] / [`SiteReplay`] — offline reconstruction of the same
//!   digests from exported JSONL, powering `decaf-trace-summarize`;
//! * [`Stitcher`] / [`StitchReport`] — multi-site causal stitching: pair
//!   sends with receives by the envelope-carried span key, estimate
//!   per-link clock skew (minimum one-way delay), and reconstruct per-VT
//!   end-to-end spans with critical-path breakdowns, powering
//!   `decaf-trace-stitch` and the model checker's trace-completeness
//!   oracle;
//! * [`metrics`] — Prometheus text exposition (counters, gauges, and the
//!   log2 histograms as cumulative buckets) behind `decaf-site`'s live
//!   `/metrics` endpoint;
//! * [`SpanCarrier`] — how message-generic transports read the causal
//!   span a payload carries.
//!
//! This crate intentionally has **zero dependencies** (not even
//! `decaf-vt`): virtual times cross its API as plain `(lamport, site)`
//! pairs, so the tracing layer can sit beneath every other crate in the
//! workspace without widening the sanctioned dependency set.
//!
//! # Example
//!
//! ```
//! use decaf_trace::{Replay, TraceKind, TraceSink};
//!
//! let sink = TraceSink::enabled(1, 1024);
//! sink.emit_at(0, TraceKind::TxnBegin, Some((4, 1)), None, None);
//! sink.emit_at(2_000, TraceKind::Commit, Some((4, 1)), None, Some(1));
//!
//! let mut jsonl = Vec::new();
//! sink.write_jsonl(&mut jsonl).unwrap();
//!
//! let mut replay = Replay::new();
//! replay.observe_jsonl(std::str::from_utf8(&jsonl).unwrap()).unwrap();
//! assert_eq!(replay.sites()[&1].commit_lat_ns.max(), 2_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze;
mod event;
mod hist;
pub mod metrics;
mod sink;
mod span;
pub mod stitch;

pub use analyze::{Replay, SiteReplay};
pub use event::{ParseError, TraceEvent, TraceKind};
pub use hist::{HistSummary, Histogram, BUCKETS};
pub use sink::{SinkSummary, TraceSink};
pub use span::SpanCarrier;
pub use stitch::{StitchReport, Stitcher};
