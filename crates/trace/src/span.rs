//! The [`SpanCarrier`] trait: how message-generic transports discover the
//! causal trace context a payload carries.
//!
//! The engine stamps every outbound envelope with a span `(origin site,
//! origin sequence, hop count)`; substrates that are generic over their
//! message type (the simulator, the threaded mesh) cannot name the
//! envelope type directly, so they ask through this trait when emitting
//! `MsgSend`/`MsgRecv` trace events. Payload types with no notion of a
//! span (test scalars, opaque blobs) answer `None` and trace exactly as
//! they did before spans existed.

/// Read access to the causal trace context a message carries, if any.
///
/// Implemented by `decaf-core`'s `Envelope` (the real protocol payload)
/// and, trivially, by the scalar payloads tests drive transports with.
pub trait SpanCarrier {
    /// The `(origin site, origin sequence, hop count)` span key this
    /// message carries, or `None` for span-less payloads.
    fn trace_span(&self) -> Option<(u32, u64, u32)>;
}

macro_rules! spanless {
    ($($t:ty),* $(,)?) => {$(
        impl SpanCarrier for $t {
            fn trace_span(&self) -> Option<(u32, u64, u32)> {
                None
            }
        }
    )*};
}

spanless!(
    (),
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    String,
);

impl SpanCarrier for &str {
    fn trace_span(&self) -> Option<(u32, u64, u32)> {
        None
    }
}

impl<T> SpanCarrier for Vec<T> {
    fn trace_span(&self) -> Option<(u32, u64, u32)> {
        None
    }
}

impl<T: SpanCarrier> SpanCarrier for Box<T> {
    fn trace_span(&self) -> Option<(u32, u64, u32)> {
        (**self).trace_span()
    }
}

impl<T: SpanCarrier> SpanCarrier for std::sync::Arc<T> {
    fn trace_span(&self) -> Option<(u32, u64, u32)> {
        (**self).trace_span()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_payloads_are_spanless() {
        assert_eq!(7u32.trace_span(), None);
        assert_eq!("x".trace_span(), None);
        assert_eq!(String::from("x").trace_span(), None);
        assert_eq!(vec![1u8, 2].trace_span(), None);
        assert_eq!(().trace_span(), None);
    }

    #[test]
    fn wrappers_delegate() {
        struct Spanned;
        impl SpanCarrier for Spanned {
            fn trace_span(&self) -> Option<(u32, u64, u32)> {
                Some((1, 2, 3))
            }
        }
        assert_eq!(Box::new(Spanned).trace_span(), Some((1, 2, 3)));
        assert_eq!(std::sync::Arc::new(Spanned).trace_span(), Some((1, 2, 3)));
    }
}
