//! Offline trace analysis: replay JSONL event streams back into per-site
//! latency histograms and protocol counters.
//!
//! This is the read side of the instrument: `decaf-site --trace-out`
//! writes one JSONL file per process, and `decaf-trace-summarize` feeds
//! every line of every file through [`Replay::observe`] to reconstruct
//! exactly the digests the live [`TraceSink`](crate::TraceSink) would have
//! reported — so the §5.1/§5.2 numbers (commit latency, rollback rate,
//! view staleness) can be checked from a real multi-process TCP run after
//! the fact.

use std::collections::BTreeMap;
use std::fmt;

use crate::event::{TraceEvent, TraceKind};
use crate::hist::Histogram;

/// Per-site protocol counters and latency distributions rebuilt from a
/// trace. Field meanings mirror the live sink's pairing rules.
#[derive(Debug, Clone, Default)]
pub struct SiteReplay {
    /// TxnBegin events seen.
    pub txns_begun: u64,
    /// Commit events seen (local and remote).
    pub commits: u64,
    /// Commit events whose `n` marks them locally originated.
    pub local_commits: u64,
    /// Abort events seen.
    pub aborts: u64,
    /// Rollback events seen.
    pub rollbacks: u64,
    /// ViewOptimistic events seen.
    pub views_optimistic: u64,
    /// ViewCommitted events seen.
    pub views_committed: u64,
    /// Frames sent / received by the site's transport.
    pub msgs_sent: u64,
    /// Frames received by the site's transport.
    pub msgs_received: u64,
    /// Transport reconnects.
    pub reconnects: u64,
    /// Fail-stop declarations observed.
    pub sites_failed: u64,
    /// History entries discarded by GC sweeps (sum of `n`).
    pub gc_discarded: u64,
    /// WAL append events seen (file appends and engine captures alike).
    pub wal_appends: u64,
    /// Bytes (or captured updates — whichever the emitter counts in `n`)
    /// appended to the write-ahead log.
    pub wal_bytes: u64,
    /// Completed crash recoveries (RecoveryDone events).
    pub recoveries: u64,
    /// Gestures that were deferred during catch-up and released when
    /// recovery finished (sum of RecoveryDone `n`).
    pub deferred_released: u64,
    /// TxnBegin → Commit latency, nanoseconds.
    pub commit_lat_ns: Histogram,
    /// ViewOptimistic → ViewCommitted staleness, nanoseconds.
    pub view_lat_ns: Histogram,
    open_txns: Vec<((u64, u32), u64)>,
    open_views: Vec<((u64, u32), u64)>,
}

impl SiteReplay {
    /// Rollbacks per optimistic transaction begun (the paper's §5.2
    /// rollback-rate metric), 0 when no transaction began.
    pub fn rollback_rate(&self) -> f64 {
        if self.txns_begun == 0 {
            0.0
        } else {
            self.rollbacks as f64 / self.txns_begun as f64
        }
    }
}

impl fmt::Display for SiteReplay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.commit_lat_ns.summary();
        let v = self.view_lat_ns.summary();
        let us = |ns: u64| ns / 1_000;
        writeln!(
            f,
            "  txns: begun={} committed={} (local={}) aborted={} rolled-back={} \
             (rollback-rate {:.3})",
            self.txns_begun,
            self.commits,
            self.local_commits,
            self.aborts,
            self.rollbacks,
            self.rollback_rate(),
        )?;
        writeln!(
            f,
            "  commit-latency-us: n={} p50={} p95={} p99={} max={}",
            c.count,
            us(c.p50),
            us(c.p95),
            us(c.p99),
            us(c.max),
        )?;
        writeln!(
            f,
            "  view-staleness-us: n={} p50={} p95={} p99={} max={} \
             (optimistic={} committed={})",
            v.count,
            us(v.p50),
            us(v.p95),
            us(v.p99),
            us(v.max),
            self.views_optimistic,
            self.views_committed,
        )?;
        write!(
            f,
            "  transport: sent={} received={} reconnects={} site-failures={} \
             gc-discarded={}",
            self.msgs_sent,
            self.msgs_received,
            self.reconnects,
            self.sites_failed,
            self.gc_discarded,
        )?;
        // Durability counters only appear for durable runs, so digests of
        // WAL-less traces are byte-identical to what they always were.
        if self.wal_appends > 0 || self.recoveries > 0 {
            write!(
                f,
                "\n  wal: appends={} bytes={} recoveries={} deferred-released={}",
                self.wal_appends, self.wal_bytes, self.recoveries, self.deferred_released,
            )?;
        }
        Ok(())
    }
}

/// Streaming trace replayer: feed it events (from any number of files, in
/// any interleaving — pairing is per site and per VT), then read the
/// per-site digests out of [`sites`](Replay::sites).
#[derive(Debug, Clone, Default)]
pub struct Replay {
    sites: BTreeMap<u32, SiteReplay>,
    events: u64,
}

impl Replay {
    /// An empty replayer.
    pub fn new() -> Self {
        Replay::default()
    }

    /// Total events observed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The per-site digests, keyed by site id.
    pub fn sites(&self) -> &BTreeMap<u32, SiteReplay> {
        &self.sites
    }

    /// Folds one event into the per-site digests.
    pub fn observe(&mut self, ev: &TraceEvent) {
        self.events += 1;
        let site = self.sites.entry(ev.site).or_default();
        match ev.kind {
            TraceKind::TxnBegin => {
                site.txns_begun += 1;
                if let Some(vt) = ev.vt {
                    site.open_txns.push((vt, ev.ts_ns));
                }
            }
            TraceKind::Commit => {
                site.commits += 1;
                if ev.n == Some(1) {
                    site.local_commits += 1;
                }
                if let Some(vt) = ev.vt {
                    if let Some(i) = site.open_txns.iter().position(|(k, _)| *k == vt) {
                        let (_, begin) = site.open_txns.swap_remove(i);
                        site.commit_lat_ns.record(ev.ts_ns.saturating_sub(begin));
                    }
                }
            }
            TraceKind::Abort | TraceKind::Rollback => {
                if ev.kind == TraceKind::Abort {
                    site.aborts += 1;
                } else {
                    site.rollbacks += 1;
                }
                if let Some(vt) = ev.vt {
                    if let Some(i) = site.open_txns.iter().position(|(k, _)| *k == vt) {
                        site.open_txns.swap_remove(i);
                    }
                }
            }
            TraceKind::ViewOptimistic => {
                site.views_optimistic += 1;
                if let Some(vt) = ev.vt {
                    site.open_views.push((vt, ev.ts_ns));
                }
            }
            TraceKind::ViewCommitted => {
                site.views_committed += 1;
                if let Some(vt) = ev.vt {
                    if let Some(i) = site.open_views.iter().position(|(k, _)| *k == vt) {
                        let (_, opt) = site.open_views.swap_remove(i);
                        site.view_lat_ns.record(ev.ts_ns.saturating_sub(opt));
                    }
                }
            }
            TraceKind::MsgSend => site.msgs_sent += 1,
            TraceKind::MsgRecv => site.msgs_received += 1,
            TraceKind::Reconnect => site.reconnects += 1,
            TraceKind::SiteFailed => site.sites_failed += 1,
            TraceKind::GcSweep => site.gc_discarded += ev.n.unwrap_or(0),
            TraceKind::WalAppend => {
                site.wal_appends += 1;
                site.wal_bytes += ev.n.unwrap_or(0);
            }
            TraceKind::RecoveryDone => {
                site.recoveries += 1;
                site.deferred_released += ev.n.unwrap_or(0);
            }
            _ => {}
        }
    }

    /// Parses and folds a whole JSONL document; blank lines are skipped.
    /// Returns the number of events folded, or the first parse failure
    /// with its 1-based line number.
    pub fn observe_jsonl(&mut self, text: &str) -> Result<u64, (usize, crate::ParseError)> {
        let mut n = 0;
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let ev = TraceEvent::from_jsonl(line).map_err(|e| (idx + 1, e))?;
            self.observe(&ev);
            n += 1;
        }
        Ok(n)
    }

    /// Like [`observe_jsonl`](Self::observe_jsonl), but a bad line does
    /// not abort the fold: every parseable line is folded and every
    /// failure is returned with its 1-based line number. A truncated or
    /// corrupted dump therefore still contributes its good events instead
    /// of silently dropping everything after the first bad line.
    pub fn observe_jsonl_lossy(&mut self, text: &str) -> (u64, Vec<(usize, crate::ParseError)>) {
        let mut n = 0;
        let mut bad = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match TraceEvent::from_jsonl(line) {
                Ok(ev) => {
                    self.observe(&ev);
                    n += 1;
                }
                Err(e) => bad.push((idx + 1, e)),
            }
        }
        (n, bad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_matches_live_sink_digest() {
        let sink = crate::TraceSink::enabled(1, 1024);
        sink.emit_at(100, TraceKind::TxnBegin, Some((5, 1)), None, None);
        sink.emit_at(600, TraceKind::Commit, Some((5, 1)), None, Some(1));
        sink.emit_at(700, TraceKind::ViewOptimistic, Some((9, 2)), None, None);
        sink.emit_at(900, TraceKind::ViewCommitted, Some((9, 2)), None, None);

        let mut jsonl = Vec::new();
        sink.write_jsonl(&mut jsonl).unwrap();
        let mut replay = Replay::new();
        let n = replay
            .observe_jsonl(std::str::from_utf8(&jsonl).unwrap())
            .unwrap();
        assert_eq!(n, 4);

        let live = sink.summary();
        let site = &replay.sites()[&1];
        assert_eq!(site.commit_lat_ns.summary(), live.commit_lat_ns);
        assert_eq!(site.view_lat_ns.summary(), live.view_lat_ns);
        assert_eq!(site.local_commits, 1);
    }

    #[test]
    fn multi_site_streams_stay_separate() {
        let mut replay = Replay::new();
        for site in [1u32, 2] {
            replay.observe(&TraceEvent {
                site,
                ts_ns: 10,
                kind: TraceKind::TxnBegin,
                vt: Some((1, site)),
                peer: None,
                n: None,
                span: None,
            });
        }
        replay.observe(&TraceEvent {
            site: 1,
            ts_ns: 50,
            kind: TraceKind::Commit,
            vt: Some((1, 1)),
            peer: None,
            n: Some(1),
            span: None,
        });
        assert_eq!(replay.sites().len(), 2);
        assert_eq!(replay.sites()[&1].commit_lat_ns.count(), 1);
        assert_eq!(replay.sites()[&2].commit_lat_ns.count(), 0);
    }

    #[test]
    fn observe_jsonl_reports_bad_line_number() {
        let mut replay = Replay::new();
        let text = "{\"site\":1,\"ts_ns\":1,\"kind\":\"Commit\"}\n\nnot json\n";
        let err = replay.observe_jsonl(text).unwrap_err();
        assert_eq!(err.0, 3);
    }

    #[test]
    fn durability_events_fold_into_wal_counters() {
        let mut replay = Replay::new();
        let ev = |kind, n| TraceEvent {
            site: 3,
            ts_ns: 1,
            kind,
            vt: None,
            peer: None,
            n,
            span: None,
        };
        replay.observe(&ev(TraceKind::RecoveryBegin, None));
        replay.observe(&ev(TraceKind::RecoveryDone, Some(2)));
        replay.observe(&ev(TraceKind::WalAppend, Some(64)));
        replay.observe(&ev(TraceKind::WalAppend, Some(32)));
        let site = &replay.sites()[&3];
        assert_eq!(site.recoveries, 1);
        assert_eq!(site.deferred_released, 2);
        assert_eq!(site.wal_appends, 2);
        assert_eq!(site.wal_bytes, 96);
        let text = format!("{site}");
        assert!(text.contains("wal: appends=2 bytes=96 recoveries=1 deferred-released=2"));
        // WAL-less digests keep their historical shape.
        assert!(!format!("{}", SiteReplay::default()).contains("wal:"));
    }

    #[test]
    fn rollback_rate_counts_per_begin() {
        let r = SiteReplay {
            txns_begun: 8,
            rollbacks: 2,
            ..SiteReplay::default()
        };
        assert!((r.rollback_rate() - 0.25).abs() < 1e-9);
        assert_eq!(SiteReplay::default().rollback_rate(), 0.0);
    }
}
