//! The structured trace event model and its JSONL codec.
//!
//! Events are deliberately flat and `Copy`: every field is a scalar or a
//! small `Option`, so emitting one costs a struct copy — no allocation, no
//! formatting — and the JSONL encoding is only produced when a trace is
//! exported. The hand-rolled codec keeps the crate dependency-free; the
//! grammar it accepts is exactly the grammar [`TraceEvent::to_jsonl`]
//! produces (strict field order is *not* required, but unknown keys are
//! rejected so schema drift fails loudly).

use std::fmt;

/// What happened. One variant per observable protocol/transport action.
///
/// The first nine kinds map to the paper's own vocabulary: transaction
/// lifecycle (§3.2 guesses and the commit/abort verdicts), view
/// notification (§4 optimistic delivery and its commitment), and §3.4
/// fail-stop handling. The remaining kinds instrument the substrate
/// beneath the protocol (frames, reconnects, GC sweeps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum TraceKind {
    /// A local transaction attempt started executing.
    TxnBegin,
    /// A transaction attempt finished optimistically; `n` carries the
    /// number of outstanding remote verdicts it is gambling on.
    Guess,
    /// A transaction committed. `n` is 1 for locally-originated
    /// transactions, 0 for remote ones applied here.
    Commit,
    /// A transaction aborted before its updates were published.
    Abort,
    /// A published (guessed) transaction was rolled back.
    Rollback,
    /// An optimistic view notification was delivered to the application.
    ViewOptimistic,
    /// A view notification was confirmed committed (optimistic protocol
    /// upgrading a prior delivery, or a pessimistic delivery).
    ViewCommitted,
    /// The transport wrote a frame; `peer` is the destination, `n` the
    /// payload size in bytes (or queue depth for queued substrates).
    MsgSend,
    /// The transport received a frame; `peer` is the origin, `n` the
    /// payload size in bytes.
    MsgRecv,
    /// The transport re-established a lost connection to `peer`.
    Reconnect,
    /// The failure detector declared `peer` fail-stopped.
    SiteFailed,
    /// A garbage-collection sweep discarded `n` history entries.
    GcSweep,
    /// A restarted site began its recovery/rejoin: `vt` is the recovered
    /// commit frontier, `peer` the chosen catch-up server, `n` how many
    /// peers were contacted.
    RecoveryBegin,
    /// Recovery finished (every rejoin ack received): `vt` is the
    /// committed frontier afterwards, `n` how many deferred gestures were
    /// released.
    RecoveryDone,
    /// A commit record was appended to the write-ahead log; `vt` is the
    /// committed transaction, `n` the number of object updates captured
    /// (engine capture) or the record's byte size (file append).
    WalAppend,
}

impl TraceKind {
    /// All kinds, in declaration order. Handy for table-driven tests.
    pub const ALL: [TraceKind; 15] = [
        TraceKind::TxnBegin,
        TraceKind::Guess,
        TraceKind::Commit,
        TraceKind::Abort,
        TraceKind::Rollback,
        TraceKind::ViewOptimistic,
        TraceKind::ViewCommitted,
        TraceKind::MsgSend,
        TraceKind::MsgRecv,
        TraceKind::Reconnect,
        TraceKind::SiteFailed,
        TraceKind::GcSweep,
        TraceKind::RecoveryBegin,
        TraceKind::RecoveryDone,
        TraceKind::WalAppend,
    ];

    /// The canonical wire name of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::TxnBegin => "TxnBegin",
            TraceKind::Guess => "Guess",
            TraceKind::Commit => "Commit",
            TraceKind::Abort => "Abort",
            TraceKind::Rollback => "Rollback",
            TraceKind::ViewOptimistic => "ViewOptimistic",
            TraceKind::ViewCommitted => "ViewCommitted",
            TraceKind::MsgSend => "MsgSend",
            TraceKind::MsgRecv => "MsgRecv",
            TraceKind::Reconnect => "Reconnect",
            TraceKind::SiteFailed => "SiteFailed",
            TraceKind::GcSweep => "GcSweep",
            TraceKind::RecoveryBegin => "RecoveryBegin",
            TraceKind::RecoveryDone => "RecoveryDone",
            TraceKind::WalAppend => "WalAppend",
        }
    }

    /// Parses a canonical wire name back into a kind.
    pub fn parse(s: &str) -> Option<TraceKind> {
        TraceKind::ALL.iter().copied().find(|k| k.as_str() == s)
    }
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured trace event.
///
/// `vt` is the virtual time `(lamport, site)` of the transaction or update
/// the event concerns, when there is one; `peer` the other site involved
/// (message/failure events); `n` a kind-specific magnitude (bytes, guessed
/// verdict count, GC'd entries). The struct stays scalar-only so the crate
/// needs no dependency on `decaf-vt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The site that emitted the event.
    pub site: u32,
    /// Monotonic timestamp in nanoseconds since the sink's epoch (wall
    /// transports) or the simulator's virtual clock (deterministic runs).
    pub ts_ns: u64,
    /// What happened.
    pub kind: TraceKind,
    /// Virtual time `(lamport, owning site)` of the subject, if any.
    pub vt: Option<(u64, u32)>,
    /// The other site involved, if any.
    pub peer: Option<u32>,
    /// Kind-specific magnitude, if any.
    pub n: Option<u64>,
    /// Causal trace context `(origin site, origin sequence, hop count)`
    /// carried by the wire envelope the event concerns. The `(origin,
    /// seq)` pair is the span key: every event across the mesh stamped
    /// with the same pair belongs to one end-to-end causal span, which is
    /// what lets the offline stitcher pair a `MsgSend` at one site with
    /// the matching `MsgRecv` at another.
    pub span: Option<(u32, u64, u32)>,
}

impl TraceEvent {
    /// Encodes the event as one JSONL line (no trailing newline).
    ///
    /// `None` fields are omitted:
    ///
    /// ```
    /// use decaf_trace::{TraceEvent, TraceKind};
    /// let ev = TraceEvent {
    ///     site: 1,
    ///     ts_ns: 42,
    ///     kind: TraceKind::Commit,
    ///     vt: Some((7, 2)),
    ///     peer: None,
    ///     n: Some(1),
    ///     span: Some((2, 7, 1)),
    /// };
    /// assert_eq!(
    ///     ev.to_jsonl(),
    ///     r#"{"site":1,"ts_ns":42,"kind":"Commit","vt":[7,2],"n":1,"span":[2,7,1]}"#
    /// );
    /// assert_eq!(TraceEvent::from_jsonl(&ev.to_jsonl()).unwrap(), ev);
    /// ```
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"site\":");
        push_u64(&mut s, self.site as u64);
        s.push_str(",\"ts_ns\":");
        push_u64(&mut s, self.ts_ns);
        s.push_str(",\"kind\":\"");
        s.push_str(self.kind.as_str());
        s.push('"');
        if let Some((lamport, site)) = self.vt {
            s.push_str(",\"vt\":[");
            push_u64(&mut s, lamport);
            s.push(',');
            push_u64(&mut s, site as u64);
            s.push(']');
        }
        if let Some(peer) = self.peer {
            s.push_str(",\"peer\":");
            push_u64(&mut s, peer as u64);
        }
        if let Some(n) = self.n {
            s.push_str(",\"n\":");
            push_u64(&mut s, n);
        }
        if let Some((origin, seq, hop)) = self.span {
            s.push_str(",\"span\":[");
            push_u64(&mut s, origin as u64);
            s.push(',');
            push_u64(&mut s, seq);
            s.push(',');
            push_u64(&mut s, hop as u64);
            s.push(']');
        }
        s.push('}');
        s
    }

    /// Decodes one JSONL line produced by [`to_jsonl`](TraceEvent::to_jsonl).
    ///
    /// The parser is strict: unknown keys, duplicate keys, missing
    /// mandatory fields (`site`, `ts_ns`, `kind`), or trailing garbage are
    /// all [`ParseError`]s. Whitespace between tokens is tolerated so
    /// hand-edited traces still load.
    pub fn from_jsonl(line: &str) -> Result<TraceEvent, ParseError> {
        let mut p = Parser::new(line);
        p.expect('{')?;
        let mut site: Option<u64> = None;
        let mut ts_ns: Option<u64> = None;
        let mut kind: Option<TraceKind> = None;
        let mut vt: Option<(u64, u32)> = None;
        let mut peer: Option<u64> = None;
        let mut n: Option<u64> = None;
        let mut span: Option<(u32, u64, u32)> = None;
        let mut first = true;
        loop {
            p.skip_ws();
            if p.eat('}') {
                break;
            }
            if !first {
                p.expect(',')?;
            }
            first = false;
            let key = p.string()?;
            p.expect(':')?;
            match key.as_str() {
                "site" if site.is_none() => site = Some(p.u64()?),
                "ts_ns" if ts_ns.is_none() => ts_ns = Some(p.u64()?),
                "kind" if kind.is_none() => {
                    let name = p.string()?;
                    kind = Some(TraceKind::parse(&name).ok_or(ParseError::UnknownKind)?);
                }
                "vt" if vt.is_none() => {
                    p.expect('[')?;
                    let lamport = p.u64()?;
                    p.expect(',')?;
                    let s = p.u64()?;
                    p.expect(']')?;
                    let s = u32::try_from(s).map_err(|_| ParseError::Overflow)?;
                    vt = Some((lamport, s));
                }
                "peer" if peer.is_none() => peer = Some(p.u64()?),
                "n" if n.is_none() => n = Some(p.u64()?),
                "span" if span.is_none() => {
                    p.expect('[')?;
                    let origin = p.u64()?;
                    p.expect(',')?;
                    let seq = p.u64()?;
                    p.expect(',')?;
                    let hop = p.u64()?;
                    p.expect(']')?;
                    let origin = u32::try_from(origin).map_err(|_| ParseError::Overflow)?;
                    let hop = u32::try_from(hop).map_err(|_| ParseError::Overflow)?;
                    span = Some((origin, seq, hop));
                }
                _ => return Err(ParseError::UnknownKey),
            }
        }
        p.skip_ws();
        if !p.done() {
            return Err(ParseError::TrailingGarbage);
        }
        let site = site.ok_or(ParseError::MissingField("site"))?;
        let site = u32::try_from(site).map_err(|_| ParseError::Overflow)?;
        let peer = match peer {
            Some(v) => Some(u32::try_from(v).map_err(|_| ParseError::Overflow)?),
            None => None,
        };
        Ok(TraceEvent {
            site,
            ts_ns: ts_ns.ok_or(ParseError::MissingField("ts_ns"))?,
            kind: kind.ok_or(ParseError::MissingField("kind"))?,
            vt,
            peer,
            n,
            span,
        })
    }
}

fn push_u64(s: &mut String, mut v: u64) {
    // Manual itoa keeps encoding allocation-free beyond the line buffer.
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    for &b in &buf[i..] {
        s.push(b as char);
    }
}

/// Why a JSONL line failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// A structural token (brace, colon, quote…) was missing or wrong.
    Syntax,
    /// A key outside the schema, or a key repeated.
    UnknownKey,
    /// The `kind` string names no [`TraceKind`].
    UnknownKind,
    /// A numeric field exceeded its width.
    Overflow,
    /// A mandatory field was absent.
    MissingField(&'static str),
    /// Valid JSON object followed by junk.
    TrailingGarbage,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax => write!(f, "malformed JSON syntax"),
            ParseError::UnknownKey => write!(f, "unknown or duplicate key"),
            ParseError::UnknownKind => write!(f, "unknown trace kind"),
            ParseError::Overflow => write!(f, "numeric field out of range"),
            ParseError::MissingField(k) => write!(f, "missing field {k:?}"),
            ParseError::TrailingGarbage => write!(f, "trailing garbage after object"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Minimal cursor over the line's bytes. JSON numbers here are always
/// unsigned decimal integers and strings never contain escapes, which is
/// all the [`TraceEvent`] schema can produce.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn done(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&(c as u8)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), ParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(ParseError::Syntax)
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect('"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| ParseError::Syntax)?;
                self.pos += 1;
                return Ok(s.to_string());
            }
            if b == b'\\' {
                return Err(ParseError::Syntax);
            }
            self.pos += 1;
        }
        Err(ParseError::Syntax)
    }

    fn u64(&mut self) -> Result<u64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        let mut v: u64 = 0;
        while let Some(&b) = self.bytes.get(self.pos) {
            if !b.is_ascii_digit() {
                break;
            }
            v = v
                .checked_mul(10)
                .and_then(|v| v.checked_add((b - b'0') as u64))
                .ok_or(ParseError::Overflow)?;
            self.pos += 1;
        }
        if self.pos == start {
            return Err(ParseError::Syntax);
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: TraceKind) -> TraceEvent {
        TraceEvent {
            site: 3,
            ts_ns: 1_234_567,
            kind,
            vt: Some((17, 2)),
            peer: Some(1),
            n: Some(512),
            span: Some((2, 17, 1)),
        }
    }

    #[test]
    fn round_trips_every_kind() {
        for kind in TraceKind::ALL {
            let e = ev(kind);
            assert_eq!(TraceEvent::from_jsonl(&e.to_jsonl()).unwrap(), e);
        }
    }

    #[test]
    fn round_trips_optional_field_combinations() {
        for bits in 0u8..16 {
            let e = TraceEvent {
                site: u32::MAX,
                ts_ns: u64::MAX,
                kind: TraceKind::MsgRecv,
                vt: (bits & 1 != 0).then_some((u64::MAX, u32::MAX)),
                peer: (bits & 2 != 0).then_some(0),
                n: (bits & 4 != 0).then_some(u64::MAX),
                span: (bits & 8 != 0).then_some((u32::MAX, u64::MAX, u32::MAX)),
            };
            assert_eq!(TraceEvent::from_jsonl(&e.to_jsonl()).unwrap(), e);
        }
    }

    #[test]
    fn tolerates_whitespace_and_reordering() {
        let line = r#" { "kind" : "GcSweep" , "n" : 9 , "ts_ns" : 5 , "site" : 1 } "#;
        let e = TraceEvent::from_jsonl(line).unwrap();
        assert_eq!(e.kind, TraceKind::GcSweep);
        assert_eq!((e.site, e.ts_ns, e.n), (1, 5, Some(9)));
        assert_eq!((e.vt, e.peer), (None, None));
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "{}",
            r#"{"site":1,"ts_ns":2}"#,
            r#"{"site":1,"ts_ns":2,"kind":"Nope"}"#,
            r#"{"site":1,"ts_ns":2,"kind":"Commit","bogus":3}"#,
            r#"{"site":1,"site":2,"ts_ns":2,"kind":"Commit"}"#,
            r#"{"site":4294967296,"ts_ns":2,"kind":"Commit"}"#,
            r#"{"site":1,"ts_ns":2,"kind":"Commit"}x"#,
            r#"{"site":1,"ts_ns":18446744073709551616,"kind":"Commit"}"#,
            r#"{"site":1,"ts_ns":2,"kind":"Commit","span":[1,2]}"#,
            r#"{"site":1,"ts_ns":2,"kind":"Commit","span":[4294967296,0,0]}"#,
            r#"{"site":1,"ts_ns":2,"kind":"Commit","span":[1,0,4294967296]}"#,
        ] {
            assert!(TraceEvent::from_jsonl(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn kind_names_are_unique_and_parse_back() {
        for (i, a) in TraceKind::ALL.iter().enumerate() {
            assert_eq!(TraceKind::parse(a.as_str()), Some(*a));
            for b in &TraceKind::ALL[i + 1..] {
                assert_ne!(a.as_str(), b.as_str());
            }
        }
        assert_eq!(TraceKind::parse("commit"), None);
    }
}
