//! Property-based tests for the trace layer: the JSONL codec is a
//! bijection on everything the encoder can produce, and the log2 histogram
//! buckets tile the `u64` range with no value falling between buckets.

use proptest::prelude::*;

use decaf_trace::{Histogram, TraceEvent, TraceKind, BUCKETS};

fn arb_kind() -> impl Strategy<Value = TraceKind> {
    prop::sample::select(TraceKind::ALL.to_vec())
}

fn arb_event() -> impl Strategy<Value = TraceEvent> {
    (
        any::<u32>(),
        any::<u64>(),
        arb_kind(),
        prop::option::of((any::<u64>(), any::<u32>())),
        prop::option::of(any::<u32>()),
        prop::option::of(any::<u64>()),
        prop::option::of((any::<u32>(), any::<u64>(), any::<u32>())),
    )
        .prop_map(|(site, ts_ns, kind, vt, peer, n, span)| TraceEvent {
            site,
            ts_ns,
            kind,
            vt,
            peer,
            n,
            span,
        })
}

proptest! {
    /// Encode → decode is the identity for arbitrary events, including
    /// extreme field values and every optional-field combination.
    #[test]
    fn jsonl_round_trips(ev in arb_event()) {
        let line = ev.to_jsonl();
        prop_assert_eq!(TraceEvent::from_jsonl(&line).unwrap(), ev);
        // The encoding is canonical: re-encoding the decoded event yields
        // byte-identical JSONL.
        prop_assert_eq!(TraceEvent::from_jsonl(&line).unwrap().to_jsonl(), line);
    }

    /// Corrupting any single byte of a valid line never yields a *different*
    /// event that silently round-trips to the corrupted line; it either
    /// fails to parse or decodes to something that re-encodes canonically.
    #[test]
    fn jsonl_corruption_is_detected_or_canonical(ev in arb_event(), pos in any::<prop::sample::Index>(), byte in 0u8..128) {
        let line = ev.to_jsonl();
        let mut bytes = line.clone().into_bytes();
        let i = pos.index(bytes.len());
        bytes[i] = byte;
        if let Ok(corrupt) = String::from_utf8(bytes) {
            if let Ok(decoded) = TraceEvent::from_jsonl(&corrupt) {
                // Anything the strict parser accepts must be expressible
                // canonically — no hidden parse states.
                prop_assert_eq!(
                    TraceEvent::from_jsonl(&decoded.to_jsonl()).unwrap(),
                    decoded
                );
            }
        }
    }

    /// Every `u64` lands in exactly one bucket, and that bucket's bounds
    /// contain it: no value may fall between buckets.
    #[test]
    fn histogram_buckets_leave_no_gaps(v in any::<u64>()) {
        let i = Histogram::bucket_index(v);
        prop_assert!(i < BUCKETS);
        let (lo, hi) = Histogram::bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "{v} outside bucket {i} = [{lo}, {hi}]");
        // ...and in no other bucket.
        for j in 0..BUCKETS {
            if j != i {
                let (lo_j, hi_j) = Histogram::bucket_bounds(j);
                prop_assert!(v < lo_j || v > hi_j);
            }
        }
    }

    /// Bucket boundaries are contiguous: hi(i) + 1 == lo(i+1) everywhere.
    #[test]
    fn histogram_bucket_bounds_are_contiguous(i in 0usize..BUCKETS - 1) {
        let (_, hi) = Histogram::bucket_bounds(i);
        let (lo_next, _) = Histogram::bucket_bounds(i + 1);
        prop_assert_eq!(hi + 1, lo_next);
    }

    /// Quantiles are monotone in q, bounded by the observed max, and the
    /// p100 bucket always contains the maximum sample.
    #[test]
    fn histogram_quantiles_are_monotone(samples in prop::collection::vec(any::<u64>(), 1..200)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let max = *samples.iter().max().unwrap();
        prop_assert_eq!(h.max(), max);
        let qs = [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0];
        let vals: Vec<u64> = qs.iter().map(|&q| h.quantile(q)).collect();
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert!(vals.iter().all(|&v| v <= max));
        let (lo, hi) = Histogram::bucket_bounds(Histogram::bucket_index(max));
        prop_assert!(lo <= h.quantile(1.0).min(hi));
    }
}
