//! Workload generation and simulation driving for the DECAF experiments.
//!
//! The paper's benchmarks (§5.2.2) drive two-party (and multi-party)
//! collaborations with rate-controlled update streams — blind writes (the
//! whiteboard/form scenario) and read-modify-writes — "under a range of
//! artificially induced network delays". This crate provides:
//!
//! * [`SimWorld`] — glue between sans-I/O [`Site`]s and the deterministic
//!   [`SimNet`] simulator, with timestamped engine-event capture;
//! * [`ArrivalProcess`] — seeded deterministic inter-arrival generators
//!   (fixed-rate and exponential/Poisson);
//! * [`LatencyTracker`] / [`NotificationTracker`] — commit and
//!   view-notification latency bookkeeping keyed by virtual time;
//! * ready-made transaction types ([`BlindWrite`], [`ReadModifyWrite`])
//!   matching the paper's benchmark workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use decaf_core::{
    wiring, EngineEvent, Envelope, ObjectName, Site, SiteConfig, TraceKind, Transaction, TxnCtx,
    TxnError,
};
use decaf_net::sim::{Event, LatencyModel, SimNet, SimTime};
use decaf_vt::{SiteId, VirtualTime};

/// A blind write setting an integer (the whiteboard/form workload: "in an
/// application in which all operations are blind writes... concurrency
/// control tests never fail", §5.1.2).
#[derive(Debug)]
pub struct BlindWrite {
    /// Target object (local to the originating site).
    pub object: ObjectName,
    /// Value to write.
    pub value: i64,
}

impl Transaction for BlindWrite {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        ctx.write_int(self.object, self.value)
    }
}

/// A read-modify-write incrementing an integer (the rollback-rate workload
/// of §5.2.2: "transactions involving both reads and writes").
#[derive(Debug)]
pub struct ReadModifyWrite {
    /// Target object (local to the originating site).
    pub object: ObjectName,
    /// Increment to apply.
    pub delta: i64,
}

impl Transaction for ReadModifyWrite {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        let v = ctx.read_int(self.object)?;
        ctx.write_int(self.object, v + self.delta)
    }
}

/// Deterministic, seeded inter-arrival process for user gestures.
#[derive(Debug, Clone)]
pub enum ArrivalProcess {
    /// Fixed period between events.
    Fixed {
        /// The period.
        period: SimTime,
    },
    /// Exponential (Poisson) inter-arrivals with the given mean, from a
    /// seeded RNG.
    Exponential {
        /// Mean inter-arrival time.
        mean: SimTime,
        /// RNG state.
        rng: SmallRng,
    },
}

impl ArrivalProcess {
    /// A fixed-rate process of `per_second` events per second.
    pub fn fixed_rate(per_second: f64) -> Self {
        ArrivalProcess::Fixed {
            period: SimTime::from_micros((1_000_000.0 / per_second) as u64),
        }
    }

    /// A Poisson process with mean rate `per_second`, seeded for
    /// reproducibility.
    pub fn poisson(per_second: f64, seed: u64) -> Self {
        ArrivalProcess::Exponential {
            mean: SimTime::from_micros((1_000_000.0 / per_second) as u64),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Draws the next inter-arrival delay.
    pub fn next_delay(&mut self) -> SimTime {
        match self {
            ArrivalProcess::Fixed { period } => *period,
            ArrivalProcess::Exponential { mean, rng } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                SimTime::from_micros((-u.ln() * mean.as_micros() as f64).max(1.0) as u64)
            }
        }
    }
}

/// An engine event stamped with its simulated occurrence time and site.
#[derive(Debug, Clone)]
pub struct StampedEvent {
    /// Simulated time of the event.
    pub at: SimTime,
    /// Site where it happened.
    pub site: SiteId,
    /// The event.
    pub event: EngineEvent,
}

/// What a [`SimWorld::step`] surfaced to the harness.
#[derive(Debug)]
pub enum WorldStep {
    /// A workload timer fired at `site` with the caller's `token`.
    Timer {
        /// The site whose timer fired.
        site: SiteId,
        /// Caller-chosen token.
        token: u64,
        /// Simulated time.
        at: SimTime,
    },
    /// A protocol message was delivered (already handled internally).
    Delivered {
        /// Simulated time.
        at: SimTime,
    },
    /// A site received a fail-stop notification (already handled).
    Failure {
        /// The observer site.
        site: SiteId,
        /// The failed site.
        failed: SiteId,
        /// Simulated time.
        at: SimTime,
    },
}

/// DECAF sites wired onto the deterministic simulator.
///
/// # Example
///
/// ```
/// use decaf_net::sim::{LatencyModel, SimTime};
/// use decaf_workload::{BlindWrite, SimWorld};
/// use decaf_vt::SiteId;
///
/// let mut world = SimWorld::new(2, LatencyModel::uniform(SimTime::from_millis(10)));
/// let objs = world.wire_int(0);
/// let obj = objs[1];
/// world.site(SiteId(2)).execute(Box::new(BlindWrite { object: obj, value: 9 }));
/// world.run_to_quiescence();
/// assert_eq!(world.site(SiteId(1)).read_int_committed(objs[0]), Some(9));
/// ```
#[derive(Debug)]
pub struct SimWorld {
    /// The simulated network.
    pub net: SimNet<Envelope>,
    /// The sites, keyed by id (ids are `1..=n`).
    pub sites: BTreeMap<SiteId, Site>,
    /// Timestamped engine events captured so far.
    pub log: Vec<StampedEvent>,
}

impl SimWorld {
    /// Creates `n` sites (ids `1..=n`) over the given latency model.
    pub fn new(n: u32, latency: LatencyModel) -> Self {
        Self::with_config(n, latency, SiteConfig::default())
    }

    /// Creates `n` sites with an explicit engine configuration.
    pub fn with_config(n: u32, latency: LatencyModel, config: SiteConfig) -> Self {
        let sites = (1..=n)
            .map(|i| (SiteId(i), Site::with_config(SiteId(i), config)))
            .collect();
        SimWorld {
            net: SimNet::new(latency),
            sites,
            log: Vec::new(),
        }
    }

    /// Creates one replicated integer across **all** sites, returning each
    /// site's local object name (index = site id - 1).
    pub fn wire_int(&mut self, initial: i64) -> Vec<ObjectName> {
        let objs: Vec<ObjectName> = self
            .sites
            .values_mut()
            .map(|s| s.create_int(initial))
            .collect();
        let mut parts: Vec<(&mut Site, ObjectName)> =
            self.sites.values_mut().zip(objs.iter().copied()).collect();
        wiring::wire_replicas(&mut parts);
        objs
    }

    /// Creates one replicated integer across a *subset* of sites.
    pub fn wire_int_subset(
        &mut self,
        members: &[SiteId],
        initial: i64,
    ) -> BTreeMap<SiteId, ObjectName> {
        let mut objs = BTreeMap::new();
        for id in members {
            let site = self.sites.get_mut(id).expect("unknown site");
            objs.insert(*id, site.create_int(initial));
        }
        let mut parts: Vec<(&mut Site, ObjectName)> = Vec::new();
        for (id, site) in self.sites.iter_mut() {
            if let Some(obj) = objs.get(id) {
                parts.push((site, *obj));
            }
        }
        wiring::wire_replicas(&mut parts);
        objs
    }

    /// The site with id `id`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    pub fn site(&mut self, id: SiteId) -> &mut Site {
        self.sites.get_mut(&id).expect("unknown site")
    }

    /// Schedules a workload timer.
    pub fn set_timer(&mut self, site: SiteId, delay: SimTime, token: u64) {
        self.net.set_timer(site, delay, token);
    }

    /// Fail-stops `site`, notifying all other sites.
    pub fn fail_site(&mut self, site: SiteId) {
        let observers: Vec<SiteId> = self.sites.keys().copied().filter(|s| *s != site).collect();
        self.net.fail_site(site, observers);
    }

    /// Collects every site's outbox into the network and its events into
    /// the log.
    ///
    /// Each departing envelope is traced as a span-carrying `MsgSend` on
    /// the sender's sink (a no-op for the default disabled sink), stamped
    /// with simulated time — the same contract as the
    /// [`SimTransport`](decaf_net::sim::SimTransport) facade, so traces
    /// from either driver stitch identically.
    pub fn flush(&mut self) {
        let now = self.net.now();
        for (id, site) in self.sites.iter_mut() {
            for env in site.drain_outbox() {
                let span = env.span.map(|s| s.as_trace());
                site.trace_sink().emit_at_span(
                    now.as_micros().saturating_mul(1_000),
                    TraceKind::MsgSend,
                    span.map(|(o, s, _)| (s, o)),
                    Some(env.to.0),
                    None,
                    span,
                );
                self.net.send(env.from, env.to, env);
            }
            for event in site.drain_events() {
                self.log.push(StampedEvent {
                    at: now,
                    site: *id,
                    event,
                });
            }
        }
    }

    /// Advances one simulated event. Returns `None` at quiescence.
    pub fn step(&mut self) -> Option<WorldStep> {
        self.flush();
        let event = self.net.step()?;
        let step = match event {
            Event::Deliver { at, from, to, msg } => {
                if let Some(site) = self.sites.get_mut(&to) {
                    let span = msg.span.map(|s| s.as_trace());
                    site.trace_sink().emit_at_span(
                        at.as_micros().saturating_mul(1_000),
                        TraceKind::MsgRecv,
                        span.map(|(o, s, _)| (s, o)),
                        Some(from.0),
                        None,
                        span,
                    );
                    site.handle_message(msg);
                }
                WorldStep::Delivered { at }
            }
            Event::Timer { at, site, token } => WorldStep::Timer { site, token, at },
            Event::SiteFailed {
                at,
                observer,
                failed,
            } => {
                if let Some(site) = self.sites.get_mut(&observer) {
                    site.notify_site_failed(failed);
                }
                WorldStep::Failure {
                    site: observer,
                    failed,
                    at,
                }
            }
        };
        self.flush();
        Some(step)
    }

    /// Runs until the network has no pending events (timers included).
    pub fn run_to_quiescence(&mut self) {
        while self.step().is_some() {}
    }

    /// Runs until simulated time passes `deadline` (events at later times
    /// stay queued) or quiescence.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            self.flush();
            match self.net.peek_time() {
                Some(t) if t <= deadline => {
                    self.step();
                }
                _ => return,
            }
        }
    }

    /// Simulated now.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// Sum of a per-site statistic over all sites.
    pub fn total_stats(&self) -> decaf_core::SiteStats {
        let mut out = decaf_core::SiteStats::default();
        for s in self.sites.values() {
            let st = s.stats();
            out.txns_started += st.txns_started;
            out.txns_committed += st.txns_committed;
            out.txns_aborted_conflict += st.txns_aborted_conflict;
            out.txns_aborted_user += st.txns_aborted_user;
            out.retries += st.retries;
            out.opt_notifications += st.opt_notifications;
            out.opt_commits += st.opt_commits;
            out.pess_notifications += st.pess_notifications;
            out.lost_updates += st.lost_updates;
            out.update_inconsistencies += st.update_inconsistencies;
            out.read_inconsistencies += st.read_inconsistencies;
            out.msgs_sent += st.msgs_sent;
            out.msgs_received += st.msgs_received;
            out.gc_discarded += st.gc_discarded;
            out.snapshot_reruns += st.snapshot_reruns;
        }
        out
    }
}

/// Tracks per-transaction latencies from origin execution to commit at
/// each site, in simulated time.
#[derive(Debug, Default)]
pub struct LatencyTracker {
    executed: BTreeMap<VirtualTime, SimTime>,
    /// Commit latency samples at the originating site (§5.1.1's "2t").
    pub at_origin: Vec<SimTime>,
    /// Commit latency samples at non-originating sites ("3t").
    pub at_remote: Vec<SimTime>,
}

impl LatencyTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds the world's stamped event log into the tracker.
    pub fn ingest(&mut self, log: &[StampedEvent]) {
        for e in log {
            if let EngineEvent::TxnExecuted { vt, .. } = e.event {
                self.executed.insert(vt, e.at);
            }
        }
        for e in log {
            if let EngineEvent::TxnCommitted { vt, local_origin } = e.event {
                if let Some(start) = self.executed.get(&vt) {
                    let lat = e.at.saturating_sub(*start);
                    if local_origin {
                        self.at_origin.push(lat);
                    } else {
                        self.at_remote.push(lat);
                    }
                }
            }
        }
    }

    /// Mean of a sample set in milliseconds.
    pub fn mean_ms(samples: &[SimTime]) -> f64 {
        if samples.is_empty() {
            return f64::NAN;
        }
        samples.iter().map(|s| s.as_millis_f64()).sum::<f64>() / samples.len() as f64
    }
}

/// Tracks view-notification latencies relative to the triggering
/// transaction's execution (§5.1.2).
#[derive(Debug, Default)]
pub struct NotificationTracker {
    executed: BTreeMap<VirtualTime, SimTime>,
    /// `(mode, latency)` samples keyed by snapshot VT.
    pub samples: Vec<(decaf_core::ViewMode, SimTime)>,
}

impl NotificationTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests a world log: view-update notifications are matched to the
    /// execution time of the transaction whose VT equals the snapshot ts.
    pub fn ingest(&mut self, log: &[StampedEvent]) {
        for e in log {
            if let EngineEvent::TxnExecuted { vt, .. } = e.event {
                self.executed.insert(vt, e.at);
            }
        }
        for e in log {
            if let EngineEvent::ViewUpdated { ts, mode, .. } = e.event {
                if let Some(start) = self.executed.get(&ts) {
                    self.samples.push((mode, e.at.saturating_sub(*start)));
                }
            }
        }
    }

    /// Mean latency in ms for one view mode.
    pub fn mean_ms(&self, mode: decaf_core::ViewMode) -> f64 {
        let xs: Vec<f64> = self
            .samples
            .iter()
            .filter(|(m, _)| *m == mode)
            .map(|(_, t)| t.as_millis_f64())
            .collect();
        if xs.is_empty() {
            f64::NAN
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decaf_core::ViewMode;

    #[test]
    fn fixed_rate_period() {
        let mut p = ArrivalProcess::fixed_rate(2.0);
        assert_eq!(p.next_delay(), SimTime::from_millis(500));
        assert_eq!(p.next_delay(), SimTime::from_millis(500));
    }

    #[test]
    fn poisson_is_deterministic_and_positive() {
        let mut p1 = ArrivalProcess::poisson(1.0, 42);
        let mut p2 = ArrivalProcess::poisson(1.0, 42);
        for _ in 0..50 {
            let d1 = p1.next_delay();
            let d2 = p2.next_delay();
            assert_eq!(d1, d2);
            assert!(d1 > SimTime::ZERO);
        }
        let mut p = ArrivalProcess::poisson(1.0, 7);
        let mean: f64 = (0..2000).map(|_| p.next_delay().as_secs_f64()).sum::<f64>() / 2000.0;
        assert!((0.8..1.2).contains(&mean), "poisson mean off: {mean}");
    }

    #[test]
    fn sim_world_two_sites_commit_in_2t_and_t() {
        // The analytic claim of §5.1.1, measured end to end.
        let t = SimTime::from_millis(10);
        let mut world = SimWorld::new(2, LatencyModel::uniform(t));
        let objs = world.wire_int(0);
        // Originate at the NON-primary site (site 2): delegation applies
        // (single remote primary), so the primary commits in t and the
        // originator in 2t.
        let obj = objs[1];
        world.site(SiteId(2)).execute(Box::new(ReadModifyWrite {
            object: obj,
            delta: 1,
        }));
        world.run_to_quiescence();
        let mut tracker = LatencyTracker::new();
        tracker.ingest(&world.log);
        assert_eq!(tracker.at_origin.len(), 1);
        assert_eq!(
            tracker.at_origin[0],
            SimTime::from_millis(20),
            "commit at originator in 2t"
        );
        assert_eq!(tracker.at_remote.len(), 1);
        assert_eq!(
            tracker.at_remote[0],
            SimTime::from_millis(10),
            "delegate (primary) commits in t"
        );
    }

    #[test]
    fn notification_tracker_measures_view_latency() {
        let t = SimTime::from_millis(10);
        let mut world = SimWorld::new(2, LatencyModel::uniform(t));
        let objs = world.wire_int(0);
        let watcher = decaf_core::RecordingView::new(vec![objs[0]]);
        world
            .site(SiteId(1))
            .attach_view(Box::new(watcher), &[objs[0]], ViewMode::Optimistic);
        let obj = objs[1];
        world.site(SiteId(2)).execute(Box::new(BlindWrite {
            object: obj,
            value: 5,
        }));
        world.run_to_quiescence();
        let mut nt = NotificationTracker::new();
        nt.ingest(&world.log);
        let opt = nt.mean_ms(ViewMode::Optimistic);
        assert_eq!(opt, 10.0, "optimistic notification at the replica in t");
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut world = SimWorld::new(2, LatencyModel::uniform(SimTime::from_millis(50)));
        let objs = world.wire_int(0);
        let obj = objs[0];
        world.site(SiteId(1)).execute(Box::new(BlindWrite {
            object: obj,
            value: 1,
        }));
        world.run_until(SimTime::from_millis(10));
        assert!(world.now() <= SimTime::from_millis(10));
        let o2 = objs[1];
        assert_eq!(world.site(SiteId(2)).read_int_current(o2), Some(0));
        world.run_to_quiescence();
        assert_eq!(world.site(SiteId(2)).read_int_committed(o2), Some(1));
    }

    #[test]
    fn wire_int_subset_limits_replication() {
        let mut world = SimWorld::new(3, LatencyModel::uniform(SimTime::from_millis(5)));
        let objs = world.wire_int_subset(&[SiteId(1), SiteId(2)], 0);
        let o1 = objs[&SiteId(1)];
        world.site(SiteId(1)).execute(Box::new(BlindWrite {
            object: o1,
            value: 4,
        }));
        world.run_to_quiescence();
        assert_eq!(
            world.site(SiteId(2)).read_int_committed(objs[&SiteId(2)]),
            Some(4)
        );
        assert_eq!(
            world.site(SiteId(1)).replication_graph(o1).unwrap().len(),
            2
        );
    }

    #[test]
    fn total_stats_aggregates() {
        let mut world = SimWorld::new(2, LatencyModel::uniform(SimTime::from_millis(1)));
        let objs = world.wire_int(0);
        let obj = objs[0];
        world.site(SiteId(1)).execute(Box::new(BlindWrite {
            object: obj,
            value: 2,
        }));
        world.run_to_quiescence();
        let total = world.total_stats();
        assert_eq!(total.txns_started, 1);
        assert_eq!(total.txns_committed, 1);
        assert!(total.msgs_sent >= 2);
    }
}

/// A guess-heavy transaction: reads *every* listed object before writing
/// the target, maximizing the RC/RL guesses a single gesture registers
/// (each stale or uncommitted read is one more guess to confirm).
#[derive(Debug)]
pub struct GuessHeavy {
    /// Objects read before the write (local to the originating site).
    pub reads: Vec<ObjectName>,
    /// Target of the write.
    pub write: ObjectName,
    /// Increment added to the sum of the reads.
    pub delta: i64,
}

impl Transaction for GuessHeavy {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        let mut sum = 0i64;
        for o in &self.reads {
            sum = sum.wrapping_add(ctx.read_int(*o)?);
        }
        let base = ctx.read_int(self.write)?;
        let _ = sum;
        ctx.write_int(self.write, base + self.delta)
    }
}

/// What a party submits on each gesture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnKind {
    /// Blind writes of a running counter value (whiteboard-style).
    BlindWrite,
    /// Read-modify-write increments (conflict-prone).
    ReadModifyWrite,
    /// Reads of every watched object before an increment
    /// (RC/RL/NC-guess-heavy; see [`GuessHeavy`]).
    GuessHeavy,
}

/// One gesture drawn from a [`TxnMix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixOp {
    /// Submit a transaction of this kind.
    Txn(TxnKind),
    /// (Re-)join the collaboration. Interpreted by drivers that model
    /// membership churn (the checker); the fixed-party [`RateWorkload`]
    /// treats it as a no-op gesture.
    Join,
    /// Leave the collaboration (same caveat as [`MixOp::Join`]).
    Leave,
}

/// Integer weights for the seeded transaction mix.
///
/// A weight of zero removes that gesture class from the draw; at least one
/// weight must be positive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixWeights {
    /// Read-modify-write increments.
    pub increment: u32,
    /// Blind writes.
    pub blind_write: u32,
    /// Guess-heavy multi-read transactions.
    pub guess_heavy: u32,
    /// Collaboration membership churn (alternating leave/join).
    pub join_leave: u32,
}

impl Default for MixWeights {
    /// A balanced mix: mostly conflict-prone increments, some blind
    /// writes, some guess-heavy reads, occasional membership churn.
    fn default() -> Self {
        MixWeights {
            increment: 4,
            blind_write: 3,
            guess_heavy: 2,
            join_leave: 1,
        }
    }
}

#[derive(Debug, Clone)]
enum MixInner {
    Single(TxnKind),
    Weighted {
        weights: MixWeights,
        rng: SmallRng,
        in_session: bool,
    },
}

/// A seeded random generator of workload gestures, shared by the e-series
/// benchmark bins and the `decaf-check` model checker.
///
/// [`TxnMix::single`] consumes **no** RNG draws, so single-kind workloads
/// (the paper's E3/E4 benchmarks) are bit-for-bit identical to the old
/// fixed-kind driver. [`TxnMix::seeded`] draws one weighted sample per
/// gesture from its own [`SmallRng`], independent of arrival-time RNGs.
#[derive(Debug, Clone)]
pub struct TxnMix {
    inner: MixInner,
}

impl TxnMix {
    /// A mix that always yields `kind` (no randomness).
    pub fn single(kind: TxnKind) -> Self {
        TxnMix {
            inner: MixInner::Single(kind),
        }
    }

    /// A weighted mix drawing from a dedicated RNG seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero.
    pub fn seeded(weights: MixWeights, seed: u64) -> Self {
        let total =
            weights.increment + weights.blind_write + weights.guess_heavy + weights.join_leave;
        assert!(total > 0, "TxnMix weights must not all be zero");
        TxnMix {
            inner: MixInner::Weighted {
                weights,
                rng: SmallRng::seed_from_u64(seed),
                in_session: true,
            },
        }
    }

    /// Draws the next gesture.
    pub fn next_op(&mut self) -> MixOp {
        match &mut self.inner {
            MixInner::Single(kind) => MixOp::Txn(*kind),
            MixInner::Weighted {
                weights,
                rng,
                in_session,
            } => {
                let total = weights.increment
                    + weights.blind_write
                    + weights.guess_heavy
                    + weights.join_leave;
                let mut draw = rng.gen_range(0..total);
                if draw < weights.increment {
                    return MixOp::Txn(TxnKind::ReadModifyWrite);
                }
                draw -= weights.increment;
                if draw < weights.blind_write {
                    return MixOp::Txn(TxnKind::BlindWrite);
                }
                draw -= weights.blind_write;
                if draw < weights.guess_heavy {
                    return MixOp::Txn(TxnKind::GuessHeavy);
                }
                // Membership churn alternates: a party in the session
                // leaves, a departed party rejoins.
                *in_session = !*in_session;
                if *in_session {
                    MixOp::Join
                } else {
                    MixOp::Leave
                }
            }
        }
    }
}

/// A rate-driven multi-party workload over one shared object: each listed
/// party submits transactions from its own seeded arrival process until the
/// simulated deadline, then the world drains to quiescence.
///
/// This is the driver behind the paper's §5.2.2 benchmarks (E3/E4): blind
/// writes for the whiteboard scenario, read-modify-writes for the conflict
/// study.
///
/// # Example
///
/// ```
/// use decaf_net::sim::{LatencyModel, SimTime};
/// use decaf_workload::{ArrivalProcess, RateWorkload, SimWorld, TxnKind, TxnMix};
/// use decaf_vt::SiteId;
///
/// let mut world = SimWorld::new(2, LatencyModel::uniform(SimTime::from_millis(50)));
/// let objs = world.wire_int(0);
/// RateWorkload {
///     parties: vec![
///         (SiteId(1), ArrivalProcess::fixed_rate(1.0), TxnMix::single(TxnKind::BlindWrite)),
///         (SiteId(2), ArrivalProcess::fixed_rate(1.0), TxnMix::single(TxnKind::ReadModifyWrite)),
///     ],
///     duration: SimTime::from_secs(5),
/// }
/// .run(&mut world, &objs);
/// assert!(world.total_stats().txns_committed > 5);
/// ```
#[derive(Debug)]
pub struct RateWorkload {
    /// `(site, arrivals, gesture mix)` per participating party.
    pub parties: Vec<(SiteId, ArrivalProcess, TxnMix)>,
    /// Simulated run length.
    pub duration: SimTime,
}

impl RateWorkload {
    /// Runs the workload on `world`; `objs` maps site index (id − 1) to
    /// that site's replica of the shared object. Returns the number of
    /// transactions submitted (membership gestures drawn from a weighted
    /// mix are not counted: this driver's party set is fixed).
    pub fn run(mut self, world: &mut SimWorld, objs: &[ObjectName]) -> u64 {
        for (site, arrivals, _) in self.parties.iter_mut() {
            let d = arrivals.next_delay();
            world.set_timer(*site, d, 0);
        }
        let mut submitted = 0u64;
        let mut marker = 0i64;
        while let Some(step) = world.step() {
            if world.now() > self.duration {
                break;
            }
            if let WorldStep::Timer { site, token: 0, .. } = step {
                let Some((_, arrivals, mix)) = self.parties.iter_mut().find(|(s, ..)| *s == site)
                else {
                    continue;
                };
                let obj = objs[(site.0 - 1) as usize];
                match mix.next_op() {
                    MixOp::Txn(TxnKind::BlindWrite) => {
                        submitted += 1;
                        marker += 1;
                        world.site(site).execute(Box::new(BlindWrite {
                            object: obj,
                            value: marker,
                        }));
                    }
                    MixOp::Txn(TxnKind::ReadModifyWrite) => {
                        submitted += 1;
                        world.site(site).execute(Box::new(ReadModifyWrite {
                            object: obj,
                            delta: 1,
                        }));
                    }
                    MixOp::Txn(TxnKind::GuessHeavy) => {
                        submitted += 1;
                        world.site(site).execute(Box::new(GuessHeavy {
                            reads: vec![obj],
                            write: obj,
                            delta: 1,
                        }));
                    }
                    // Membership churn needs a churn-aware driver; here the
                    // gesture is a no-op (the timer still re-arms below).
                    MixOp::Join | MixOp::Leave => {}
                }
                let d = arrivals.next_delay();
                world.set_timer(site, d, 0);
            }
        }
        world.run_to_quiescence();
        submitted
    }
}

#[cfg(test)]
mod scenario_tests {
    use super::*;

    #[test]
    fn txn_mix_single_is_constant_and_seedless() {
        let mut mix = TxnMix::single(TxnKind::BlindWrite);
        for _ in 0..16 {
            assert_eq!(mix.next_op(), MixOp::Txn(TxnKind::BlindWrite));
        }
    }

    #[test]
    fn txn_mix_seeded_is_deterministic_and_covers_all_classes() {
        let weights = MixWeights::default();
        let mut a = TxnMix::seeded(weights, 99);
        let mut b = TxnMix::seeded(weights, 99);
        let ops: Vec<MixOp> = (0..400).map(|_| a.next_op()).collect();
        let again: Vec<MixOp> = (0..400).map(|_| b.next_op()).collect();
        assert_eq!(ops, again, "same seed, same gesture stream");
        for want in [
            MixOp::Txn(TxnKind::ReadModifyWrite),
            MixOp::Txn(TxnKind::BlindWrite),
            MixOp::Txn(TxnKind::GuessHeavy),
            MixOp::Leave,
            MixOp::Join,
        ] {
            assert!(ops.contains(&want), "missing {want:?} in 400 draws");
        }
        // Membership gestures alternate leave/join starting from "in".
        let membership: Vec<MixOp> = ops
            .iter()
            .copied()
            .filter(|o| matches!(o, MixOp::Join | MixOp::Leave))
            .collect();
        for (i, op) in membership.iter().enumerate() {
            let want = if i % 2 == 0 {
                MixOp::Leave
            } else {
                MixOp::Join
            };
            assert_eq!(*op, want, "membership gesture {i}");
        }
    }

    #[test]
    fn guess_heavy_reads_all_objects_and_commits() {
        let mut world = SimWorld::new(2, LatencyModel::uniform(SimTime::from_millis(5)));
        let xs = world.wire_int(3);
        let ys = world.wire_int(10);
        world.site(SiteId(1)).execute(Box::new(GuessHeavy {
            reads: vec![xs[0], ys[0]],
            write: ys[0],
            delta: 1,
        }));
        world.run_to_quiescence();
        assert_eq!(world.site(SiteId(2)).read_int_committed(ys[1]), Some(11));
    }

    #[test]
    fn rate_workload_runs_and_converges() {
        let mut world = SimWorld::new(2, LatencyModel::uniform(SimTime::from_millis(25)));
        let objs = world.wire_int(0);
        let submitted = RateWorkload {
            parties: vec![
                (
                    SiteId(1),
                    ArrivalProcess::fixed_rate(2.0),
                    TxnMix::single(TxnKind::ReadModifyWrite),
                ),
                (
                    SiteId(2),
                    ArrivalProcess::fixed_rate(2.0),
                    TxnMix::single(TxnKind::ReadModifyWrite),
                ),
            ],
            duration: SimTime::from_secs(10),
        }
        .run(&mut world, &objs);
        assert!(submitted >= 38, "both parties gestured: {submitted}");
        let v1 = world.site(SiteId(1)).read_int_committed(objs[0]);
        let v2 = world.site(SiteId(2)).read_int_committed(objs[1]);
        assert_eq!(v1, v2, "replicas agree");
        assert_eq!(v1, Some(submitted as i64), "every increment counted");
    }

    #[test]
    fn blind_rate_workload_never_rolls_back() {
        let mut world = SimWorld::new(2, LatencyModel::uniform(SimTime::from_millis(25)));
        let objs = world.wire_int(0);
        RateWorkload {
            parties: vec![
                (
                    SiteId(1),
                    ArrivalProcess::poisson(3.0, 1),
                    TxnMix::single(TxnKind::BlindWrite),
                ),
                (
                    SiteId(2),
                    ArrivalProcess::poisson(3.0, 2),
                    TxnMix::single(TxnKind::BlindWrite),
                ),
            ],
            duration: SimTime::from_secs(10),
        }
        .run(&mut world, &objs);
        let totals = world.total_stats();
        assert_eq!(totals.txns_aborted_conflict, 0);
        assert_eq!(
            world.site(SiteId(1)).read_int_committed(objs[0]),
            world.site(SiteId(2)).read_int_committed(objs[1]),
        );
    }
}
