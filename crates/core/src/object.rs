//! Model objects: the replicated application state holders.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use decaf_vt::{History, ReservationSet, SiteId, VirtualTime};

use crate::collab::RelationId;
use crate::graph::{NodeRef, ReplicationGraph};
use crate::value::ScalarValue;

/// The name of a model object at its hosting site.
///
/// Names are allocated locally — `(creating site, per-site sequence)` — so
/// object creation needs no coordination. Replicas of the same logical
/// object at different sites have *different* names; the replication graph
/// records the correspondence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectName {
    /// Site that created the object.
    pub site: SiteId,
    /// Creation sequence number at that site.
    pub seq: u64,
}

impl ObjectName {
    /// Creates an object name.
    pub fn new(site: SiteId, seq: u64) -> Self {
        ObjectName { site, seq }
    }
}

impl fmt::Display for ObjectName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O{}.{}", self.site.0, self.seq)
    }
}

/// The kind of a model object (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectKind {
    /// Scalar: 64-bit integer.
    Int,
    /// Scalar: 64-bit real.
    Real,
    /// Scalar: string.
    Str,
    /// Composite: linearly indexed sequence of children.
    List,
    /// Composite: children indexed by a string key.
    Tuple,
    /// Association: tracks membership in collaborations (§2.1, §2.6).
    Association,
}

impl ObjectKind {
    /// Whether objects of this kind may embed children.
    pub fn is_composite(self) -> bool {
        matches!(self, ObjectKind::List | ObjectKind::Tuple)
    }
}

impl fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ObjectKind::Int => "int",
            ObjectKind::Real => "real",
            ObjectKind::Str => "string",
            ObjectKind::List => "list",
            ObjectKind::Tuple => "tuple",
            ObjectKind::Association => "association",
        };
        f.write_str(s)
    }
}

/// A recipe for creating a model object (possibly a whole subtree), used
/// when embedding new children into composites.
///
/// When a transaction embeds a child, the child must also be created at
/// every replica of the enclosing composite; the blueprint travels in the
/// propagated update so each site can instantiate its own copy.
///
/// # Example
///
/// ```
/// use decaf_core::Blueprint;
///
/// // A chat message: a tuple of author and text.
/// let msg = Blueprint::Tuple(vec![
///     ("author".into(), Blueprint::str("alice")),
///     ("text".into(), Blueprint::str("hello")),
/// ]);
/// # let _ = msg;
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Blueprint {
    /// An integer scalar with initial value.
    Int(i64),
    /// A real scalar with initial value.
    Real(f64),
    /// A string scalar with initial value.
    Str(String),
    /// A list composite with initial children.
    List(Vec<Blueprint>),
    /// A tuple composite with initial keyed children.
    Tuple(Vec<(String, Blueprint)>),
}

impl Blueprint {
    /// Convenience constructor for a string blueprint.
    pub fn str(s: impl Into<String>) -> Self {
        Blueprint::Str(s.into())
    }

    /// The object kind this blueprint instantiates.
    pub fn kind(&self) -> ObjectKind {
        match self {
            Blueprint::Int(_) => ObjectKind::Int,
            Blueprint::Real(_) => ObjectKind::Real,
            Blueprint::Str(_) => ObjectKind::Str,
            Blueprint::List(_) => ObjectKind::List,
            Blueprint::Tuple(_) => ObjectKind::Tuple,
        }
    }
}

/// One element of a list composite's materialized state: the embedded child
/// plus the VT tag of the transaction that embedded it.
///
/// The tag makes path names robust: "in addition to using the actual list
/// index in a path name, the propagation algorithm includes the VT at which
/// the object was updated as a tag to the index" (§3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct ListEntry {
    pub tag: VirtualTime,
    pub child: ObjectName,
}

/// A structural operation on a list, retained in the history so straggling
/// operations can be re-folded deterministically in VT order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) enum ListOp {
    /// Insert `child` at `index` (clamped; `usize::MAX` = append), tagged
    /// with the inserting transaction's VT.
    Insert {
        index: usize,
        tag: VirtualTime,
        child: ObjectName,
    },
    /// Remove the entry carrying `tag`.
    Remove { tag: VirtualTime },
    /// Replace the entire list state (join-value adoption via `SetTree`).
    ReplaceAll { entries: Vec<ListEntry> },
}

/// A structural operation on a tuple.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) enum TupleOp {
    Put {
        key: String,
        child: ObjectName,
    },
    Remove {
        key: String,
    },
    /// Replace the entire tuple state (join-value adoption via `SetTree`).
    ReplaceAll {
        entries: BTreeMap<String, ObjectName>,
    },
}

/// One replica relationship within an association object's value.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub(crate) struct Relation {
    /// The model objects that have joined, "together with their sites and
    /// object descriptions" (§2.1).
    pub members: std::collections::BTreeSet<NodeRef>,
    /// Human-readable description of the relationship's purpose.
    pub description: String,
}

/// The value of an association object: "a set of replica relationships that
/// are bundled together for some application purpose" (§2.1).
pub(crate) type AssocState = BTreeMap<RelationId, Relation>;

/// The value of a model object, stored in its history.
///
/// Composite entry sets and association state live behind [`Arc`]s:
/// history entries structurally share unchanged state, so snapshotting a
/// value, restoring it on rollback, and re-folding after a straggler are
/// O(touched entries) — a fold clones the underlying collection (via
/// [`Arc::make_mut`]) only at the moment it actually diverges. The `rc`
/// serde feature serializes the `Arc`s transparently (by content), so the
/// checkpoint format is unchanged.
///
/// `Assoc` relies on the derived map serialization (`RelationId`-keyed
/// `BTreeMap`), which every serde backend we target represents losslessly;
/// the wire type [`crate::message::AssocSnapshot`] round-trips through the
/// same representation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) enum ObjectValue {
    Scalar(ScalarValue),
    /// Materialized list state plus the ops (one transaction may perform
    /// several) that produced it, retained for re-folding when structural
    /// stragglers arrive.
    List {
        entries: Arc<Vec<ListEntry>>,
        ops: Vec<ListOp>,
    },
    Tuple {
        entries: Arc<BTreeMap<String, ObjectName>>,
        ops: Vec<TupleOp>,
    },
    Assoc(Arc<AssocState>),
}

impl ObjectValue {
    /// An empty list value (no entries, no pending ops).
    pub fn empty_list() -> Self {
        ObjectValue::List {
            entries: Arc::new(Vec::new()),
            ops: Vec::new(),
        }
    }

    /// An empty tuple value.
    pub fn empty_tuple() -> Self {
        ObjectValue::Tuple {
            entries: Arc::new(BTreeMap::new()),
            ops: Vec::new(),
        }
    }

    /// An empty association value.
    pub fn empty_assoc() -> Self {
        ObjectValue::Assoc(Arc::new(AssocState::new()))
    }

    pub fn as_scalar(&self) -> Option<&ScalarValue> {
        match self {
            ObjectValue::Scalar(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_list(&self) -> Option<&[ListEntry]> {
        match self {
            ObjectValue::List { entries, .. } => Some(entries.as_slice()),
            _ => None,
        }
    }

    pub fn as_tuple(&self) -> Option<&BTreeMap<String, ObjectName>> {
        match self {
            ObjectValue::Tuple { entries, .. } => Some(entries),
            _ => None,
        }
    }

    pub fn as_assoc(&self) -> Option<&AssocState> {
        match self {
            ObjectValue::Assoc(a) => Some(a),
            _ => None,
        }
    }

    /// The list entries as a shared handle (CoW hot path: histories hand
    /// these around without copying the underlying vector).
    pub fn list_arc(&self) -> Option<Arc<Vec<ListEntry>>> {
        match self {
            ObjectValue::List { entries, .. } => Some(Arc::clone(entries)),
            _ => None,
        }
    }

    /// The tuple entries as a shared handle (CoW hot path).
    pub fn tuple_arc(&self) -> Option<Arc<BTreeMap<String, ObjectName>>> {
        match self {
            ObjectValue::Tuple { entries, .. } => Some(Arc::clone(entries)),
            _ => None,
        }
    }
}

/// How updates to this object reach its replicas (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub(crate) enum PropagationMode {
    /// The object holds its own replication graph and communicates directly
    /// with its replicas. Roots are always direct; embedded objects switch
    /// to direct when they collaborate independently of their root.
    #[default]
    Direct,
    /// The object inherits the replication graph of its enclosing root;
    /// updates travel as (root, VT-tagged path) pairs.
    Indirect,
}

/// A model object as stored at one site.
#[derive(Debug, Clone)]
pub(crate) struct ModelObject {
    pub name: ObjectName,
    pub kind: ObjectKind,
    /// Value history (paper §3: "a set of pairs of values and VTs").
    pub values: History<ObjectValue>,
    /// Replication graph history ("a similarly indexed set of replication
    /// graphs"). Meaningful only for `Direct` objects.
    pub graphs: History<ReplicationGraph>,
    /// Write-free reservations held when this site is the object's primary.
    pub value_reservations: ReservationSet,
    /// Reservations against replication-graph changes.
    pub graph_reservations: ReservationSet,
    /// The enclosing composite, if this object is embedded.
    pub parent: Option<ObjectName>,
    pub propagation: PropagationMode,
    /// Registry of every embedding this composite has applied:
    /// `tag → child`. Survives removals and history GC so straggling
    /// indirect updates can always resolve their VT-tagged paths (§3.2.1);
    /// entries for *aborted* embeddings are withdrawn on purge. Grows with
    /// the number of embeddings ever made — the same asymptotics as the
    /// orphaned child objects themselves.
    pub embeddings: BTreeMap<VirtualTime, ObjectName>,
}

impl ModelObject {
    pub fn new(name: ObjectName, kind: ObjectKind) -> Self {
        ModelObject {
            name,
            kind,
            values: History::new(),
            graphs: History::new(),
            value_reservations: ReservationSet::new(),
            graph_reservations: ReservationSet::new(),
            parent: None,
            propagation: PropagationMode::Direct,
            embeddings: BTreeMap::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_name_display_and_order() {
        let a = ObjectName::new(SiteId(1), 2);
        let b = ObjectName::new(SiteId(1), 3);
        let c = ObjectName::new(SiteId(2), 0);
        assert_eq!(a.to_string(), "O1.2");
        assert!(a < b && b < c);
    }

    #[test]
    fn blueprint_kinds() {
        assert_eq!(Blueprint::Int(1).kind(), ObjectKind::Int);
        assert_eq!(Blueprint::Real(1.0).kind(), ObjectKind::Real);
        assert_eq!(Blueprint::str("x").kind(), ObjectKind::Str);
        assert_eq!(Blueprint::List(vec![]).kind(), ObjectKind::List);
        assert_eq!(Blueprint::Tuple(vec![]).kind(), ObjectKind::Tuple);
        assert!(ObjectKind::List.is_composite());
        assert!(!ObjectKind::Int.is_composite());
    }

    #[test]
    fn kind_display() {
        assert_eq!(ObjectKind::Association.to_string(), "association");
        assert_eq!(ObjectKind::Int.to_string(), "int");
    }

    #[test]
    fn object_value_accessors() {
        let s = ObjectValue::Scalar(ScalarValue::Int(3));
        assert!(s.as_scalar().is_some());
        assert!(s.as_list().is_none());
        let l = ObjectValue::empty_list();
        assert!(l.as_list().is_some());
        assert!(l.as_tuple().is_none());
        assert!(l.list_arc().is_some());
        assert!(l.tuple_arc().is_none());
        let t = ObjectValue::empty_tuple();
        assert!(t.as_tuple().is_some());
        assert!(t.tuple_arc().is_some());
        let a = ObjectValue::empty_assoc();
        assert!(a.as_assoc().is_some());
        assert!(a.as_scalar().is_none());
    }
}
