//! The DECAF wire protocol.
//!
//! All inter-site communication is expressed as [`Message`] values inside
//! [`Envelope`]s. The protocol is exactly the paper's (§3, §4):
//!
//! * [`Message::Txn`] carries a transaction's WRITEs and CONFIRM-READ
//!   requests to one destination site (one message per relevant site);
//! * [`Message::Confirm`]/[`Message::Deny`] are primary-site verdicts on
//!   RL/NC guesses, routed back to the requester;
//! * [`Message::Commit`]/[`Message::Abort`] are the originator's (or
//!   delegate's) summary decision broadcast to all affected sites;
//! * [`Message::SnapshotConfirm`] carries a view snapshot's RL guesses to
//!   primary copies (§4);
//! * the `Join*`/`GraphUpdate` messages implement dynamic collaboration
//!   establishment (§3.3);
//! * the `Outcome*`/`Graph*` recovery messages implement client-failure
//!   handling (§3.4).

use serde::{Deserialize, Serialize};

use decaf_vt::{SiteId, VirtualTime};

use crate::collab::RelationId;
use crate::graph::{NodeRef, ReplicationGraph};
use crate::object::{AssocState, Blueprint, ObjectName};
use crate::txn::TxnOutcome;
use crate::value::ScalarValue;

/// Causal trace context stamped on outbound envelopes: which site's
/// gesture this message ultimately serves, and how far it has traveled.
///
/// Pure observability — the protocol never consults it. The
/// `(origin, seq)` pair is the *span key*: every message, commit, and
/// view event across the mesh stamped with the same pair belongs to one
/// end-to-end causal span, which is what lets `decaf-trace-stitch` pair a
/// `MsgSend` at one site with the matching `MsgRecv` at another and
/// reconstruct gesture → local commit → remote commits → view notified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SpanCtx {
    /// The site owning the subject virtual time (where the gesture ran).
    pub origin: SiteId,
    /// The subject VT's Lamport component — origin-local sequence number.
    pub seq: u64,
    /// 0 when the sender originated the subject, incremented each time a
    /// site relays traffic about somebody else's subject.
    pub hop: u32,
}

impl SpanCtx {
    /// The scalar triple `(origin, seq, hop)` the trace layer records.
    pub fn as_trace(&self) -> (u32, u64, u32) {
        (self.origin.0, self.seq, self.hop)
    }
}

/// A message together with its source and destination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// Sending site.
    pub from: SiteId,
    /// Destination site.
    pub to: SiteId,
    /// The sender's Lamport clock at send time; the receiver witnesses it
    /// so local virtual times dominate everything causally prior.
    pub clock: VirtualTime,
    /// Payload.
    pub msg: Message,
    /// Causal trace context, when the payload has a VT subject. Absent on
    /// the wire for span-less messages (heartbeats, graph acks) and when
    /// talking to pre-span peers — old decoders skip the unknown field,
    /// new decoders default it, so mixed fleets interoperate.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub span: Option<SpanCtx>,
}

impl decaf_trace::SpanCarrier for Envelope {
    fn trace_span(&self) -> Option<(u32, u64, u32)> {
        self.span.as_ref().map(SpanCtx::as_trace)
    }
}

/// One element of a composite path.
///
/// Paths name objects embedded in composites. List elements carry the VT at
/// which the child was embedded as a *tag*, because raw indices are fragile
/// under concurrent structural changes (§3.2.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PathElem {
    /// A list position: index hint plus the embedding transaction's VT tag
    /// (the tag is authoritative; the index accelerates lookup).
    Index {
        /// Position at the originating site when the path was formed.
        index: usize,
        /// VT of the transaction that embedded the child.
        tag: VirtualTime,
    },
    /// A tuple key.
    Key(String),
}

/// A path from a composite root down to an embedded object, e.g. the
/// paper's `A[103][John][12]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Path(pub Vec<PathElem>);

impl Path {
    /// The empty path (the root itself).
    pub fn root() -> Self {
        Path(Vec::new())
    }

    /// Whether this path addresses the root itself.
    pub fn is_root(&self) -> bool {
        self.0.is_empty()
    }
}

impl std::fmt::Display for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for e in &self.0 {
            match e {
                PathElem::Index { index, tag } => write!(f, "[{index}#{tag}]")?,
                PathElem::Key(k) => write!(f, "[{k}]")?,
            }
        }
        Ok(())
    }
}

/// How an update or read addresses an object at the destination site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ObjectAddr {
    /// The object is directly replicated: addressed by its local name at
    /// the destination (taken from the replication graph).
    Direct(ObjectName),
    /// The object is embedded in a composite and uses indirect propagation:
    /// addressed by the destination's local name for the enclosing direct
    /// root, plus the VT-tagged path (§3.2).
    Indirect {
        /// Destination-local name of the enclosing direct-mode object.
        root: ObjectName,
        /// Path from that root to the target.
        path: Path,
    },
}

/// A deep snapshot of an object's (sub)tree, used when a joining object
/// adopts the value of the relationship it joins (§3.3) and when replicas
/// instantiate embedded children.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TreeSnapshot {
    /// A scalar value.
    Scalar(ScalarValue),
    /// A list with each child's embedding tag preserved (tags must survive
    /// the copy so later indirect paths resolve at the new replica).
    List(Vec<(VirtualTime, TreeSnapshot)>),
    /// A tuple of keyed children.
    Tuple(Vec<(String, TreeSnapshot)>),
    /// An association object's relationships.
    Assoc(AssocSnapshot),
}

/// Opaque wire form of an association object's value.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AssocSnapshot(pub(crate) AssocState);

impl AssocSnapshot {
    /// Flattens the snapshot into `(relation, members, description)` rows,
    /// ascending by relation id. Exposed so transports can serialize
    /// association state without serde (binary wire codec v2).
    pub fn wire_parts(&self) -> Vec<(RelationId, Vec<NodeRef>, String)> {
        self.0
            .iter()
            .map(|(id, rel)| {
                (
                    *id,
                    rel.members.iter().copied().collect(),
                    rel.description.clone(),
                )
            })
            .collect()
    }

    /// Rebuilds a snapshot from [`wire_parts`](Self::wire_parts) rows.
    pub fn from_wire_parts(
        parts: impl IntoIterator<Item = (RelationId, Vec<NodeRef>, String)>,
    ) -> Self {
        let state: AssocState = parts
            .into_iter()
            .map(|(id, members, description)| {
                (
                    id,
                    crate::object::Relation {
                        members: members.into_iter().collect(),
                        description,
                    },
                )
            })
            .collect();
        AssocSnapshot(state)
    }
}

/// The state-update operation carried by a propagated write.
///
/// "For scalar objects it suffices to distribute the final value; for
/// composite objects it is usually efficient to distribute the change as an
/// increment" (§3.1 fn. 1) — hence structural ops rather than whole values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireOp {
    /// Overwrite a scalar's value.
    SetScalar(ScalarValue),
    /// Insert a child into a list at `index` (clamped; `usize::MAX`
    /// appends), tagged with the writing transaction's VT.
    ListInsert {
        /// Position hint at the originator.
        index: usize,
        /// The new child's subtree.
        child: Blueprint,
    },
    /// Remove the list entry whose embedding tag is `tag`.
    ListRemove {
        /// Tag of the entry to remove.
        tag: VirtualTime,
    },
    /// Put a keyed child into a tuple (replacing any existing child).
    TuplePut {
        /// The key.
        key: String,
        /// The new child's subtree.
        child: Blueprint,
    },
    /// Remove a tuple's keyed child.
    TupleRemove {
        /// The key.
        key: String,
    },
    /// Overwrite an association object's value.
    SetAssoc(AssocSnapshot),
    /// Overwrite an object's entire subtree (join-value adoption).
    SetTree(TreeSnapshot),
}

/// One object update within a [`TxnPropagate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateItem {
    /// The target object, addressed for the destination site.
    pub addr: ObjectAddr,
    /// `tR`: VT of the value the transaction read before writing (equals
    /// the transaction's own VT for blind writes).
    pub t_r: VirtualTime,
    /// `tG`: VT at which the object's replication graph was last changed,
    /// as observed by the originator.
    pub t_g: VirtualTime,
    /// The state change to apply.
    pub op: WireOp,
    /// Whether the destination hosts this object's primary copy and must
    /// run the RL and NC guess checks.
    pub needs_check: bool,
}

/// One read-confirmation request within a [`TxnPropagate`] or
/// [`Message::SnapshotConfirm`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReadItem {
    /// The read object, addressed for the destination (primary) site.
    pub addr: ObjectAddr,
    /// `tR`: VT of the value read — the RL guess asks that `(t_r, hi)` be
    /// write-free, where `hi` defaults to the requesting subject's VT.
    pub t_r: VirtualTime,
    /// `tG`: VT of the replication graph read.
    pub t_g: VirtualTime,
    /// Explicit upper bound of the guessed interval; `None` means the
    /// subject's VT. View snapshots use this when a transaction's own
    /// reservation already covers the tail of the interval (§5.1.2).
    #[serde(default)]
    pub hi: Option<VirtualTime>,
}

/// Delegate-commit instruction (§3.1): when a transaction has exactly one
/// remote primary site and no RC guesses, the originator delegates the
/// commit decision to that primary, which then broadcasts COMMIT/ABORT
/// itself, saving one message latency.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Delegate {
    /// Every site (other than the delegate) that must receive the summary
    /// commit or abort — "the site identifiers of all the remote sites
    /// affected by the transaction".
    pub notify: Vec<SiteId>,
}

/// A transaction's propagation message to one destination site: its WRITEs
/// for objects replicated there, plus CONFIRM-READ requests for objects
/// whose primary copy lives there.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TxnPropagate {
    /// The transaction's VT (its global identity).
    pub txn: VirtualTime,
    /// Originating site (where confirmations are sent).
    pub origin: SiteId,
    /// Updates to apply at the destination.
    pub updates: Vec<UpdateItem>,
    /// Read confirmations the destination (as primary) must check.
    pub reads: Vec<ReadItem>,
    /// Present when the destination is delegated the commit decision.
    pub delegate: Option<Delegate>,
}

impl TxnPropagate {
    /// Whether the destination must reply with a Confirm/Deny verdict.
    pub fn needs_reply(&self) -> bool {
        !self.reads.is_empty() || self.updates.iter().any(|u| u.needs_check)
    }
}

/// What kind of actor a Confirm/Deny subject identifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SubjectKind {
    /// A transaction (deny ⇒ abort + automatic retry).
    Txn,
    /// A view snapshot (deny ⇒ wait for the straggler to trigger a rerun).
    Snapshot,
}

/// A DECAF protocol message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)] // field-level docs live on the payload structs
pub enum Message {
    /// WRITE + CONFIRM-READ propagation of one transaction to one site.
    Txn(TxnPropagate),
    /// A view snapshot's CONFIRM-READ requests to a primary site (§4).
    SnapshotConfirm {
        /// Unique VT identifying the snapshot (reply routing + reservation
        /// ownership).
        subject: VirtualTime,
        /// Site hosting the view proxy.
        origin: SiteId,
        /// The intervals to verify and reserve.
        reads: Vec<ReadItem>,
    },
    /// Primary-site verdict: all checks in the referenced request passed.
    Confirm {
        /// The requesting transaction's or snapshot's VT.
        subject: VirtualTime,
        /// What the subject is.
        kind: SubjectKind,
    },
    /// Primary-site verdict: some check failed.
    Deny {
        /// The requesting transaction's or snapshot's VT.
        subject: VirtualTime,
        /// What the subject is.
        kind: SubjectKind,
    },
    /// Summary commit of the transaction at `txn` (from originator or
    /// delegate).
    Commit {
        /// The committed transaction.
        txn: VirtualTime,
    },
    /// Summary abort of the transaction at `txn`.
    Abort {
        /// The aborted transaction.
        txn: VirtualTime,
    },

    // ---- dynamic collaboration establishment (§3.3) ----
    /// "A remote call is made to B, sending it A's replication graph gA."
    JoinRequest {
        /// VT of the joining transaction at A's site.
        txn: VirtualTime,
        /// A's site.
        origin: SiteId,
        /// The relationship being joined.
        relation: RelationId,
        /// The joining object.
        a_node: NodeRef,
        /// The joining object's current replication graph.
        a_graph: ReplicationGraph,
        /// The contacted member object at the destination (from the
        /// invitation).
        b_object: ObjectName,
        /// The inviter's association object (for membership bookkeeping),
        /// if the destination hosts it.
        assoc_object: Option<ObjectName>,
    },
    /// B's return value: gB, B's value, and the merged graph.
    JoinReply {
        /// VT of the joining transaction.
        txn: VirtualTime,
        /// Whether the join was accepted (authorization may refuse, §2.6).
        ok: bool,
        /// The contacted object.
        b_node: NodeRef,
        /// The merged replication graph gA ∪ gB (+ the new edge).
        merged: ReplicationGraph,
        /// B's current value, for adoption by A and A's replicas.
        b_value: Option<TreeSnapshot>,
        /// VT of the transaction that wrote B's current value.
        b_value_vt: VirtualTime,
        /// If false, A must additionally wait for the transaction at
        /// `b_value_vt` to commit (an RC guess, §3.3).
        b_value_committed: bool,
        /// How many primary confirmations B's side will route to A (gB's
        /// primary, plus the association's primary if updated).
        confirms_expected: u32,
        /// Additional sites (e.g. association replicas) that must receive
        /// the summary COMMIT/ABORT.
        extra_affected: Vec<SiteId>,
    },
    /// Propagation of a changed replication graph to a replica; the graph's
    /// primary site checks and confirms it.
    GraphUpdate {
        /// VT of the graph-changing transaction.
        txn: VirtualTime,
        /// Site to send the verdict to.
        origin: SiteId,
        /// Destination-local name of the affected object.
        target: ObjectName,
        /// The new replication graph.
        graph: ReplicationGraph,
        /// `tG` the originator observed (RL guess interval lower bound).
        t_g: VirtualTime,
        /// Whether the destination is the graph's primary and must check.
        needs_check: bool,
        /// The value the joining side adopts (present only on join-driven
        /// updates).
        adopt_value: Option<TreeSnapshot>,
        /// VT at which the adopted value was originally written at the
        /// contacted side — the adoption is applied at this VT so the
        /// joiner's subsequent read intervals line up with the primary's
        /// history.
        #[serde(default)]
        adopt_value_vt: VirtualTime,
    },

    // ---- client-failure recovery (§3.4) ----
    /// "The remaining sites determine if any of them received a commit
    /// message regarding the transaction."
    OutcomeQuery {
        /// The in-doubt transaction.
        txn: VirtualTime,
        /// Who is asking (and will decide).
        asker: SiteId,
    },
    /// Reply to [`Message::OutcomeQuery`].
    OutcomeReport {
        /// The in-doubt transaction.
        txn: VirtualTime,
        /// This site's knowledge of the outcome, if any.
        outcome: Option<TxnOutcome>,
    },
    /// The asker's final decision, broadcast to the survivors.
    OutcomeDecision {
        /// The in-doubt transaction.
        txn: VirtualTime,
        /// The decided outcome.
        outcome: TxnOutcome,
    },
    /// Consensus proposal to repair a replication graph whose primary site
    /// failed (§3.4): apply `graph` at the common virtual time `at`.
    GraphPropose {
        /// Consensus instance (unique per coordinator).
        ballot: u64,
        /// The coordinating (lowest surviving) site.
        coordinator: SiteId,
        /// Destination-local name of the affected object.
        target: ObjectName,
        /// Coordinator-local name (echoed in acks to key the instance).
        coord_target: ObjectName,
        /// The repaired graph.
        graph: ReplicationGraph,
        /// Common VT at which all survivors apply the repair.
        at: VirtualTime,
    },
    /// A survivor's acknowledgement of [`Message::GraphPropose`].
    GraphAck {
        /// The consensus instance.
        ballot: u64,
        /// Echo of `coord_target`.
        coord_target: ObjectName,
    },
    /// Lightweight clock announcement from an otherwise-silent replica, so
    /// peers' garbage-collection horizons keep advancing (the analogue of
    /// Time Warp's fossil-collection acknowledgements). Carries no payload:
    /// the envelope clock is the information.
    Heartbeat,
    /// Coordinator's instruction to apply the proposed repair.
    GraphApply {
        /// The consensus instance.
        ballot: u64,
        /// Destination-local name of the affected object.
        target: ObjectName,
        /// The repaired graph.
        graph: ReplicationGraph,
        /// Common VT at which to apply it.
        at: VirtualTime,
    },
    /// A restarted site announcing its recovered commit frontier (§3.4's
    /// rejoin, made durable): "I am back; here is everything I know is
    /// committed — vote-pending work of mine is lost, and I need the
    /// committed suffix I missed."
    RejoinRequest {
        /// The rejoiner's highest committed VT after WAL replay.
        frontier: VirtualTime,
        /// Every committed VT the rejoiner knows, so the catch-up server
        /// can stream exactly the gap (the frontier alone is not a sound
        /// filter: a commit with a *lower* VT may still have been in
        /// flight at crash time).
        have: Vec<VirtualTime>,
        /// True at exactly one live peer — the one asked to stream the
        /// missed committed suffix back as a [`Message::CatchUp`].
        serve: bool,
    },
    /// A live peer's answer to [`Message::RejoinRequest`]: its own
    /// committed frontier and VT set, so the rejoiner can stream *its*
    /// side of the gap back (commits it durably logged whose broadcast the
    /// crash swallowed).
    RejoinAck {
        /// The responder's highest committed VT.
        frontier: VirtualTime,
        /// Every committed VT the responder knows.
        have: Vec<VirtualTime>,
    },
    /// A batch of already-committed transactions streamed for catch-up.
    /// Each entry is a plain [`TxnPropagate`] (no reads, no delegate, no
    /// reply expected) whose updates the receiver applies pre-decided.
    CatchUp {
        /// The missed commits, in VT order.
        commits: Vec<TxnPropagate>,
        /// True when sent *by* a rejoiner completing its return: after
        /// applying `commits`, the receiver aborts any still-undecided
        /// remote transaction originated by the sender — the crash lost
        /// that work, and parked snapshot checks must stop waiting on it.
        rejoined: bool,
    },
}

impl Message {
    /// The virtual time this message witnesses (for Lamport clock
    /// advancement on receipt), if it carries one.
    pub fn witnessed_vt(&self) -> Option<VirtualTime> {
        match self {
            Message::Txn(p) => Some(p.txn),
            Message::SnapshotConfirm { subject, .. }
            | Message::Confirm { subject, .. }
            | Message::Deny { subject, .. } => Some(*subject),
            Message::Commit { txn }
            | Message::Abort { txn }
            | Message::JoinRequest { txn, .. }
            | Message::JoinReply { txn, .. }
            | Message::GraphUpdate { txn, .. }
            | Message::OutcomeQuery { txn, .. }
            | Message::OutcomeReport { txn, .. }
            | Message::OutcomeDecision { txn, .. } => Some(*txn),
            Message::GraphPropose { at, .. } | Message::GraphApply { at, .. } => Some(*at),
            Message::RejoinRequest { frontier, .. } | Message::RejoinAck { frontier, .. } => {
                Some(*frontier)
            }
            Message::CatchUp { commits, .. } => commits.last().map(|p| p.txn),
            Message::GraphAck { .. } | Message::Heartbeat => None,
        }
    }

    /// Short tag naming the message type, for traces and statistics.
    pub fn tag(&self) -> &'static str {
        match self {
            Message::Txn(p) if p.needs_reply() => "TXN+CHECK",
            Message::Txn(_) => "TXN",
            Message::SnapshotConfirm { .. } => "SNAP-CONFIRM-READ",
            Message::Confirm { .. } => "CONFIRM",
            Message::Deny { .. } => "DENY",
            Message::Commit { .. } => "COMMIT",
            Message::Abort { .. } => "ABORT",
            Message::JoinRequest { .. } => "JOIN-REQ",
            Message::JoinReply { .. } => "JOIN-REPLY",
            Message::GraphUpdate { .. } => "GRAPH-UPDATE",
            Message::OutcomeQuery { .. } => "OUTCOME-QUERY",
            Message::OutcomeReport { .. } => "OUTCOME-REPORT",
            Message::OutcomeDecision { .. } => "OUTCOME-DECISION",
            Message::Heartbeat => "HEARTBEAT",
            Message::GraphPropose { .. } => "GRAPH-PROPOSE",
            Message::GraphAck { .. } => "GRAPH-ACK",
            Message::GraphApply { .. } => "GRAPH-APPLY",
            Message::RejoinRequest { .. } => "REJOIN-REQ",
            Message::RejoinAck { .. } => "REJOIN-ACK",
            Message::CatchUp { .. } => "CATCH-UP",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vt(n: u64) -> VirtualTime {
        VirtualTime::new(n, SiteId(1))
    }

    #[test]
    fn needs_reply_logic() {
        let mut p = TxnPropagate {
            txn: vt(1),
            origin: SiteId(1),
            updates: vec![],
            reads: vec![],
            delegate: None,
        };
        assert!(!p.needs_reply());
        p.updates.push(UpdateItem {
            addr: ObjectAddr::Direct(ObjectName::new(SiteId(2), 0)),
            t_r: vt(1),
            t_g: VirtualTime::ZERO,
            op: WireOp::SetScalar(ScalarValue::Int(1)),
            needs_check: false,
        });
        assert!(!p.needs_reply(), "plain replica write needs no reply");
        p.updates[0].needs_check = true;
        assert!(p.needs_reply(), "primary-checked write needs a reply");
    }

    #[test]
    fn witnessed_vt_extraction() {
        let m = Message::Commit { txn: vt(9) };
        assert_eq!(m.witnessed_vt(), Some(vt(9)));
        let ack = Message::GraphAck {
            ballot: 1,
            coord_target: ObjectName::new(SiteId(1), 0),
        };
        assert_eq!(ack.witnessed_vt(), None);
    }

    #[test]
    fn tags_are_distinct_and_stable() {
        assert_eq!(Message::Commit { txn: vt(1) }.tag(), "COMMIT");
        assert_eq!(Message::Abort { txn: vt(1) }.tag(), "ABORT");
    }

    #[test]
    fn path_display() {
        let p = Path(vec![
            PathElem::Index {
                index: 103,
                tag: vt(40),
            },
            PathElem::Key("John".into()),
        ]);
        assert_eq!(p.to_string(), "[103#40@S1][John]");
        assert!(Path::root().is_root());
        assert!(!p.is_root());
    }

    #[test]
    fn envelope_round_trips_through_serde() {
        let env = Envelope {
            from: SiteId(1),
            to: SiteId(2),
            clock: vt(6),
            msg: Message::Deny {
                subject: vt(5),
                kind: SubjectKind::Snapshot,
            },
            span: None,
        };
        let json = serde_json::to_string(&env).unwrap();
        // A span-less envelope serializes exactly as it did before spans
        // existed: the field is skipped, not null — the v1 compatibility
        // contract.
        assert!(!json.contains("span"), "{json}");
        let back: Envelope = serde_json::from_str(&json).unwrap();
        assert_eq!(back, env);

        let spanned = Envelope {
            span: Some(SpanCtx {
                origin: SiteId(1),
                seq: 5,
                hop: 0,
            }),
            ..env.clone()
        };
        let json = serde_json::to_string(&spanned).unwrap();
        assert!(
            json.contains("\"span\":{\"origin\":1,\"seq\":5,\"hop\":0}"),
            "{json}"
        );
        let back: Envelope = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spanned);
    }
}
