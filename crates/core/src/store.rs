//! The per-site object store: model-object state, composite
//! materialization, path resolution, and straggler re-folding.

use std::collections::HashMap;
use std::sync::Arc;

use decaf_vt::{SiteId, VirtualTime};

use crate::error::DecafError;
use crate::graph::{NodeRef, PrimarySelector, ReplicationGraph};
use crate::message::{AssocSnapshot, ObjectAddr, Path, PathElem, TreeSnapshot, WireOp};
use crate::object::{
    Blueprint, ListEntry, ListOp, ModelObject, ObjectKind, ObjectName, ObjectValue,
    PropagationMode, TupleOp,
};
use crate::value::ScalarValue;

/// Why a wire operation could not (yet) be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ApplyBlocked {
    /// The update's path or tag references a structural update (at the
    /// given VT, if known) that has not arrived yet; buffer and retry.
    /// (Paper §3.2.1: "the propagation will block until the earlier update
    /// is received".)
    MissingDependency(Option<VirtualTime>),
    /// A hard error (bad kind, unknown object) — drop the update.
    Fatal(DecafError),
}

impl From<DecafError> for ApplyBlocked {
    fn from(e: DecafError) -> Self {
        ApplyBlocked::Fatal(e)
    }
}

/// The per-site collection of model objects.
#[derive(Debug)]
pub(crate) struct Store {
    site: SiteId,
    objects: HashMap<ObjectName, ModelObject>,
    next_seq: u64,
    pub selector: PrimarySelector,
}

impl Store {
    pub fn new(site: SiteId) -> Self {
        Store {
            site,
            objects: HashMap::new(),
            next_seq: 0,
            selector: PrimarySelector::default(),
        }
    }

    fn alloc_name(&mut self) -> ObjectName {
        let n = ObjectName::new(self.site, self.next_seq);
        self.next_seq += 1;
        n
    }

    pub fn get(&self, name: ObjectName) -> Result<&ModelObject, DecafError> {
        self.objects
            .get(&name)
            .ok_or(DecafError::NoSuchObject(name))
    }

    pub fn get_mut(&mut self, name: ObjectName) -> Result<&mut ModelObject, DecafError> {
        self.objects
            .get_mut(&name)
            .ok_or(DecafError::NoSuchObject(name))
    }

    pub fn contains(&self, name: ObjectName) -> bool {
        self.objects.contains_key(&name)
    }

    pub fn objects(&self) -> impl Iterator<Item = &ModelObject> {
        self.objects.values()
    }

    pub fn objects_mut(&mut self) -> impl Iterator<Item = &mut ModelObject> {
        self.objects.values_mut()
    }

    /// Name-allocation counter (persistence support).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Restores the name-allocation counter (persistence support).
    pub fn set_next_seq(&mut self, seq: u64) {
        self.next_seq = seq;
    }

    /// Installs a fully-formed object (persistence support).
    pub fn insert_object(&mut self, obj: ModelObject) {
        self.objects.insert(obj.name, obj);
    }

    /// Creates a standalone (root, direct-mode) object with a committed
    /// initial value at `VirtualTime::ZERO`.
    pub fn create_root(&mut self, kind: ObjectKind, value: ObjectValue) -> ObjectName {
        let name = self.alloc_name();
        let mut obj = ModelObject::new(name, kind);
        obj.values.insert_committed(VirtualTime::ZERO, value);
        obj.graphs.insert_committed(
            VirtualTime::ZERO,
            ReplicationGraph::singleton(NodeRef::new(self.site, name)),
        );
        self.objects.insert(name, obj);
        name
    }

    /// Instantiates `bp` (and its subtree) at `vt` as a child embedded
    /// under `parent` (indirect propagation by default, §3.2).
    pub fn instantiate(
        &mut self,
        bp: &Blueprint,
        vt: VirtualTime,
        parent: ObjectName,
    ) -> ObjectName {
        let name = self.alloc_name();
        let value = match bp {
            Blueprint::Int(v) => ObjectValue::Scalar(ScalarValue::Int(*v)),
            Blueprint::Real(v) => ObjectValue::Scalar(ScalarValue::Real(*v)),
            Blueprint::Str(v) => ObjectValue::Scalar(ScalarValue::Str(v.clone())),
            Blueprint::List(children) => {
                let entries: Vec<ListEntry> = children
                    .iter()
                    .map(|c| ListEntry {
                        tag: vt,
                        child: self.instantiate(c, vt, name),
                    })
                    .collect();
                ObjectValue::List {
                    entries: Arc::new(entries),
                    ops: Vec::new(),
                }
            }
            Blueprint::Tuple(children) => {
                let entries: std::collections::BTreeMap<String, ObjectName> = children
                    .iter()
                    .map(|(k, c)| (k.clone(), self.instantiate(c, vt, name)))
                    .collect();
                ObjectValue::Tuple {
                    entries: Arc::new(entries),
                    ops: Vec::new(),
                }
            }
        };
        let mut obj = ModelObject::new(name, bp.kind());
        obj.parent = Some(parent);
        obj.propagation = PropagationMode::Indirect;
        obj.values.insert(vt, value);
        self.objects.insert(name, obj);
        name
    }

    /// Instantiates a [`TreeSnapshot`] at `vt` (join-value adoption),
    /// preserving the snapshot's embedding tags.
    pub fn instantiate_tree(
        &mut self,
        snap: &TreeSnapshot,
        vt: VirtualTime,
        parent: ObjectName,
    ) -> ObjectName {
        let name = self.alloc_name();
        let value = self.tree_value(snap, vt, name);
        let kind = kind_of_snapshot(snap);
        let mut obj = ModelObject::new(name, kind);
        obj.parent = Some(parent);
        obj.propagation = PropagationMode::Indirect;
        obj.values.insert(vt, value);
        self.objects.insert(name, obj);
        name
    }

    fn tree_value(
        &mut self,
        snap: &TreeSnapshot,
        vt: VirtualTime,
        owner: ObjectName,
    ) -> ObjectValue {
        match snap {
            TreeSnapshot::Scalar(s) => ObjectValue::Scalar(s.clone()),
            TreeSnapshot::List(children) => {
                let entries: Vec<ListEntry> = children
                    .iter()
                    .map(|(tag, c)| ListEntry {
                        tag: *tag,
                        child: self.instantiate_tree(c, vt, owner),
                    })
                    .collect();
                ObjectValue::List {
                    entries: Arc::new(entries.clone()),
                    ops: vec![ListOp::ReplaceAll { entries }],
                }
            }
            TreeSnapshot::Tuple(children) => {
                let entries: std::collections::BTreeMap<String, ObjectName> = children
                    .iter()
                    .map(|(k, c)| (k.clone(), self.instantiate_tree(c, vt, owner)))
                    .collect();
                ObjectValue::Tuple {
                    entries: Arc::new(entries.clone()),
                    ops: vec![TupleOp::ReplaceAll { entries }],
                }
            }
            TreeSnapshot::Assoc(a) => ObjectValue::Assoc(Arc::new(a.0.clone())),
        }
    }

    /// Deep snapshot of `name`'s subtree as of `at` (`None` = current).
    pub fn tree_snapshot(
        &self,
        name: ObjectName,
        at: Option<VirtualTime>,
    ) -> Result<TreeSnapshot, DecafError> {
        let obj = self.get(name)?;
        let entry = match at {
            Some(vt) => obj.values.value_at(vt),
            None => obj.values.current(),
        }
        .ok_or(DecafError::Uninitialized(name))?;
        Ok(match &entry.value {
            ObjectValue::Scalar(s) => TreeSnapshot::Scalar(s.clone()),
            ObjectValue::List { entries, .. } => TreeSnapshot::List(
                entries
                    .iter()
                    .map(|e| Ok((e.tag, self.tree_snapshot(e.child, at)?)))
                    .collect::<Result<_, DecafError>>()?,
            ),
            ObjectValue::Tuple { entries, .. } => TreeSnapshot::Tuple(
                entries
                    .iter()
                    .map(|(k, c)| Ok((k.clone(), self.tree_snapshot(*c, at)?)))
                    .collect::<Result<_, DecafError>>()?,
            ),
            ObjectValue::Assoc(a) => TreeSnapshot::Assoc(AssocSnapshot((**a).clone())),
        })
    }

    // ---- roots, paths, graphs -------------------------------------------

    /// Walks `parent` links up to the nearest direct-propagation object
    /// (the "effective root" whose replication graph governs `name`).
    pub fn effective_root(&self, name: ObjectName) -> Result<ObjectName, DecafError> {
        let mut cur = name;
        loop {
            let obj = self.get(cur)?;
            match (obj.propagation, obj.parent) {
                (PropagationMode::Direct, _) | (PropagationMode::Indirect, None) => return Ok(cur),
                (PropagationMode::Indirect, Some(p)) => cur = p,
            }
        }
    }

    /// The VT-tagged path from `name`'s effective root down to `name`.
    pub fn path_to(&self, name: ObjectName) -> Result<(ObjectName, Path), DecafError> {
        let root = self.effective_root(name)?;
        let mut elems = Vec::new();
        let mut cur = name;
        while cur != root {
            let parent = self.get(cur)?.parent.ok_or(DecafError::NoSuchObject(cur))?;
            let pobj = self.get(parent)?;
            let pval = pobj
                .values
                .current()
                .ok_or(DecafError::Uninitialized(parent))?;
            let elem = match &pval.value {
                ObjectValue::List { entries, .. } => {
                    let (index, entry) = entries
                        .iter()
                        .enumerate()
                        .find(|(_, e)| e.child == cur)
                        .ok_or_else(|| DecafError::NoSuchChild {
                        object: parent,
                        detail: format!("{cur}"),
                    })?;
                    PathElem::Index {
                        index,
                        tag: entry.tag,
                    }
                }
                ObjectValue::Tuple { entries, .. } => {
                    let key = entries
                        .iter()
                        .find(|(_, c)| **c == cur)
                        .map(|(k, _)| k.clone())
                        .ok_or_else(|| DecafError::NoSuchChild {
                            object: parent,
                            detail: format!("{cur}"),
                        })?;
                    PathElem::Key(key)
                }
                _ => {
                    return Err(DecafError::KindMismatch {
                        object: parent,
                        expected: "composite",
                    })
                }
            };
            elems.push(elem);
            cur = parent;
        }
        elems.reverse();
        Ok((root, Path(elems)))
    }

    /// Resolves an incoming address to the local object it names.
    ///
    /// For indirect addresses the tag is authoritative: if a path element's
    /// tag has not been applied here yet, resolution blocks
    /// ([`ApplyBlocked::MissingDependency`]) until the structural straggler
    /// arrives (§3.2.1).
    pub fn resolve(&self, addr: &ObjectAddr) -> Result<ObjectName, ApplyBlocked> {
        match addr {
            ObjectAddr::Direct(name) => {
                if self.contains(*name) {
                    Ok(*name)
                } else {
                    Err(ApplyBlocked::Fatal(DecafError::NoSuchObject(*name)))
                }
            }
            ObjectAddr::Indirect { root, path } => {
                let mut cur = *root;
                if !self.contains(cur) {
                    return Err(ApplyBlocked::Fatal(DecafError::NoSuchObject(cur)));
                }
                for elem in &path.0 {
                    let obj = self.get(cur)?;
                    let val = obj.values.current().ok_or(DecafError::Uninitialized(cur))?;
                    cur = match (elem, &val.value) {
                        (PathElem::Index { tag, index }, ObjectValue::List { entries, .. }) => {
                            // Index is a hint; the tag decides. A child that
                            // was concurrently *removed* must still resolve
                            // (§3.2.1: propagation proceeds "regardless of
                            // the order in which it has received other
                            // structure-changing operations"), so fall back
                            // to scanning the retained history.
                            let hit = entries
                                .get(*index)
                                .filter(|e| e.tag == *tag)
                                .or_else(|| entries.iter().find(|e| e.tag == *tag))
                                .map(|e| e.child)
                                .or_else(|| self.find_list_child_by_tag(cur, *tag));
                            match hit {
                                Some(child) => child,
                                None => return Err(ApplyBlocked::MissingDependency(Some(*tag))),
                            }
                        }
                        (PathElem::Key(k), ObjectValue::Tuple { entries, .. }) => {
                            match entries.get(k) {
                                Some(c) => *c,
                                None => return Err(ApplyBlocked::MissingDependency(None)),
                            }
                        }
                        _ => {
                            return Err(ApplyBlocked::Fatal(DecafError::KindMismatch {
                                object: cur,
                                expected: "composite matching path element",
                            }))
                        }
                    };
                }
                Ok(cur)
            }
        }
    }

    /// Finds the child a list embedded under `tag`, even if a later
    /// removal took it out of the current state, by scanning the retained
    /// history (materialized states and insert ops).
    pub fn find_list_child_by_tag(&self, list: ObjectName, tag: VirtualTime) -> Option<ObjectName> {
        let obj = self.objects.get(&list)?;
        obj.embeddings.get(&tag).copied()
    }

    /// The replication graph governing `name` (its own if direct, its
    /// effective root's if indirect), plus the VT at which that graph last
    /// changed (`tG`).
    pub fn effective_graph(
        &self,
        name: ObjectName,
    ) -> Result<(&ReplicationGraph, VirtualTime), DecafError> {
        let root = self.effective_root(name)?;
        let obj = self.get(root)?;
        let entry = obj
            .graphs
            .current()
            .ok_or(DecafError::Uninitialized(root))?;
        Ok((&entry.value, entry.vt))
    }

    /// The primary copy of the graph governing `name`.
    pub fn primary_of(&self, name: ObjectName) -> Result<NodeRef, DecafError> {
        let (graph, _) = self.effective_graph(name)?;
        self.selector
            .primary(graph)
            .ok_or(DecafError::UnknownRelation)
    }

    // ---- reading --------------------------------------------------------

    /// The scalar value of `name` as of `at` (`None` = current).
    pub fn scalar_at(
        &self,
        name: ObjectName,
        at: Option<VirtualTime>,
    ) -> Result<(ScalarValue, VirtualTime, bool), DecafError> {
        let obj = self.get(name)?;
        let entry = match at {
            Some(vt) => obj.values.value_at(vt),
            None => obj.values.current(),
        }
        .ok_or(DecafError::Uninitialized(name))?;
        match &entry.value {
            ObjectValue::Scalar(s) => Ok((s.clone(), entry.vt, entry.committed)),
            _ => Err(DecafError::KindMismatch {
                object: name,
                expected: "scalar",
            }),
        }
    }

    // ---- applying wire operations ---------------------------------------

    /// Applies `op` to `target` at `vt`, creating children as needed.
    ///
    /// Returns the list of objects whose value changed (for view
    /// notification).
    pub fn apply_wire_op(
        &mut self,
        target: ObjectName,
        vt: VirtualTime,
        op: &WireOp,
    ) -> Result<Vec<ObjectName>, ApplyBlocked> {
        match op {
            WireOp::SetScalar(s) => {
                let obj = self.get_mut(target)?;
                if !matches!(
                    obj.kind,
                    ObjectKind::Int | ObjectKind::Real | ObjectKind::Str
                ) {
                    return Err(DecafError::KindMismatch {
                        object: target,
                        expected: "scalar",
                    }
                    .into());
                }
                obj.values.insert(vt, ObjectValue::Scalar(s.clone()));
                Ok(vec![target])
            }
            WireOp::ListInsert { index, child } => {
                self.require_kind(target, ObjectKind::List)?;
                let child_name = self.instantiate(child, vt, target);
                if let Ok(obj) = self.get_mut(target) {
                    obj.embeddings.insert(vt, child_name);
                }
                self.apply_list_op(
                    target,
                    vt,
                    ListOp::Insert {
                        index: *index,
                        tag: vt,
                        child: child_name,
                    },
                )?;
                let mut changed = vec![target];
                changed.extend(self.subtree(child_name));
                Ok(changed)
            }
            WireOp::ListRemove { tag } => {
                self.require_kind(target, ObjectKind::List)?;
                // Block until the embedding at `tag` has been seen here —
                // but a tag that existed *historically* (e.g. already
                // removed by a concurrent transaction) is fine: the fold is
                // a no-op for it.
                let known = self.find_list_child_by_tag(target, *tag).is_some();
                let already = self.get(target)?.values.entry_at(vt).is_some();
                if !known && !already {
                    return Err(ApplyBlocked::MissingDependency(Some(*tag)));
                }
                self.apply_list_op(target, vt, ListOp::Remove { tag: *tag })?;
                Ok(vec![target])
            }
            WireOp::TuplePut { key, child } => {
                self.require_kind(target, ObjectKind::Tuple)?;
                let child_name = self.instantiate(child, vt, target);
                self.apply_tuple_op(
                    target,
                    vt,
                    TupleOp::Put {
                        key: key.clone(),
                        child: child_name,
                    },
                )?;
                let mut changed = vec![target];
                changed.extend(self.subtree(child_name));
                Ok(changed)
            }
            WireOp::TupleRemove { key } => {
                self.require_kind(target, ObjectKind::Tuple)?;
                self.apply_tuple_op(target, vt, TupleOp::Remove { key: key.clone() })?;
                Ok(vec![target])
            }
            WireOp::SetAssoc(a) => {
                self.require_kind(target, ObjectKind::Association)?;
                let obj = self.get_mut(target)?;
                obj.values
                    .insert(vt, ObjectValue::Assoc(Arc::new(a.0.clone())));
                Ok(vec![target])
            }
            WireOp::SetTree(snap) => {
                self.apply_tree(target, vt, snap)?;
                Ok(self.subtree(target))
            }
        }
    }

    fn require_kind(&self, target: ObjectName, kind: ObjectKind) -> Result<(), ApplyBlocked> {
        let obj = self.get(target)?;
        if obj.kind == kind {
            Ok(())
        } else {
            Err(DecafError::KindMismatch {
                object: target,
                expected: match kind {
                    ObjectKind::List => "list",
                    ObjectKind::Tuple => "tuple",
                    ObjectKind::Association => "association",
                    _ => "scalar",
                },
            }
            .into())
        }
    }

    /// Overwrites `target`'s subtree with `snap` at `vt`.
    fn apply_tree(
        &mut self,
        target: ObjectName,
        vt: VirtualTime,
        snap: &TreeSnapshot,
    ) -> Result<Vec<ObjectName>, ApplyBlocked> {
        let value = self.tree_value(snap, vt, target);
        let obj = self.get_mut(target)?;
        match (&value, obj.kind) {
            (ObjectValue::Scalar(_), ObjectKind::Int | ObjectKind::Real | ObjectKind::Str)
            | (ObjectValue::List { .. }, ObjectKind::List)
            | (ObjectValue::Tuple { .. }, ObjectKind::Tuple)
            | (ObjectValue::Assoc(_), ObjectKind::Association) => {}
            _ => {
                return Err(DecafError::KindMismatch {
                    object: target,
                    expected: "snapshot-compatible kind",
                }
                .into())
            }
        }
        match value {
            ObjectValue::List { entries, ops } => {
                let op = ops
                    .into_iter()
                    .next()
                    .unwrap_or_else(|| ListOp::ReplaceAll {
                        entries: (*entries).clone(),
                    });
                self.apply_list_op(target, vt, op)?;
            }
            ObjectValue::Tuple { entries, ops } => {
                let op = ops
                    .into_iter()
                    .next()
                    .unwrap_or_else(|| TupleOp::ReplaceAll {
                        entries: (*entries).clone(),
                    });
                self.apply_tuple_op(target, vt, op)?;
            }
            v => {
                self.get_mut(target)?.values.insert(vt, v);
            }
        }
        Ok(vec![target])
    }

    /// Applies one list op at `vt`, re-folding later materialized states
    /// (handles stragglers arriving out of VT order).
    fn apply_list_op(
        &mut self,
        target: ObjectName,
        vt: VirtualTime,
        op: ListOp,
    ) -> Result<(), ApplyBlocked> {
        let obj = self.get_mut(target)?;
        // Base = materialized entries strictly before vt (shared handle —
        // no copy until a fold actually diverges from it).
        let base: Arc<Vec<ListEntry>> = obj
            .values
            .iter()
            .rev()
            .find(|e| e.vt < vt)
            .and_then(|e| e.value.list_arc())
            .unwrap_or_default();
        // Keep the embedding registry complete (adoptions included).
        match &op {
            ListOp::Insert { tag, child, .. } => {
                obj.embeddings.insert(*tag, *child);
            }
            ListOp::ReplaceAll { entries } => {
                for e in entries {
                    obj.embeddings.insert(e.tag, e.child);
                }
            }
            ListOp::Remove { .. } => {}
        }
        // Record the op at vt (idempotent against redelivery).
        match obj.values.entry_at(vt) {
            Some(_) => {
                // Extend the existing same-VT entry's ops (multi-op txns).
                for e in obj.values.iter_mut_values() {
                    if e.vt == vt {
                        if let ObjectValue::List { ops, .. } = &mut e.value {
                            if !ops.contains(&op) {
                                ops.push(op.clone());
                            }
                        }
                    }
                }
            }
            None => {
                obj.values.insert(
                    vt,
                    ObjectValue::List {
                        entries: Arc::new(Vec::new()),
                        ops: vec![op.clone()],
                    },
                );
            }
        }
        // Re-fold every entry at or after vt. `make_mut` copies the state
        // only when it is still shared with an earlier entry; the folded
        // result is then re-shared into this entry.
        let mut state = base;
        for e in obj.values.iter_mut_values() {
            if e.vt < vt {
                continue;
            }
            if let ObjectValue::List { entries, ops } = &mut e.value {
                for op in ops.iter() {
                    fold_list_op(Arc::make_mut(&mut state), op);
                }
                *entries = Arc::clone(&state);
            }
        }
        // Maintain parent links for the children this op introduces.
        // Children already present were linked when their own introducing
        // op (or `instantiate`) ran, so the pass is O(op), not O(entries).
        let new_children: Vec<ObjectName> = match &op {
            ListOp::Insert { child, .. } => vec![*child],
            ListOp::ReplaceAll { entries } => entries.iter().map(|e| e.child).collect(),
            ListOp::Remove { .. } => Vec::new(),
        };
        for c in new_children {
            if let Ok(child) = self.get_mut(c) {
                child.parent = Some(target);
            }
        }
        Ok(())
    }

    fn apply_tuple_op(
        &mut self,
        target: ObjectName,
        vt: VirtualTime,
        op: TupleOp,
    ) -> Result<(), ApplyBlocked> {
        let obj = self.get_mut(target)?;
        let base: Arc<std::collections::BTreeMap<String, ObjectName>> = obj
            .values
            .iter()
            .rev()
            .find(|e| e.vt < vt)
            .and_then(|e| e.value.tuple_arc())
            .unwrap_or_default();
        match obj.values.entry_at(vt) {
            Some(_) => {
                for e in obj.values.iter_mut_values() {
                    if e.vt == vt {
                        if let ObjectValue::Tuple { ops, .. } = &mut e.value {
                            if !ops.contains(&op) {
                                ops.push(op.clone());
                            }
                        }
                    }
                }
            }
            None => {
                obj.values.insert(
                    vt,
                    ObjectValue::Tuple {
                        entries: Default::default(),
                        ops: vec![op.clone()],
                    },
                );
            }
        }
        let mut state = base;
        for e in obj.values.iter_mut_values() {
            if e.vt < vt {
                continue;
            }
            if let ObjectValue::Tuple { entries, ops } = &mut e.value {
                for op in ops.iter() {
                    fold_tuple_op(Arc::make_mut(&mut state), op);
                }
                *entries = Arc::clone(&state);
            }
        }
        let new_children: Vec<ObjectName> = match &op {
            TupleOp::Put { child, .. } => vec![*child],
            TupleOp::ReplaceAll { entries } => entries.values().copied().collect(),
            TupleOp::Remove { .. } => Vec::new(),
        };
        for c in new_children {
            if let Ok(child) = self.get_mut(c) {
                child.parent = Some(target);
            }
        }
        Ok(())
    }

    /// Rolls back the write to `target` at `vt` (abort), destroying any
    /// children it created and re-folding composites.
    pub fn purge_write(&mut self, target: ObjectName, vt: VirtualTime) {
        let Ok(obj) = self.get_mut(target) else {
            return;
        };
        let Some(purged) = obj.values.purge(vt) else {
            return;
        };
        let mut orphans: Vec<ObjectName> = Vec::new();
        let mut withdrawn_tags: Vec<VirtualTime> = Vec::new();
        match purged {
            ObjectValue::List { ops, .. } => {
                for op in &ops {
                    match op {
                        ListOp::Insert { tag, child, .. } => {
                            orphans.push(*child);
                            withdrawn_tags.push(*tag);
                        }
                        ListOp::ReplaceAll { entries } => {
                            for e in entries {
                                orphans.push(e.child);
                                withdrawn_tags.push(e.tag);
                            }
                        }
                        ListOp::Remove { .. } => {}
                    }
                }
                self.refold_list(target, vt);
            }
            ObjectValue::Tuple { ops, .. } => {
                for op in &ops {
                    match op {
                        TupleOp::Put { child, .. } => orphans.push(*child),
                        TupleOp::ReplaceAll { entries } => {
                            orphans.extend(entries.values().copied())
                        }
                        TupleOp::Remove { .. } => {}
                    }
                }
                self.refold_tuple(target, vt);
            }
            _ => {}
        }
        if let Ok(obj) = self.get_mut(target) {
            for tag in withdrawn_tags {
                obj.embeddings.remove(&tag);
            }
        }
        for o in orphans {
            self.destroy_subtree(o);
        }
    }

    fn refold_list(&mut self, target: ObjectName, from: VirtualTime) {
        let Ok(obj) = self.get_mut(target) else {
            return;
        };
        // Rollback of the newest write re-folds nothing: the base handle
        // is shared, the loop body never runs, and the restore is O(1)
        // regardless of how many entries the composite holds.
        let base: Arc<Vec<ListEntry>> = obj
            .values
            .iter()
            .rev()
            .find(|e| e.vt < from)
            .and_then(|e| e.value.list_arc())
            .unwrap_or_default();
        let mut state = base;
        for e in obj.values.iter_mut_values() {
            if e.vt < from {
                continue;
            }
            if let ObjectValue::List { entries, ops } = &mut e.value {
                for op in ops.iter() {
                    fold_list_op(Arc::make_mut(&mut state), op);
                }
                *entries = Arc::clone(&state);
            }
        }
    }

    fn refold_tuple(&mut self, target: ObjectName, from: VirtualTime) {
        let Ok(obj) = self.get_mut(target) else {
            return;
        };
        let base: Arc<std::collections::BTreeMap<String, ObjectName>> = obj
            .values
            .iter()
            .rev()
            .find(|e| e.vt < from)
            .and_then(|e| e.value.tuple_arc())
            .unwrap_or_default();
        let mut state = base;
        for e in obj.values.iter_mut_values() {
            if e.vt < from {
                continue;
            }
            if let ObjectValue::Tuple { entries, ops } = &mut e.value {
                for op in ops.iter() {
                    fold_tuple_op(Arc::make_mut(&mut state), op);
                }
                *entries = Arc::clone(&state);
            }
        }
    }

    /// Removes an object and its entire (current) subtree from the store.
    pub fn destroy_subtree(&mut self, name: ObjectName) {
        let children: Vec<ObjectName> = match self.objects.get(&name) {
            Some(obj) => obj
                .values
                .iter()
                .flat_map(|e| match &e.value {
                    ObjectValue::List { entries, .. } => {
                        entries.iter().map(|le| le.child).collect::<Vec<_>>()
                    }
                    ObjectValue::Tuple { entries, .. } => entries.values().copied().collect(),
                    _ => Vec::new(),
                })
                .collect(),
            None => return,
        };
        self.objects.remove(&name);
        for c in children {
            self.destroy_subtree(c);
        }
    }

    /// `name` plus every object currently embedded (transitively) under it
    /// — the read set of a view snapshot attached at `name`.
    pub fn subtree(&self, name: ObjectName) -> Vec<ObjectName> {
        let mut out = vec![name];
        let mut frontier = vec![name];
        while let Some(cur) = frontier.pop() {
            let children: Vec<ObjectName> = match self.objects.get(&cur) {
                Some(obj) => match obj.values.current().map(|e| &e.value) {
                    Some(ObjectValue::List { entries, .. }) => {
                        entries.iter().map(|e| e.child).collect()
                    }
                    Some(ObjectValue::Tuple { entries, .. }) => entries.values().copied().collect(),
                    _ => Vec::new(),
                },
                None => Vec::new(),
            };
            for c in children {
                out.push(c);
                frontier.push(c);
            }
        }
        out
    }

    /// All ancestors of `name` (nearest first), for ancestor view
    /// notification ("a view attached to a composite receives notifications
    /// for changes to any of its children", §2.5).
    pub fn ancestors(&self, name: ObjectName) -> Vec<ObjectName> {
        let mut out = Vec::new();
        let mut cur = name;
        while let Some(p) = self.objects.get(&cur).and_then(|o| o.parent) {
            out.push(p);
            cur = p;
        }
        out
    }
}

fn fold_list_op(state: &mut Vec<ListEntry>, op: &ListOp) {
    match op {
        ListOp::Insert { index, tag, child } => {
            if state.iter().any(|e| e.tag == *tag && e.child == *child) {
                return; // idempotent redelivery
            }
            let pos = (*index).min(state.len());
            state.insert(
                pos,
                ListEntry {
                    tag: *tag,
                    child: *child,
                },
            );
        }
        ListOp::Remove { tag } => {
            state.retain(|e| e.tag != *tag);
        }
        ListOp::ReplaceAll { entries } => {
            *state = entries.clone();
        }
    }
}

fn fold_tuple_op(state: &mut std::collections::BTreeMap<String, ObjectName>, op: &TupleOp) {
    match op {
        TupleOp::Put { key, child } => {
            state.insert(key.clone(), *child);
        }
        TupleOp::Remove { key } => {
            state.remove(key);
        }
        TupleOp::ReplaceAll { entries } => {
            *state = entries.clone();
        }
    }
}

fn kind_of_snapshot(snap: &TreeSnapshot) -> ObjectKind {
    match snap {
        TreeSnapshot::Scalar(ScalarValue::Int(_)) => ObjectKind::Int,
        TreeSnapshot::Scalar(ScalarValue::Real(_)) => ObjectKind::Real,
        TreeSnapshot::Scalar(ScalarValue::Str(_)) => ObjectKind::Str,
        TreeSnapshot::List(_) => ObjectKind::List,
        TreeSnapshot::Tuple(_) => ObjectKind::Tuple,
        TreeSnapshot::Assoc(_) => ObjectKind::Association,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vt(n: u64) -> VirtualTime {
        VirtualTime::new(n, SiteId(1))
    }

    fn store() -> Store {
        Store::new(SiteId(1))
    }

    #[test]
    fn create_root_has_committed_value_and_singleton_graph() {
        let mut s = store();
        let n = s.create_root(ObjectKind::Int, ObjectValue::Scalar(ScalarValue::Int(5)));
        let (v, wvt, committed) = s.scalar_at(n, None).unwrap();
        assert_eq!(v, ScalarValue::Int(5));
        assert_eq!(wvt, VirtualTime::ZERO);
        assert!(committed);
        let (g, tg) = s.effective_graph(n).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(tg, VirtualTime::ZERO);
        assert_eq!(s.primary_of(n).unwrap().site, SiteId(1));
    }

    #[test]
    fn scalar_set_and_read_back() {
        let mut s = store();
        let n = s.create_root(ObjectKind::Int, ObjectValue::Scalar(ScalarValue::Int(0)));
        s.apply_wire_op(n, vt(10), &WireOp::SetScalar(ScalarValue::Int(7)))
            .unwrap();
        assert_eq!(s.scalar_at(n, None).unwrap().0, ScalarValue::Int(7));
        assert_eq!(
            s.scalar_at(n, Some(vt(5))).unwrap().0,
            ScalarValue::Int(0),
            "as-of read sees the older value"
        );
    }

    #[test]
    fn list_insert_creates_child_with_parent_link() {
        let mut s = store();
        let l = s.create_root(ObjectKind::List, ObjectValue::empty_list());
        s.apply_wire_op(
            l,
            vt(10),
            &WireOp::ListInsert {
                index: usize::MAX,
                child: Blueprint::Int(1),
            },
        )
        .unwrap();
        let entries = {
            let obj = s.get(l).unwrap();
            obj.values
                .current()
                .unwrap()
                .value
                .as_list()
                .unwrap()
                .to_vec()
        };
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].tag, vt(10));
        let child = entries[0].child;
        assert_eq!(s.get(child).unwrap().parent, Some(l));
        assert_eq!(s.effective_root(child).unwrap(), l);
        let (root, path) = s.path_to(child).unwrap();
        assert_eq!(root, l);
        assert_eq!(
            path.0,
            vec![PathElem::Index {
                index: 0,
                tag: vt(10)
            }]
        );
    }

    #[test]
    fn straggler_insert_refolds_earlier_position() {
        let mut s = store();
        let l = s.create_root(ObjectKind::List, ObjectValue::empty_list());
        // Append at vt 20 arrives first...
        s.apply_wire_op(
            l,
            vt(20),
            &WireOp::ListInsert {
                index: 0,
                child: Blueprint::Int(2),
            },
        )
        .unwrap();
        // ... then a straggling insert at vt 10, also at position 0.
        s.apply_wire_op(
            l,
            vt(10),
            &WireOp::ListInsert {
                index: 0,
                child: Blueprint::Int(1),
            },
        )
        .unwrap();
        let obj = s.get(l).unwrap();
        let cur = obj.values.current().unwrap().value.as_list().unwrap();
        // Folding in VT order: [1] then insert 2 at 0 → [2, 1].
        assert_eq!(cur.len(), 2);
        assert_eq!(cur[0].tag, vt(20));
        assert_eq!(cur[1].tag, vt(10));
        // The as-of state at vt 15 contains only the vt-10 entry.
        let at15 = obj
            .values
            .value_at(vt(15))
            .unwrap()
            .value
            .as_list()
            .unwrap();
        assert_eq!(at15.len(), 1);
        assert_eq!(at15[0].tag, vt(10));
    }

    #[test]
    fn list_remove_by_tag_and_blocking_on_unknown_tag() {
        let mut s = store();
        let l = s.create_root(ObjectKind::List, ObjectValue::empty_list());
        // Removing a tag we have never seen blocks (straggler ordering).
        let blocked = s.apply_wire_op(l, vt(30), &WireOp::ListRemove { tag: vt(10) });
        assert_eq!(
            blocked.unwrap_err(),
            ApplyBlocked::MissingDependency(Some(vt(10)))
        );
        s.apply_wire_op(
            l,
            vt(10),
            &WireOp::ListInsert {
                index: 0,
                child: Blueprint::Int(1),
            },
        )
        .unwrap();
        s.apply_wire_op(l, vt(30), &WireOp::ListRemove { tag: vt(10) })
            .unwrap();
        let obj = s.get(l).unwrap();
        assert!(obj
            .values
            .current()
            .unwrap()
            .value
            .as_list()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn purge_rolls_back_composite_and_destroys_children() {
        let mut s = store();
        let l = s.create_root(ObjectKind::List, ObjectValue::empty_list());
        s.apply_wire_op(
            l,
            vt(10),
            &WireOp::ListInsert {
                index: 0,
                child: Blueprint::List(vec![Blueprint::Int(1), Blueprint::Int(2)]),
            },
        )
        .unwrap();
        let child = s
            .get(l)
            .unwrap()
            .values
            .current()
            .unwrap()
            .value
            .as_list()
            .unwrap()[0]
            .child;
        assert!(s.contains(child));
        s.purge_write(l, vt(10));
        assert!(!s.contains(child), "aborted insert's subtree destroyed");
        assert!(s
            .get(l)
            .unwrap()
            .values
            .current()
            .unwrap()
            .value
            .as_list()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn tuple_put_get_remove_roundtrip() {
        let mut s = store();
        let t = s.create_root(ObjectKind::Tuple, ObjectValue::empty_tuple());
        s.apply_wire_op(
            t,
            vt(10),
            &WireOp::TuplePut {
                key: "name".into(),
                child: Blueprint::str("alice"),
            },
        )
        .unwrap();
        let child = *s
            .get(t)
            .unwrap()
            .values
            .current()
            .unwrap()
            .value
            .as_tuple()
            .unwrap()
            .get("name")
            .unwrap();
        assert_eq!(
            s.scalar_at(child, None).unwrap().0,
            ScalarValue::from("alice")
        );
        let (root, path) = s.path_to(child).unwrap();
        assert_eq!(root, t);
        assert_eq!(path.0, vec![PathElem::Key("name".into())]);
        s.apply_wire_op(t, vt(20), &WireOp::TupleRemove { key: "name".into() })
            .unwrap();
        assert!(s
            .get(t)
            .unwrap()
            .values
            .current()
            .unwrap()
            .value
            .as_tuple()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn resolve_indirect_by_tag_not_index() {
        let mut s = store();
        let l = s.create_root(ObjectKind::List, ObjectValue::empty_list());
        for (i, t) in [(0usize, 10u64), (0, 20), (0, 30)] {
            s.apply_wire_op(
                l,
                vt(t),
                &WireOp::ListInsert {
                    index: i,
                    child: Blueprint::Int(t as i64),
                },
            )
            .unwrap();
        }
        // Current order: [30, 20, 10]. An address formed when 10 was at
        // index 0 still resolves via its tag.
        let addr = ObjectAddr::Indirect {
            root: l,
            path: Path(vec![PathElem::Index {
                index: 0,
                tag: vt(10),
            }]),
        };
        let resolved = s.resolve(&addr).unwrap();
        assert_eq!(s.scalar_at(resolved, None).unwrap().0, ScalarValue::Int(10));
        // Unknown tag blocks.
        let addr2 = ObjectAddr::Indirect {
            root: l,
            path: Path(vec![PathElem::Index {
                index: 0,
                tag: vt(99),
            }]),
        };
        assert!(matches!(
            s.resolve(&addr2),
            Err(ApplyBlocked::MissingDependency(Some(t))) if t == vt(99)
        ));
    }

    #[test]
    fn tree_snapshot_roundtrip_through_instantiate() {
        let mut s = store();
        let l = s.create_root(ObjectKind::List, ObjectValue::empty_list());
        s.apply_wire_op(
            l,
            vt(10),
            &WireOp::ListInsert {
                index: 0,
                child: Blueprint::Tuple(vec![("x".into(), Blueprint::Int(7))]),
            },
        )
        .unwrap();
        let snap = s.tree_snapshot(l, None).unwrap();
        // Adopt into a second store, as join does.
        let mut s2 = Store::new(SiteId(2));
        let l2 = s2.create_root(ObjectKind::List, ObjectValue::empty_list());
        s2.apply_wire_op(l2, vt(40), &WireOp::SetTree(snap))
            .unwrap();
        let entries = s2
            .get(l2)
            .unwrap()
            .values
            .current()
            .unwrap()
            .value
            .as_list()
            .unwrap()
            .to_vec();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].tag, vt(10), "embedding tags preserved");
        let tuple = entries[0].child;
        let x = *s2
            .get(tuple)
            .unwrap()
            .values
            .current()
            .unwrap()
            .value
            .as_tuple()
            .unwrap()
            .get("x")
            .unwrap();
        assert_eq!(s2.scalar_at(x, None).unwrap().0, ScalarValue::Int(7));
    }

    #[test]
    fn kind_mismatch_is_fatal() {
        let mut s = store();
        let n = s.create_root(ObjectKind::Int, ObjectValue::Scalar(ScalarValue::Int(0)));
        let err = s
            .apply_wire_op(
                n,
                vt(10),
                &WireOp::ListInsert {
                    index: 0,
                    child: Blueprint::Int(1),
                },
            )
            .unwrap_err();
        assert!(matches!(err, ApplyBlocked::Fatal(_)));
    }

    #[test]
    fn ancestors_walk_to_root() {
        let mut s = store();
        let l = s.create_root(ObjectKind::List, ObjectValue::empty_list());
        s.apply_wire_op(
            l,
            vt(10),
            &WireOp::ListInsert {
                index: 0,
                child: Blueprint::List(vec![Blueprint::Int(3)]),
            },
        )
        .unwrap();
        let mid = s
            .get(l)
            .unwrap()
            .values
            .current()
            .unwrap()
            .value
            .as_list()
            .unwrap()[0]
            .child;
        let leaf = s
            .get(mid)
            .unwrap()
            .values
            .current()
            .unwrap()
            .value
            .as_list()
            .unwrap()[0]
            .child;
        assert_eq!(s.ancestors(leaf), vec![mid, l]);
        assert!(s.ancestors(l).is_empty());
    }
}

#[cfg(test)]
mod embedding_tests {
    use super::*;

    fn vt(n: u64) -> VirtualTime {
        VirtualTime::new(n, SiteId(1))
    }

    fn list_store() -> (Store, ObjectName) {
        let mut s = Store::new(SiteId(1));
        let l = s.create_root(ObjectKind::List, ObjectValue::empty_list());
        (s, l)
    }

    #[test]
    fn registry_tracks_inserts_and_survives_removal() {
        let (mut s, l) = list_store();
        s.apply_wire_op(
            l,
            vt(10),
            &WireOp::ListInsert {
                index: 0,
                child: Blueprint::Int(1),
            },
        )
        .unwrap();
        let child = s.find_list_child_by_tag(l, vt(10)).expect("registered");
        s.apply_wire_op(l, vt(20), &WireOp::ListRemove { tag: vt(10) })
            .unwrap();
        assert_eq!(
            s.find_list_child_by_tag(l, vt(10)),
            Some(child),
            "registry survives removal (tombstone resolution)"
        );
        assert!(s.contains(child), "removed child object is retained");
    }

    #[test]
    fn registry_withdraws_aborted_embeddings() {
        let (mut s, l) = list_store();
        s.apply_wire_op(
            l,
            vt(10),
            &WireOp::ListInsert {
                index: 0,
                child: Blueprint::Int(1),
            },
        )
        .unwrap();
        s.purge_write(l, vt(10)); // the embedding transaction aborted
        assert_eq!(
            s.find_list_child_by_tag(l, vt(10)),
            None,
            "aborted embeddings must not resolve"
        );
    }

    #[test]
    fn registry_survives_history_gc() {
        let (mut s, l) = list_store();
        s.apply_wire_op(
            l,
            vt(10),
            &WireOp::ListInsert {
                index: 0,
                child: Blueprint::Int(1),
            },
        )
        .unwrap();
        s.apply_wire_op(l, vt(20), &WireOp::ListRemove { tag: vt(10) })
            .unwrap();
        {
            let obj = s.get_mut(l).unwrap();
            obj.values.mark_committed(vt(10));
            obj.values.mark_committed(vt(20));
            obj.values.gc(vt(100));
        }
        assert_eq!(s.get(l).unwrap().values.len(), 1, "history collapsed");
        assert!(
            s.find_list_child_by_tag(l, vt(10)).is_some(),
            "tag still resolves after GC"
        );
    }

    #[test]
    fn subtree_lists_every_descendant() {
        let (mut s, l) = list_store();
        s.apply_wire_op(
            l,
            vt(10),
            &WireOp::ListInsert {
                index: 0,
                child: Blueprint::List(vec![Blueprint::Int(1), Blueprint::Int(2)]),
            },
        )
        .unwrap();
        let tree = s.subtree(l);
        assert_eq!(tree.len(), 4, "root + inner list + two ints: {tree:?}");
        assert_eq!(tree[0], l, "root first");
    }
}
