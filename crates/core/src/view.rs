//! View objects and view notification (paper §2.5, §4).
//!
//! A **view object** is user code attached to one or more (always local)
//! model objects. When an attached object changes, the infrastructure calls
//! the view's [`update`](View::update) method with a consistent
//! **state snapshot** — "guaranteed by the infrastructure to be atomic
//! actions, behaving as if they are instantaneous with respect to update
//! transactions" (§2.5).
//!
//! * **Optimistic views** are notified as soon as a transaction executes
//!   locally — possibly before it commits — and receive a
//!   [`commit`](View::commit) call once the latest notified snapshot proves
//!   committed. They trade accuracy for responsiveness (§2.5.1).
//! * **Pessimistic views** are notified only of committed values, losslessly
//!   and in monotonic VT order (§4.2).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use decaf_vt::{SiteId, VirtualTime};

use crate::collab::RelationInfo;
use crate::error::DecafError;
use crate::object::{ObjectName, ObjectValue};
use crate::store::Store;
use crate::txn::Transaction;
use crate::value::ScalarValue;

/// Identifier of an attached view within its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ViewId(pub(crate) u64);

impl fmt::Display for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{}", self.0)
    }
}

/// Whether a view observes updates optimistically or pessimistically
/// (§2.5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViewMode {
    /// Notified immediately on local execution; may observe uncommitted
    /// state; lossy; `commit()` fires when the latest snapshot commits.
    Optimistic,
    /// Notified only of committed updates, losslessly, in monotonic order.
    Pessimistic,
}

/// A user-defined view object.
///
/// # Example
///
/// The paper's `BalanceView` (Fig. 3), showing a balance in red while the
/// value is tentative and black once committed:
///
/// ```
/// use decaf_core::{ObjectName, UpdateNotification, View};
///
/// struct BalanceView {
///     balance: ObjectName,
///     color: &'static str,
///     shown: f64,
/// }
///
/// impl View for BalanceView {
///     fn update(&mut self, n: &UpdateNotification<'_>) {
///         self.color = "red"; // tentative
///         if let Ok(v) = n.read_real(self.balance) {
///             self.shown = v;
///         }
///     }
///     fn commit(&mut self) {
///         self.color = "black"; // the last shown value committed
///     }
/// }
/// ```
pub trait View: Send + 'static {
    /// Called with a consistent snapshot whenever attached model objects
    /// change. `n` lists exactly the objects "that have changed value since
    /// the last notification" (§2.5) and provides snapshot reads.
    fn update(&mut self, n: &UpdateNotification<'_>);

    /// For optimistic views: "called whenever its most recent update
    /// notification is known to have been from a committed state" (§2.5.1).
    /// Pessimistic views never receive this call (every update they see is
    /// already committed).
    fn commit(&mut self) {}
}

/// The notification passed to [`View::update`]: the changed-object list
/// plus snapshot read access at the snapshot's virtual time.
pub struct UpdateNotification<'a> {
    pub(crate) ts: VirtualTime,
    pub(crate) changed: &'a [ObjectName],
    pub(crate) store: &'a Store,
    pub(crate) spawned: std::cell::RefCell<Vec<Box<dyn Transaction>>>,
}

impl fmt::Debug for UpdateNotification<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UpdateNotification")
            .field("ts", &self.ts)
            .field("changed", &self.changed)
            .finish()
    }
}

impl<'a> UpdateNotification<'a> {
    /// The objects that changed since this view's last notification.
    pub fn changed(&self) -> &[ObjectName] {
        self.changed
    }

    /// Whether `object` is on the changed list.
    pub fn has_changed(&self, object: ObjectName) -> bool {
        self.changed.contains(&object)
    }

    /// Initiates a new transaction from within the update method ("the
    /// update method may initiate new transactions", §2.5); it runs after
    /// the notification returns.
    pub fn initiate(&self, txn: Box<dyn Transaction>) {
        self.spawned.borrow_mut().push(txn);
    }

    fn value_at(&self, object: ObjectName) -> Result<&ObjectValue, DecafError> {
        let obj = self.store.get(object)?;
        obj.values
            .value_at(self.ts)
            .map(|e| &e.value)
            .ok_or(DecafError::Uninitialized(object))
    }

    /// Snapshot-reads an integer model object.
    ///
    /// # Errors
    ///
    /// Fails if the object is missing or of the wrong kind.
    pub fn read_int(&self, object: ObjectName) -> Result<i64, DecafError> {
        self.value_at(object)?
            .as_scalar()
            .and_then(ScalarValue::as_int)
            .ok_or(DecafError::KindMismatch {
                object,
                expected: "int",
            })
    }

    /// Snapshot-reads a real model object.
    ///
    /// # Errors
    ///
    /// Fails if the object is missing or of the wrong kind.
    pub fn read_real(&self, object: ObjectName) -> Result<f64, DecafError> {
        self.value_at(object)?
            .as_scalar()
            .and_then(ScalarValue::as_real)
            .ok_or(DecafError::KindMismatch {
                object,
                expected: "real",
            })
    }

    /// Snapshot-reads a string model object.
    ///
    /// # Errors
    ///
    /// Fails if the object is missing or of the wrong kind.
    pub fn read_str(&self, object: ObjectName) -> Result<String, DecafError> {
        self.value_at(object)?
            .as_scalar()
            .and_then(|s| s.as_str().map(str::to_owned))
            .ok_or(DecafError::KindMismatch {
                object,
                expected: "string",
            })
    }

    /// Snapshot-reads a list's children.
    ///
    /// # Errors
    ///
    /// Fails if the object is missing or not a list.
    pub fn read_list(&self, object: ObjectName) -> Result<Vec<ObjectName>, DecafError> {
        match self.value_at(object)? {
            ObjectValue::List { entries, .. } => Ok(entries.iter().map(|e| e.child).collect()),
            _ => Err(DecafError::KindMismatch {
                object,
                expected: "list",
            }),
        }
    }

    /// Snapshot-reads a tuple's keyed children.
    ///
    /// # Errors
    ///
    /// Fails if the object is missing or not a tuple.
    pub fn read_tuple(&self, object: ObjectName) -> Result<Vec<(String, ObjectName)>, DecafError> {
        match self.value_at(object)? {
            ObjectValue::Tuple { entries, .. } => {
                Ok(entries.iter().map(|(k, v)| (k.clone(), *v)).collect())
            }
            _ => Err(DecafError::KindMismatch {
                object,
                expected: "tuple",
            }),
        }
    }

    /// Snapshot-reads an association object's relationships.
    ///
    /// # Errors
    ///
    /// Fails if the object is missing or not an association.
    pub fn read_assoc(&self, object: ObjectName) -> Result<Vec<RelationInfo>, DecafError> {
        match self.value_at(object)? {
            ObjectValue::Assoc(state) => Ok(state
                .iter()
                .map(|(id, rel)| RelationInfo {
                    id: *id,
                    members: rel.members.iter().copied().collect(),
                    description: rel.description.clone(),
                })
                .collect()),
            _ => Err(DecafError::KindMismatch {
                object,
                expected: "association",
            }),
        }
    }
}

/// Snapshot reader re-exported name; see [`UpdateNotification`].
///
/// The update notification *is* the snapshot reader in this implementation;
/// the alias exists so signatures can say what they mean.
pub type SnapshotReader<'a> = UpdateNotification<'a>;

// ---------------------------------------------------------------------------
// Internal proxy state (driven by the engine)
// ---------------------------------------------------------------------------

/// An in-flight snapshot's guess bookkeeping.
#[derive(Debug, Clone, Default)]
pub(crate) struct SnapGuesses {
    /// Uncommitted transactions whose values the snapshot read (RC).
    pub rc_waits: BTreeSet<VirtualTime>,
    /// Primary sites whose RL confirmation is outstanding.
    pub outstanding: BTreeSet<SiteId>,
    /// Set when a primary denied an interval; cleared on revision.
    pub denied: bool,
}

impl SnapGuesses {
    pub fn settled(&self) -> bool {
        !self.denied && self.rc_waits.is_empty() && self.outstanding.is_empty()
    }
}

/// The single uncommitted snapshot an optimistic proxy maintains (§4.1:
/// "an optimistic view proxy maintains at most one uncommitted snapshot —
/// the one with the latest tS").
#[derive(Debug, Clone)]
pub(crate) struct OptSnap {
    /// Snapshot VT: greatest VT of the current values of attached objects.
    pub ts: VirtualTime,
    /// Unique VT identifying this snapshot for reply routing and
    /// reservation ownership.
    pub token: VirtualTime,
    pub guesses: SnapGuesses,
    /// `(object, value VT)` pairs the snapshot read, for inconsistency
    /// accounting.
    pub reads: Vec<(ObjectName, VirtualTime)>,
}

/// One pending snapshot of a pessimistic proxy (§4.2 keeps "a list of
/// snapshot objects sorted by VT").
#[derive(Debug, Clone)]
pub(crate) struct PessSnap {
    /// Unique VT for reply routing / reservation ownership.
    pub token: VirtualTime,
    /// Attached objects updated at `ts` (the notification's changed list).
    pub changed: BTreeSet<ObjectName>,
    /// Whether the updating transaction at `ts` has committed.
    pub committed: bool,
    pub guesses: SnapGuesses,
    /// Per updated object, the `tR` its update carried: the transaction's
    /// own confirmed RL reservation covers `(tR, ts)`, so the snapshot's
    /// monotonicity guess only needs `(lo, tR)` (§5.1.2's "confirmations
    /// proceed concurrently" shortcut).
    pub coverage: BTreeMap<ObjectName, VirtualTime>,
    /// The `(object, lo, hi)` intervals the current guesses were issued
    /// for; a denied snapshot re-issues as soon as local commits shrink an
    /// interval (progress guarantee for guess revision, §4.2).
    pub issued: Vec<(ObjectName, VirtualTime, VirtualTime)>,
}

/// Per-view bookkeeping held by the site engine.
pub(crate) struct ViewProxy {
    pub id: ViewId,
    pub mode: ViewMode,
    pub attached: BTreeSet<ObjectName>,
    pub view: Box<dyn View>,
    /// VT of each attached object's value at the last delivered
    /// notification, for computing the changed list.
    pub last_seen: BTreeMap<ObjectName, VirtualTime>,
    /// Optimistic: the one uncommitted snapshot.
    pub opt: Option<OptSnap>,
    /// Optimistic: ts of the last delivered update notification.
    pub last_notified_ts: Option<VirtualTime>,
    /// Pessimistic: pending snapshots by VT.
    pub pess: BTreeMap<VirtualTime, PessSnap>,
    /// Pessimistic: "a field lastNotifiedVT, which is the VT of the last
    /// update notification" (§4.2).
    pub last_notified_vt: VirtualTime,
    /// Attachment points with changes not yet notified (drives the changed
    /// list of the next optimistic notification).
    pub dirty: BTreeSet<ObjectName>,
    /// Max VT among pending triggering updates (lower bound for the next
    /// optimistic snapshot's ts).
    pub pending_ts: VirtualTime,
    /// `(object, value VT)` pairs shown by the last delivered optimistic
    /// notification, for update-inconsistency accounting (§5.1.2).
    pub last_delivered_reads: Vec<(ObjectName, VirtualTime)>,
    /// Notification ledger for the model-checking oracles; populated only
    /// when [`SiteConfig::view_ledger`](crate::SiteConfig) is set.
    pub ledger: Vec<crate::oracle::ViewLedgerEntry>,
}

impl fmt::Debug for ViewProxy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ViewProxy")
            .field("id", &self.id)
            .field("mode", &self.mode)
            .field("attached", &self.attached)
            .finish()
    }
}

impl ViewProxy {
    pub fn new(
        id: ViewId,
        mode: ViewMode,
        attached: BTreeSet<ObjectName>,
        view: Box<dyn View>,
    ) -> Self {
        ViewProxy {
            id,
            mode,
            attached,
            view,
            last_seen: BTreeMap::new(),
            opt: None,
            last_notified_ts: None,
            pess: BTreeMap::new(),
            last_notified_vt: VirtualTime::ZERO,
            dirty: BTreeSet::new(),
            pending_ts: VirtualTime::ZERO,
            last_delivered_reads: Vec::new(),
            ledger: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// A ready-made recording view for tests, examples, and benchmarks
// ---------------------------------------------------------------------------

/// An event captured by a [`RecordingView`].
#[derive(Debug, Clone, PartialEq)]
pub enum ViewEvent {
    /// An update notification, with the changed objects and the snapshot
    /// values of all watched scalars.
    Update {
        /// The changed-object list.
        changed: Vec<ObjectName>,
        /// `(object, value)` for each watched object readable as a scalar.
        values: Vec<(ObjectName, ScalarValue)>,
    },
    /// A commit notification.
    Commit,
}

/// A [`View`] that records every notification, for assertions in tests and
/// statistics in benchmarks.
///
/// # Example
///
/// ```
/// use decaf_core::{RecordingView, ViewEvent};
///
/// let view = RecordingView::new(vec![]);
/// let log = view.log();
/// // ... attach to a site, run transactions ...
/// assert!(log.lock().unwrap().is_empty());
/// ```
#[derive(Debug)]
pub struct RecordingView {
    watch: Vec<ObjectName>,
    log: std::sync::Arc<std::sync::Mutex<Vec<ViewEvent>>>,
}

impl RecordingView {
    /// Creates a view that snapshot-reads `watch` scalars on each update.
    pub fn new(watch: Vec<ObjectName>) -> Self {
        RecordingView {
            watch,
            log: Default::default(),
        }
    }

    /// Shared handle to the captured event log.
    pub fn log(&self) -> std::sync::Arc<std::sync::Mutex<Vec<ViewEvent>>> {
        std::sync::Arc::clone(&self.log)
    }
}

impl View for RecordingView {
    fn update(&mut self, n: &UpdateNotification<'_>) {
        let values = self
            .watch
            .iter()
            .filter_map(|&o| {
                let v = n
                    .read_int(o)
                    .map(ScalarValue::Int)
                    .or_else(|_| n.read_real(o).map(ScalarValue::Real))
                    .or_else(|_| n.read_str(o).map(ScalarValue::Str))
                    .ok()?;
                Some((o, v))
            })
            .collect();
        self.log
            .lock()
            .expect("view log poisoned")
            .push(ViewEvent::Update {
                changed: n.changed().to_vec(),
                values,
            });
    }

    fn commit(&mut self) {
        self.log
            .lock()
            .expect("view log poisoned")
            .push(ViewEvent::Commit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_id_display() {
        assert_eq!(ViewId(3).to_string(), "V3");
    }

    #[test]
    fn snap_guesses_settled_logic() {
        let mut g = SnapGuesses::default();
        assert!(g.settled());
        g.outstanding.insert(SiteId(1));
        assert!(!g.settled());
        g.outstanding.clear();
        g.rc_waits.insert(VirtualTime::new(5, SiteId(1)));
        assert!(!g.settled());
        g.rc_waits.clear();
        g.denied = true;
        assert!(!g.settled());
    }

    #[test]
    fn recording_view_collects_events() {
        let mut v = RecordingView::new(vec![]);
        let log = v.log();
        v.commit();
        assert_eq!(log.lock().unwrap().as_slice(), &[ViewEvent::Commit]);
    }
}
