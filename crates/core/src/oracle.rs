//! Oracle accessor surface for deterministic model checking.
//!
//! The `decaf-check` subsystem drives N sites over the simulated network
//! and, after every step and again at quiescence, asks each [`Site`] for
//! evidence that the paper's guarantees actually held on the explored
//! schedule:
//!
//! * [`Site::committed_digest`] — an order-independent structural hash of
//!   an object's latest **committed** value, for the committed-store
//!   convergence oracle (§3: every replica must agree once quiescent);
//! * [`Site::view_ledger`] — the per-view notification ledger (recorded
//!   only when [`SiteConfig::view_ledger`](crate::SiteConfig) is set), for
//!   the pessimistic losslessness / VT-monotonicity oracles and the
//!   optimistic superseded-or-committed oracle (§4);
//! * [`Site::gc_watermark`] — the low-water mark the most recent GC sweep
//!   actually used, together with the smallest pessimistic-view frontier
//!   that existed at that moment, for the "GC never collects history a
//!   straggler view still needs" oracle.
//!
//! [`TestMutation`] is the seeded-bug hook: a deliberately wrong variant
//! of the protocol that the checker must be able to catch, proving the
//! oracles have teeth.

use decaf_vt::VirtualTime;

use crate::engine::Site;
use crate::object::{ObjectName, ObjectValue};
use crate::value::ScalarValue;
use crate::view::{ViewId, ViewMode};

/// Digest of one object's latest committed value, as captured by
/// [`Site::committed_digest`].
///
/// Two replicas of the same logical object must produce equal digests at
/// quiescence even though their local [`ObjectName`]s differ: the hash
/// recurses into composite children *structurally* (by embedding tag and
/// child value) rather than by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommittedDigest {
    /// VT of the latest committed history entry.
    pub vt: VirtualTime,
    /// FNV-1a hash of the committed value (recursive for composites).
    pub hash: u64,
}

/// What kind of notification a [`ViewLedgerEntry`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewLedgerKind {
    /// An update notification delivered in the given mode.
    Update(ViewMode),
    /// A commit notification (optimistic views only; pessimistic
    /// notifications are committed by construction).
    Commit,
}

/// One recorded view-notification delivery.
///
/// Recorded only when the site was built with
/// [`SiteConfig::view_ledger`](crate::SiteConfig) set — the ledger grows
/// with every notification and exists purely for checker oracles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewLedgerEntry {
    /// The notification's snapshot VT (`tS` in §4).
    pub ts: VirtualTime,
    /// Update or commit, and in which mode.
    pub kind: ViewLedgerKind,
}

/// The most recent GC sweep's bookkeeping, from [`Site::gc_watermark`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcWatermark {
    /// The low-water mark the sweep collected below.
    pub low: VirtualTime,
    /// The smallest `lastNotifiedVT` over pessimistic view proxies **at
    /// the moment of the sweep** (`None` if no pessimistic views were
    /// attached). Computed independently of `low`, so the checker's
    /// `low <= pess_frontier` oracle genuinely cross-checks the sweep.
    pub pess_frontier: Option<VirtualTime>,
    /// History entries the sweep discarded.
    pub discarded: u64,
}

/// A deliberately seeded protocol bug, injected with
/// [`Site::inject_test_mutation`] so `decaf-check` can prove its oracles
/// detect real violations. Always compiled (the checker lives in another
/// crate, so `#[cfg(test)]` would not be visible to it), but hidden from
/// the public API surface.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TestMutation {
    /// Drop the commit notice delivered to pessimistic view proxies: the
    /// snapshot for a committed update never becomes deliverable, so the
    /// view silently loses committed updates (violates §4.2
    /// losslessness).
    DropPessCommitNotice,
    /// Skip the optimistic-snapshot rerun after a rollback: the view keeps
    /// showing rolled-back state forever (violates §4.1
    /// superseded-or-committed).
    SkipRollbackRenotify,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn mix(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

fn mix_u64(h: &mut u64, v: u64) {
    mix(h, &v.to_le_bytes());
}

fn mix_vt(h: &mut u64, vt: VirtualTime) {
    mix_u64(h, vt.lamport);
    mix_u64(h, u64::from(vt.site.0));
}

impl Site {
    /// Structural digest of `object`'s latest committed value, or `None`
    /// if the object is unknown or has no committed entry yet.
    pub fn committed_digest(&self, object: ObjectName) -> Option<CommittedDigest> {
        let obj = self.store.get(object).ok()?;
        let entry = obj.values.latest_committed()?;
        let mut h = FNV_OFFSET;
        self.mix_value(&entry.value, &mut h);
        Some(CommittedDigest {
            vt: entry.vt,
            hash: h,
        })
    }

    fn mix_child(&self, child: ObjectName, h: &mut u64) {
        match self
            .store
            .get(child)
            .ok()
            .and_then(|m| m.values.latest_committed())
        {
            Some(e) => {
                mix_vt(h, e.vt);
                self.mix_value(&e.value, h);
            }
            None => mix(h, b"absent"),
        }
    }

    fn mix_value(&self, value: &ObjectValue, h: &mut u64) {
        match value {
            ObjectValue::Scalar(s) => match s {
                ScalarValue::Int(v) => {
                    mix(h, b"i");
                    mix_u64(h, *v as u64);
                }
                ScalarValue::Real(v) => {
                    mix(h, b"r");
                    mix_u64(h, v.to_bits());
                }
                ScalarValue::Str(s) => {
                    mix(h, b"s");
                    mix_u64(h, s.len() as u64);
                    mix(h, s.as_bytes());
                }
            },
            ObjectValue::List { entries, .. } => {
                mix(h, b"L");
                mix_u64(h, entries.len() as u64);
                for e in entries.iter() {
                    mix_vt(h, e.tag);
                    self.mix_child(e.child, h);
                }
            }
            ObjectValue::Tuple { entries, .. } => {
                mix(h, b"T");
                mix_u64(h, entries.len() as u64);
                for (k, child) in entries.iter() {
                    mix_u64(h, k.len() as u64);
                    mix(h, k.as_bytes());
                    self.mix_child(*child, h);
                }
            }
            ObjectValue::Assoc(state) => {
                mix(h, b"A");
                mix_u64(h, state.len() as u64);
                for (rid, rel) in state.iter() {
                    mix_u64(h, rid.0);
                    mix(h, rel.description.as_bytes());
                    mix_u64(h, rel.members.len() as u64);
                    for m in &rel.members {
                        mix_u64(h, u64::from(m.site.0));
                        mix_u64(h, u64::from(m.object.site.0));
                        mix_u64(h, m.object.seq);
                    }
                }
            }
        }
    }

    /// The notification ledger of view `id`, or `None` for an unknown
    /// view. Empty unless the site was configured with
    /// [`SiteConfig::view_ledger`](crate::SiteConfig).
    pub fn view_ledger(&self, id: ViewId) -> Option<Vec<ViewLedgerEntry>> {
        self.views.get(&id).map(|p| p.ledger.clone())
    }

    /// Every attached view with its mode.
    pub fn view_modes(&self) -> Vec<(ViewId, ViewMode)> {
        self.views.iter().map(|(id, p)| (*id, p.mode)).collect()
    }

    /// The most recent GC sweep's watermark record, or `None` if no sweep
    /// has run yet.
    pub fn gc_watermark(&self) -> Option<GcWatermark> {
        self.last_gc
    }

    /// Injects a seeded protocol bug (checker self-test only).
    #[doc(hidden)]
    pub fn inject_test_mutation(&mut self, mutation: TestMutation) {
        self.mutation = Some(mutation);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::ViewMode;
    use crate::{RecordingView, Site, Transaction, TxnCtx, TxnError};
    use decaf_vt::SiteId;

    struct SetInt(ObjectName, i64);
    impl Transaction for SetInt {
        fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
            ctx.write_int(self.0, self.1)
        }
    }

    #[test]
    fn digest_tracks_committed_value() {
        let mut site = Site::new(SiteId(1));
        let obj = site.create_int(7);
        let d0 = site.committed_digest(obj).expect("initial commit");
        // Same value at another site hashes equal despite a different name.
        let mut other = Site::new(SiteId(2));
        let obj2 = other.create_int(7);
        assert_eq!(d0.hash, other.committed_digest(obj2).unwrap().hash);
        // A committed write changes the digest.
        site.execute(Box::new(SetInt(obj, 8)));
        let d1 = site.committed_digest(obj).unwrap();
        assert_ne!(d0.hash, d1.hash);
        assert!(d1.vt > d0.vt);
    }

    #[test]
    fn view_ledger_records_deliveries_when_enabled() {
        let config = crate::SiteConfig {
            view_ledger: true,
            ..Default::default()
        };
        let mut site = Site::with_config(SiteId(1), config);
        let obj = site.create_int(0);
        let vid = site.attach_view(
            Box::new(RecordingView::new(vec![obj])),
            &[obj],
            ViewMode::Optimistic,
        );
        site.execute(Box::new(SetInt(obj, 1)));
        let ledger = site.view_ledger(vid).unwrap();
        assert!(
            ledger
                .iter()
                .any(|e| e.kind == ViewLedgerKind::Update(ViewMode::Optimistic)),
            "update recorded: {ledger:?}"
        );
        assert_eq!(
            ledger.last().map(|e| e.kind),
            Some(ViewLedgerKind::Commit),
            "single-site txn settles immediately: {ledger:?}"
        );
        // Ledger stays empty when the flag is off.
        let mut plain = Site::new(SiteId(2));
        let obj2 = plain.create_int(0);
        let vid2 = plain.attach_view(
            Box::new(RecordingView::new(vec![obj2])),
            &[obj2],
            ViewMode::Optimistic,
        );
        plain.execute(Box::new(SetInt(obj2, 1)));
        assert!(plain.view_ledger(vid2).unwrap().is_empty());
    }

    #[test]
    fn drop_pess_commit_notice_mutation_starves_the_view() {
        let config = crate::SiteConfig {
            view_ledger: true,
            ..Default::default()
        };
        let mut site = Site::with_config(SiteId(1), config);
        site.inject_test_mutation(TestMutation::DropPessCommitNotice);
        let obj = site.create_int(0);
        let vid = site.attach_view(
            Box::new(RecordingView::new(vec![obj])),
            &[obj],
            ViewMode::Pessimistic,
        );
        let h = site.execute(Box::new(SetInt(obj, 5)));
        assert_eq!(site.txn_outcome(h), Some(crate::TxnOutcome::Committed));
        assert!(
            site.view_ledger(vid).unwrap().is_empty(),
            "mutated site never delivers the committed update"
        );
    }
}
